/**
 * @file
 * Shared plumbing for the figure/table campaigns: default run
 * configuration (scaled-down but shape-preserving relative to the
 * paper's billion-instruction runs), the standard mix subsets, and
 * small metric helpers. Every campaign accepts key=value overrides
 * through the dbpsim_bench driver (see README).
 */

#ifndef DBPSIM_BENCH_BENCH_COMMON_HH
#define DBPSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/campaign.hh"
#include "trace/mix.hh"

namespace dbpsim {
namespace bench {

/**
 * Build the default evaluation RunConfig from parsed overrides.
 *
 * Defaults: the paper's 8-core 2x2x8 DDR3 machine; 2.5 M CPU cycles of
 * warm-up (long enough for dynamic partitions to converge and the
 * page-migration engine to finish), 4 M measured; 500 k-cycle
 * profiling interval (the paper's 10 M-cycle interval scaled to our
 * shorter runs so DBP repartitions several times per run).
 */
inline RunConfig
makeRunConfig(const Config &cfg)
{
    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    // ATLAS's long quantum scales with the run length like the
    // profiling interval does (the paper's 10 M-cycle quantum suits
    // its billion-instruction runs).
    rc.base.sched.atlasQuantum = 150'000;
    rc.base.applyConfig(cfg);
    rc.warmupCpu = cfg.getUInt("warmup", 2'500'000);
    rc.measureCpu = cfg.getUInt("measure", 4'000'000);
    rc.seedBase = cfg.getUInt("seed", 42);
    return rc;
}

/** Command-line convenience wrapper (examples). */
inline RunConfig
makeRunConfig(int argc, char **argv, Config *out_cfg = nullptr)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    if (out_cfg)
        *out_cfg = cfg;
    return makeRunConfig(cfg);
}

/** The mixes the full figures sweep. */
inline std::vector<WorkloadMix>
allMixes()
{
    return standardMixes();
}

/** A representative subset (25/50/75/100 % intensive) for sweeps. */
inline std::vector<WorkloadMix>
sensitivityMixes()
{
    return {mixByName("W02"), mixByName("W04"), mixByName("W07"),
            mixByName("W10")};
}

/** Percent improvement of scheme b over scheme a for a metric where
 *  higher is better. */
inline double
pctGain(double a, double b)
{
    return 100.0 * (b - a) / a;
}

/** Percent reduction of b relative to a (fairness-style gain for
 *  metrics where lower is better). */
inline double
pctDrop(double a, double b)
{
    return 100.0 * (a - b) / a;
}

} // namespace bench
} // namespace dbpsim

#endif // DBPSIM_BENCH_BENCH_COMMON_HH
