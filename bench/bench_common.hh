/**
 * @file
 * Shared plumbing for the figure/table benches: default run
 * configuration (scaled-down but shape-preserving relative to the
 * paper's billion-instruction runs), header printing, and gmean
 * helpers. Every bench accepts key=value overrides (see README).
 */

#ifndef DBPSIM_BENCH_BENCH_COMMON_HH
#define DBPSIM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/mix.hh"

namespace dbpsim {
namespace bench {

/**
 * Build the default evaluation RunConfig with command-line overrides.
 *
 * Defaults: the paper's 8-core 2x2x8 DDR3 machine; 2.5 M CPU cycles of
 * warm-up (long enough for dynamic partitions to converge and the
 * page-migration engine to finish), 4 M measured; 500 k-cycle
 * profiling interval (the paper's 10 M-cycle interval scaled to our
 * shorter runs so DBP repartitions several times per run).
 */
inline RunConfig
makeRunConfig(int argc, char **argv, Config *out_cfg = nullptr)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    // ATLAS's long quantum scales with the run length like the
    // profiling interval does (the paper's 10 M-cycle quantum suits
    // its billion-instruction runs).
    rc.base.sched.atlasQuantum = 150'000;
    rc.base.applyConfig(cfg);
    rc.warmupCpu = cfg.getUInt("warmup", 2'500'000);
    rc.measureCpu = cfg.getUInt("measure", 4'000'000);
    rc.seedBase = cfg.getUInt("seed", 42);
    if (out_cfg)
        *out_cfg = cfg;
    return rc;
}

/** Print the bench banner. */
inline void
printHeader(const std::string &id, const std::string &title,
            const RunConfig &rc)
{
    std::cout << "== " << id << ": " << title << " ==\n"
              << "machine: " << rc.base.summary() << "\n"
              << "window: " << rc.warmupCpu << " warmup + "
              << rc.measureCpu << " measured CPU cycles, interval "
              << rc.base.profileIntervalCpu << "\n\n";
}

/** The mixes the full figures sweep. */
inline std::vector<WorkloadMix>
allMixes()
{
    return standardMixes();
}

/** A representative subset (25/50/75/100 % intensive) for sweeps. */
inline std::vector<WorkloadMix>
sensitivityMixes()
{
    return {mixByName("W02"), mixByName("W04"), mixByName("W07"),
            mixByName("W10")};
}

/** Results of one mix under several schemes. */
struct SweepRow
{
    std::string mix;
    std::vector<MixResult> results; ///< parallel to the scheme list.
};

/** Run every mix under every scheme (alone baselines cached). */
inline std::vector<SweepRow>
runSweep(ExperimentRunner &runner, const std::vector<WorkloadMix> &mixes,
         const std::vector<Scheme> &schemes)
{
    std::vector<SweepRow> rows;
    for (const auto &mix : mixes) {
        SweepRow row;
        row.mix = mix.name;
        for (const auto &scheme : schemes) {
            std::cerr << "  [" << mix.name << " / " << scheme.name
                      << "]\n";
            row.results.push_back(runner.runMix(mix, scheme));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Print one metric across the sweep: one row per mix, one column per
 * scheme, plus a geometric-mean summary row.
 */
inline void
printMetric(const std::vector<SweepRow> &rows,
            const std::vector<Scheme> &schemes,
            double (*metric)(const MixResult &),
            const std::string &metric_name)
{
    std::vector<std::string> headers{"workload"};
    for (const auto &s : schemes)
        headers.push_back(s.name);
    TextTable table(headers);

    std::vector<std::vector<double>> columns(schemes.size());
    for (const auto &row : rows) {
        table.beginRow();
        table.cell(row.mix);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            double v = metric(row.results[s]);
            columns[s].push_back(v);
            table.cell(v, 3);
        }
    }
    table.beginRow();
    table.cell("gmean");
    for (std::size_t s = 0; s < schemes.size(); ++s)
        table.cell(geomean(columns[s]), 3);

    std::cout << metric_name << ":\n";
    table.print(std::cout);
    std::cout << '\n';
}

/** Metric selectors for printMetric. */
inline double
weightedSpeedupOf(const MixResult &r)
{
    return r.metrics.weightedSpeedup;
}

inline double
maxSlowdownOf(const MixResult &r)
{
    return r.metrics.maxSlowdown;
}

inline double
harmonicSpeedupOf(const MixResult &r)
{
    return r.metrics.harmonicSpeedup;
}

/** Percent improvement of scheme b over scheme a for a metric where
 *  higher is better. */
inline double
pctGain(double a, double b)
{
    return 100.0 * (b - a) / a;
}

} // namespace bench
} // namespace dbpsim

#endif // DBPSIM_BENCH_BENCH_COMMON_HH
