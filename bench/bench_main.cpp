/**
 * @file
 * The dbpsim_bench driver: one binary for every figure/table campaign.
 *
 *   dbpsim_bench --list
 *   dbpsim_bench fig4 fig5
 *   dbpsim_bench --all --jobs=8
 *   dbpsim_bench fig4 --serial seed=7 warmup=1000000
 *
 * Runs the selected campaigns, prints their tables, and writes one
 * result document per campaign to <out>/<name>.json. The "result
 * digest" printed per campaign hashes only the deterministic sections
 * (jobs + summary), so comparing a --serial run against a --jobs=N
 * run is a one-line diff even though wall-clock fields differ.
 *
 * Alone-run baselines persist to <out>/alone_cache.json keyed by
 * (application, hardware-config hash); a second invocation on the
 * same configuration reloads them instead of re-simulating.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/log.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

void
listCampaigns(std::ostream &os)
{
    os << "campaigns:\n";
    for (const CampaignSpec *s : campaignRegistry())
        os << "  " << s->name << "\t" << s->title << "\n";
}

void
usage(std::ostream &os)
{
    os << "usage: dbpsim_bench [options] [campaign...] [key=value...]\n"
          "  --list       list registered campaigns\n"
          "  --all        run every campaign\n"
          "  --jobs=N     worker threads (default: hardware)\n"
          "  --serial     single-threaded reference mode (= --jobs=1)\n"
          "  --out=DIR    result directory (default: results)\n"
          "  --no-cache   don't load/save the alone-run baseline cache\n"
          "  --quiet      suppress per-job progress lines\n"
          "  key=value    configuration overrides (seed=, warmup=, ...)\n";
}

/** Digest of the deterministic result sections (jobs + summary). */
std::string
resultDigest(const Json &doc)
{
    std::uint64_t h = hashString(doc.at("jobs").dump() +
                                 doc.at("summary").dump());
    std::ostringstream os;
    os << "0x" << std::hex << h;
    return os.str();
}

/** Total protocol-checker violations across a campaign's jobs. */
std::int64_t
totalViolations(const Json &doc)
{
    std::int64_t total = 0;
    for (const auto &m : doc.at("jobs").members())
        if (const Json *v = m.second.find("check_violations"))
            if (v->asInt() > 0)
                total += v->asInt();
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all = false, list = false, use_cache = true;
    unsigned jobs = 0; // 0 = hardware concurrency
    bool progress = true;
    std::string out_dir = "results";
    std::vector<std::string> names;
    Config cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--serial") {
            jobs = 1;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(
                parseIntString(arg.substr(7), "--jobs"));
        } else if (arg.rfind("--out=", 0) == 0) {
            out_dir = arg.substr(6);
        } else if (arg == "--no-cache") {
            use_cache = false;
        } else if (arg == "--quiet") {
            progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            listCampaigns(std::cout);
            return 0;
        } else if (arg.rfind("--", 0) != 0 &&
                   arg.find('=') != std::string::npos) {
            cfg.parseToken(arg);
        } else if (findCampaign(arg)) {
            names.push_back(arg);
        } else {
            std::cerr << "dbpsim_bench: unknown argument '" << arg
                      << "'\n\n";
            usage(std::cerr);
            listCampaigns(std::cerr);
            return 2;
        }
    }

    if (list) {
        listCampaigns(std::cout);
        return 0;
    }
    if (!all && names.empty()) {
        usage(std::cerr);
        listCampaigns(std::cerr);
        return 2;
    }

    std::vector<const CampaignSpec *> to_run;
    if (all) {
        to_run = campaignRegistry();
    } else {
        for (const auto &name : names)
            to_run.push_back(findCampaign(name));
    }

    RunConfig rc = makeRunConfig(cfg);
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::cerr << "dbpsim_bench: cannot create '" << out_dir
                  << "': " << ec.message() << "\n";
        return 2;
    }

    auto baselines = std::make_shared<AloneBaselineCache>();
    const std::string cache_path = out_dir + "/alone_cache.json";
    if (use_cache && baselines->load(cache_path))
        std::cerr << "loaded " << baselines->size()
                  << " alone baseline(s) from " << cache_path << "\n";

    int exit_code = 0;
    for (const CampaignSpec *spec : to_run) {
        std::cout << "== " << spec->name << ": " << spec->title
                  << " ==\n"
                  << "machine: " << rc.base.summary() << "\n"
                  << "window: " << rc.warmupCpu << " warmup + "
                  << rc.measureCpu << " measured CPU cycles, interval "
                  << rc.base.profileIntervalCpu << "\n\n";

        CampaignOptions opts;
        opts.jobs = jobs;
        opts.progress = progress;
        Json doc = runCampaign(*spec, rc, baselines, opts, std::cout);

        std::int64_t violations = totalViolations(doc);
        if (violations > 0) {
            std::cerr << "dbpsim_bench: " << spec->name << ": "
                      << violations << " protocol violation(s)\n";
            exit_code = 1;
        }

        const std::string path = out_dir + "/" + spec->name + ".json";
        std::ofstream file(path);
        if (!file) {
            std::cerr << "dbpsim_bench: cannot write " << path << "\n";
            exit_code = 2;
        } else {
            doc.write(file, 2);
            file << "\n";
        }

        std::cout << "result digest: " << resultDigest(doc) << "\n"
                  << "results: " << path << "\n\n";
    }

    if (use_cache && !baselines->save(cache_path))
        std::cerr << "dbpsim_bench: cannot write " << cache_path << "\n";

    return exit_code;
}
