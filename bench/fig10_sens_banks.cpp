/**
 * @file
 * Figure 10 (sensitivity): total bank count. UBP/DBP/FR-FCFS gmean
 * weighted speedup and max slowdown at 16 / 32 / 64 banks (varying
 * banks per rank at fixed 2 channels x 2 ranks). With few banks the
 * equal share binds hard and DBP's gains grow; with many banks every
 * thread has parallelism to spare and the schemes converge.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<unsigned> &
banksPerRankSweep()
{
    static const std::vector<unsigned> v = {4, 8, 16};
    return v;
}

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP")};
}

RunConfig
configFor(const RunConfig &base, unsigned banks_per_rank)
{
    RunConfig cfg = base;
    cfg.base.geometry.banksPerRank = banks_per_rank;
    return cfg;
}

std::string
prefixFor(const RunConfig &cfg)
{
    return std::to_string(cfg.base.geometry.totalBanks()) + "bk/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (unsigned bpr : banksPerRankSweep()) {
        RunConfig cfg = configFor(ctx.config(), bpr);
        planMixSweep(p, cfg, prefixFor(cfg), sensitivityMixes(),
                     schemes());
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"banks", "WS FR-FCFS", "WS UBP", "WS DBP",
                     "MS FR-FCFS", "MS UBP", "MS DBP"});
    for (unsigned bpr : banksPerRankSweep()) {
        RunConfig cfg = configFor(run.config(), bpr);
        std::string prefix = prefixFor(cfg);
        table.beginRow();
        table.cell(cfg.base.geometry.totalBanks());
        for (const char *field : {"ws", "ms"})
            for (const auto &s : schemes())
                table.cell(geomean(sweepColumn(run, prefix,
                                               sensitivityMixes(),
                                               s.name, field)),
                           3);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig10",
    "sensitivity to bank count",
    "Expected shape: DBP's edge over UBP largest at 16 banks, "
    "shrinking at 64.",
    plan,
    render,
});

} // namespace
