/**
 * @file
 * Figure 10 (sensitivity): total bank count. UBP/DBP/FR-FCFS gmean
 * weighted speedup and max slowdown at 16 / 32 / 64 banks (varying
 * banks per rank at fixed 2 channels x 2 ranks). With few banks the
 * equal share binds hard and DBP's gains grow; with many banks every
 * thread has parallelism to spare and the schemes converge.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig10", "sensitivity to bank count", rc);

    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("UBP"),
                                   schemeByName("DBP")};
    TextTable table({"banks", "WS FR-FCFS", "WS UBP", "WS DBP",
                     "MS FR-FCFS", "MS UBP", "MS DBP"});

    for (unsigned banks_per_rank : {4u, 8u, 16u}) {
        RunConfig cfg = rc;
        cfg.base.geometry.banksPerRank = banks_per_rank;
        ExperimentRunner runner(cfg);

        std::vector<std::vector<double>> ws(schemes.size());
        std::vector<std::vector<double>> ms(schemes.size());
        for (const auto &mix : sensitivityMixes()) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                MixResult r = runner.runMix(mix, schemes[s]);
                ws[s].push_back(r.metrics.weightedSpeedup);
                ms[s].push_back(r.metrics.maxSlowdown);
            }
        }
        table.beginRow();
        table.cell(cfg.base.geometry.totalBanks());
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ws[s]), 3);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ms[s]), 3);
        std::cerr << "  [" << cfg.base.geometry.totalBanks()
                  << " banks done]\n";
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: DBP's edge over UBP largest at 16"
                 " banks, shrinking at 64.\n";
    return 0;
}
