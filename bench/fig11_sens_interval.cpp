/**
 * @file
 * Figure 11 (sensitivity): the profiling / repartitioning interval.
 * DBP gmean weighted speedup, max slowdown, adopted repartitions and
 * migrated pages at intervals from 125 k to 2 M CPU cycles. Too-short
 * intervals chase noise (migration overhead); too-long intervals
 * react slowly to phase changes (xalancbmk's phases flip every ~5 M
 * instructions).
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig11", "sensitivity to repartitioning interval", rc);

    Scheme dbp = schemeByName("DBP");
    TextTable table({"interval (cpu cycles)", "gmean WS", "gmean MS",
                     "repartitions", "pages migrated"});

    for (Cycle interval :
         {125'000ULL, 250'000ULL, 500'000ULL, 1'000'000ULL,
          2'000'000ULL}) {
        RunConfig cfg = rc;
        cfg.base.profileIntervalCpu = interval;
        ExperimentRunner runner(cfg);

        std::vector<double> ws, ms;
        std::uint64_t reparts = 0, migrated = 0;
        for (const auto &mix : sensitivityMixes()) {
            MixResult r = runner.runMix(mix, dbp);
            ws.push_back(r.metrics.weightedSpeedup);
            ms.push_back(r.metrics.maxSlowdown);
            reparts += r.repartitions;
            migrated += r.pagesMigrated;
        }
        table.beginRow();
        table.cell(static_cast<std::uint64_t>(interval));
        table.cell(geomean(ws), 3);
        table.cell(geomean(ms), 3);
        table.cell(reparts);
        table.cell(migrated);
        std::cerr << "  [interval " << interval << " done]\n";
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: WS roughly flat with a mild peak at"
                 " mid intervals; migration volume falls as the\n"
                 "interval grows.\n";
    return 0;
}
