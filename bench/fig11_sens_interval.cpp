/**
 * @file
 * Figure 11 (sensitivity): the profiling / repartitioning interval.
 * DBP gmean weighted speedup, max slowdown, adopted repartitions and
 * migrated pages at intervals from 125 k to 2 M CPU cycles. Too-short
 * intervals chase noise (migration overhead); too-long intervals
 * react slowly to phase changes (xalancbmk's phases flip every ~5 M
 * instructions).
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<Cycle> &
intervals()
{
    static const std::vector<Cycle> v = {125'000, 250'000, 500'000,
                                         1'000'000, 2'000'000};
    return v;
}

std::string
prefixFor(Cycle interval)
{
    return std::to_string(interval) + "/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (Cycle interval : intervals()) {
        RunConfig cfg = ctx.config();
        cfg.base.profileIntervalCpu = interval;
        planMixSweep(p, cfg, prefixFor(interval), sensitivityMixes(),
                     {schemeByName("DBP")});
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"interval (cpu cycles)", "gmean WS", "gmean MS",
                     "repartitions", "pages migrated"});
    for (Cycle interval : intervals()) {
        std::string prefix = prefixFor(interval);
        double reparts = 0, migrated = 0;
        for (const auto &mix : sensitivityMixes()) {
            const std::string k = sweepKey(prefix, mix.name, "DBP");
            reparts += run.num(k, "repartitions");
            migrated += run.num(k, "pages_migrated");
        }
        table.beginRow();
        table.cell(static_cast<std::uint64_t>(interval));
        table.cell(geomean(sweepColumn(run, prefix, sensitivityMixes(),
                                       "DBP", "ws")),
                   3);
        table.cell(geomean(sweepColumn(run, prefix, sensitivityMixes(),
                                       "DBP", "ms")),
                   3);
        table.cell(static_cast<std::uint64_t>(reparts));
        table.cell(static_cast<std::uint64_t>(migrated));
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig11",
    "sensitivity to repartitioning interval",
    "Expected shape: WS roughly flat with a mild peak at mid "
    "intervals; migration volume falls as the\ninterval grows.",
    plan,
    render,
});

} // namespace
