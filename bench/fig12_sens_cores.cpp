/**
 * @file
 * Figure 12 (sensitivity): core count. Gmean weighted speedup and max
 * slowdown of FR-FCFS / UBP / DBP at 4, 8 and 16 cores on the fixed
 * 32-bank machine (mixes truncated / repeated to fit). More cores per
 * bank stresses the equal partition (2 banks each at 16 cores) and
 * widens DBP's advantage.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<unsigned> &
coreCounts()
{
    static const std::vector<unsigned> v = {4, 8, 16};
    return v;
}

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP")};
}

std::vector<WorkloadMix>
mixesFor(unsigned cores)
{
    std::vector<WorkloadMix> out;
    for (const auto &base_mix : sensitivityMixes())
        out.push_back(scaleMix(base_mix, cores));
    return out;
}

std::string
prefixFor(unsigned cores)
{
    return std::to_string(cores) + "c/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (unsigned cores : coreCounts())
        planMixSweep(p, ctx.config(), prefixFor(cores), mixesFor(cores),
                     schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"cores", "WS FR-FCFS", "WS UBP", "WS DBP",
                     "MS FR-FCFS", "MS UBP", "MS DBP"});
    for (unsigned cores : coreCounts()) {
        std::vector<WorkloadMix> mixes = mixesFor(cores);
        table.beginRow();
        table.cell(cores);
        for (const char *field : {"ws", "ms"})
            for (const auto &s : schemes())
                table.cell(geomean(sweepColumn(run, prefixFor(cores),
                                               mixes, s.name, field)),
                           3);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig12",
    "sensitivity to core count",
    "Expected shape: DBP's edge over UBP grows with core count as the "
    "equal share shrinks.",
    plan,
    render,
});

} // namespace
