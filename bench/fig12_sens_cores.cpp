/**
 * @file
 * Figure 12 (sensitivity): core count. Gmean weighted speedup and max
 * slowdown of FR-FCFS / UBP / DBP at 4, 8 and 16 cores on the fixed
 * 32-bank machine (mixes truncated / repeated to fit). More cores per
 * bank stresses the equal partition (2 banks each at 16 cores) and
 * widens DBP's advantage.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig12", "sensitivity to core count", rc);

    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("UBP"),
                                   schemeByName("DBP")};
    TextTable table({"cores", "WS FR-FCFS", "WS UBP", "WS DBP",
                     "MS FR-FCFS", "MS UBP", "MS DBP"});

    for (unsigned cores : {4u, 8u, 16u}) {
        ExperimentRunner runner(rc);
        std::vector<std::vector<double>> ws(schemes.size());
        std::vector<std::vector<double>> ms(schemes.size());
        for (const auto &base_mix : sensitivityMixes()) {
            WorkloadMix mix = scaleMix(base_mix, cores);
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                MixResult r = runner.runMix(mix, schemes[s]);
                ws[s].push_back(r.metrics.weightedSpeedup);
                ms[s].push_back(r.metrics.maxSlowdown);
            }
        }
        table.beginRow();
        table.cell(cores);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ws[s]), 3);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ms[s]), 3);
        std::cerr << "  [" << cores << " cores done]\n";
    }
    table.print(std::cout);
    return 0;
}
