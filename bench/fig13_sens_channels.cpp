/**
 * @file
 * Figure 13 (sensitivity): channel count, at a fixed 32 total banks.
 * Gmean weighted speedup and max slowdown of FR-FCFS / DBP / MCP at
 * 1, 2 and 4 channels. MCP needs >= 2 channels to separate anything
 * and still concentrates intensive threads; DBP's bank-granular split
 * works at any channel count.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig13", "sensitivity to channel count", rc);

    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("DBP"),
                                   schemeByName("MCP")};
    TextTable table({"channels", "WS FR-FCFS", "WS DBP", "WS MCP",
                     "MS FR-FCFS", "MS DBP", "MS MCP"});

    struct Geo
    {
        unsigned channels, ranks, banks;
    };
    for (Geo g : {Geo{1, 2, 16}, Geo{2, 2, 8}, Geo{4, 2, 4}}) {
        RunConfig cfg = rc;
        cfg.base.geometry.channels = g.channels;
        cfg.base.geometry.ranksPerChannel = g.ranks;
        cfg.base.geometry.banksPerRank = g.banks;
        ExperimentRunner runner(cfg);

        std::vector<std::vector<double>> ws(schemes.size());
        std::vector<std::vector<double>> ms(schemes.size());
        for (const auto &mix : sensitivityMixes()) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                MixResult r = runner.runMix(mix, schemes[s]);
                ws[s].push_back(r.metrics.weightedSpeedup);
                ms[s].push_back(r.metrics.maxSlowdown);
            }
        }
        table.beginRow();
        table.cell(g.channels);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ws[s]), 3);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            table.cell(geomean(ms[s]), 3);
        std::cerr << "  [" << g.channels << " channels done]\n";
    }
    table.print(std::cout);
    return 0;
}
