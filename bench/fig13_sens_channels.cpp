/**
 * @file
 * Figure 13 (sensitivity): channel count, at a fixed 32 total banks.
 * Gmean weighted speedup and max slowdown of FR-FCFS / DBP / MCP at
 * 1, 2 and 4 channels. MCP needs >= 2 channels to separate anything
 * and still concentrates intensive threads; DBP's bank-granular split
 * works at any channel count.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

struct Geo
{
    unsigned channels, ranks, banks;
};

const std::vector<Geo> &
geometries()
{
    static const std::vector<Geo> v = {{1, 2, 16}, {2, 2, 8}, {4, 2, 4}};
    return v;
}

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("DBP"),
            schemeByName("MCP")};
}

std::string
prefixFor(const Geo &g)
{
    return std::to_string(g.channels) + "ch/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (const Geo &g : geometries()) {
        RunConfig cfg = ctx.config();
        cfg.base.geometry.channels = g.channels;
        cfg.base.geometry.ranksPerChannel = g.ranks;
        cfg.base.geometry.banksPerRank = g.banks;
        planMixSweep(p, cfg, prefixFor(g), sensitivityMixes(),
                     schemes());
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"channels", "WS FR-FCFS", "WS DBP", "WS MCP",
                     "MS FR-FCFS", "MS DBP", "MS MCP"});
    for (const Geo &g : geometries()) {
        table.beginRow();
        table.cell(g.channels);
        for (const char *field : {"ws", "ms"})
            for (const auto &s : schemes())
                table.cell(geomean(sweepColumn(run, prefixFor(g),
                                               sensitivityMixes(),
                                               s.name, field)),
                           3);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig13",
    "sensitivity to channel count",
    "Expected shape: DBP helps at every channel count; MCP only "
    "separates threads once there are >= 2 channels.",
    plan,
    render,
});

} // namespace
