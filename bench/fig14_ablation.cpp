/**
 * @file
 * Figure 14 (ablation): which DBP design choices matter. Gmean
 * weighted speedup / max slowdown / migrated pages over the
 * sensitivity mixes for: full DBP; no light-thread grouping (every
 * thread treated heavy); no hysteresis vs strong hysteresis;
 * allocation-only (no migration) vs idealized free migration; and a
 * flat demand estimate (ignore measured BLP).
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

struct Variant
{
    std::string name;
    std::string prefix;
    void (*tweak)(SystemParams &);
};

void
vFull(SystemParams &)
{
}

void
vNoLightGroup(SystemParams &p)
{
    // Nothing is "light": every thread gets a private demand share.
    p.dbp.lightMpki = 0.0;
}

void
vStrongHysteresis(SystemParams &p)
{
    p.dbp.hysteresisBanks = 4;
}

void
vNoMigration(SystemParams &p)
{
    p.partMgr.migration = MigrationMode::None;
}

void
vFreeMigration(SystemParams &p)
{
    p.partMgr.migration = MigrationMode::EagerFree;
}

void
vFlatDemand(SystemParams &p)
{
    // All heavy threads report equal demand — the dynamic machinery
    // with the estimator unplugged.
    p.dbp.flatDemand = true;
}

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> v = {
        {"full DBP", "full/", vFull},
        {"no light grouping", "nolight/", vNoLightGroup},
        {"hysteresis=4", "hyst4/", vStrongHysteresis},
        {"no migration", "nomig/", vNoMigration},
        {"free migration", "freemig/", vFreeMigration},
        {"flat demand", "flat/", vFlatDemand},
    };
    return v;
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (const auto &v : variants()) {
        RunConfig cfg = ctx.config();
        v.tweak(cfg.base);
        planMixSweep(p, cfg, v.prefix, sensitivityMixes(),
                     {schemeByName("DBP")});
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"variant", "gmean WS", "gmean MS",
                     "pages migrated"});
    for (const auto &v : variants()) {
        double migrated = 0;
        for (const auto &mix : sensitivityMixes())
            migrated += run.num(sweepKey(v.prefix, mix.name, "DBP"),
                                "pages_migrated");
        table.beginRow();
        table.cell(v.name);
        table.cell(geomean(sweepColumn(run, v.prefix, sensitivityMixes(),
                                       "DBP", "ws")),
                   3);
        table.cell(geomean(sweepColumn(run, v.prefix, sensitivityMixes(),
                                       "DBP", "ms")),
                   3);
        table.cell(static_cast<std::uint64_t>(migrated));
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig14",
    "DBP design ablations",
    "Expected shape: full DBP at or near the best WS/MS; flat demand "
    "loses the BLP compensation; free\nmigration bounds what the cost "
    "model forfeits.",
    plan,
    render,
});

} // namespace
