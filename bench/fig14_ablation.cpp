/**
 * @file
 * Figure 14 (ablation): which DBP design choices matter. Gmean
 * weighted speedup / max slowdown / migrated pages over the
 * sensitivity mixes for: full DBP; no light-thread grouping (every
 * thread treated heavy); no hysteresis vs strong hysteresis;
 * allocation-only (no migration) vs idealized free migration; and a
 * flat demand estimate (ignore measured BLP).
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

namespace {

struct Variant
{
    std::string name;
    void (*tweak)(SystemParams &);
};

void
vFull(SystemParams &)
{
}

void
vNoLightGroup(SystemParams &p)
{
    // Nothing is "light": every thread gets a private demand share.
    p.dbp.lightMpki = 0.0;
}

void
vStrongHysteresis(SystemParams &p)
{
    p.dbp.hysteresisBanks = 4;
}

void
vNoMigration(SystemParams &p)
{
    p.partMgr.migration = MigrationMode::None;
}

void
vFreeMigration(SystemParams &p)
{
    p.partMgr.migration = MigrationMode::EagerFree;
}

void
vFlatDemand(SystemParams &p)
{
    // All heavy threads report equal demand — the dynamic machinery
    // with the estimator unplugged.
    p.dbp.flatDemand = true;
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig14", "DBP design ablations", rc);

    const std::vector<Variant> variants = {
        {"full DBP", vFull},
        {"no light grouping", vNoLightGroup},
        {"hysteresis=4", vStrongHysteresis},
        {"no migration", vNoMigration},
        {"free migration", vFreeMigration},
        {"flat demand", vFlatDemand},
    };

    Scheme dbp = schemeByName("DBP");
    TextTable table({"variant", "gmean WS", "gmean MS",
                     "pages migrated"});
    for (const auto &v : variants) {
        RunConfig cfg = rc;
        v.tweak(cfg.base);
        ExperimentRunner runner(cfg);
        std::vector<double> ws, ms;
        std::uint64_t migrated = 0;
        for (const auto &mix : sensitivityMixes()) {
            MixResult r = runner.runMix(mix, dbp);
            ws.push_back(r.metrics.weightedSpeedup);
            ms.push_back(r.metrics.maxSlowdown);
            migrated += r.pagesMigrated;
        }
        table.beginRow();
        table.cell(v.name);
        table.cell(geomean(ws), 3);
        table.cell(geomean(ms), 3);
        table.cell(migrated);
        std::cerr << "  [" << v.name << " done]\n";
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: full DBP at or near the best WS/MS;"
                 " flat demand loses the BLP compensation; free\n"
                 "migration bounds what the cost model forfeits.\n";
    return 0;
}
