/**
 * @file
 * Figure 15 (claim C6): partitioning and scheduling are orthogonal.
 * Gmean weighted speedup for every scheduler (FCFS, FR-FCFS, PAR-BS,
 * ATLAS, TCM) crossed with every partition (none, UBP, DBP) over the
 * sensitivity mixes. DBP should improve every scheduler, and the best
 * cell should be a combination, not a lone mechanism.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<std::string> &
scheds()
{
    static const std::vector<std::string> v = {"fcfs", "fr-fcfs",
                                               "par-bs", "atlas", "tcm"};
    return v;
}

const std::vector<std::string> &
parts()
{
    static const std::vector<std::string> v = {"none", "ubp", "dbp"};
    return v;
}

std::vector<Scheme>
schemes()
{
    std::vector<Scheme> out;
    for (const auto &sched : scheds())
        for (const auto &part : parts())
            out.push_back(Scheme{sched + "+" + part, sched, part});
    return out;
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, sensitivityMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable ws_table({"scheduler", "none", "ubp", "dbp"});
    TextTable ms_table({"scheduler", "none", "ubp", "dbp"});
    for (const auto &sched : scheds()) {
        ws_table.beginRow();
        ws_table.cell(sched);
        ms_table.beginRow();
        ms_table.cell(sched);
        for (const auto &part : parts()) {
            std::string scheme = sched + "+" + part;
            ws_table.cell(geomean(sweepColumn(run, "",
                                              sensitivityMixes(),
                                              scheme, "ws")),
                          3);
            ms_table.cell(geomean(sweepColumn(run, "",
                                              sensitivityMixes(),
                                              scheme, "ms")),
                          3);
        }
    }
    os << "weighted speedup:\n";
    ws_table.print(os);
    os << "\nmaximum slowdown (lower = fairer):\n";
    ms_table.print(os);
}

const CampaignRegistrar reg({
    "fig15",
    "scheduler x partition landscape (gmean WS)",
    "Expected shape: the dbp column beats none/ubp for every "
    "scheduler; the best cell is a combination.",
    plan,
    render,
});

} // namespace
