/**
 * @file
 * Figure 15 (claim C6): partitioning and scheduling are orthogonal.
 * Gmean weighted speedup for every scheduler (FCFS, FR-FCFS, PAR-BS,
 * ATLAS, TCM) crossed with every partition (none, UBP, DBP) over the
 * sensitivity mixes. DBP should improve every scheduler, and the best
 * cell should be a combination, not a lone mechanism.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig15",
                "scheduler x partition landscape (gmean WS)", rc);

    const std::vector<std::string> scheds = {"fcfs", "fr-fcfs",
                                             "par-bs", "atlas", "tcm"};
    const std::vector<std::string> parts = {"none", "ubp", "dbp"};

    ExperimentRunner runner(rc);
    TextTable ws_table({"scheduler", "none", "ubp", "dbp"});
    TextTable ms_table({"scheduler", "none", "ubp", "dbp"});
    for (const auto &sched : scheds) {
        ws_table.beginRow();
        ws_table.cell(sched);
        ms_table.beginRow();
        ms_table.cell(sched);
        for (const auto &part : parts) {
            Scheme scheme{sched + "+" + part, sched, part};
            std::vector<double> ws, ms;
            for (const auto &mix : sensitivityMixes()) {
                MixResult r = runner.runMix(mix, scheme);
                ws.push_back(r.metrics.weightedSpeedup);
                ms.push_back(r.metrics.maxSlowdown);
            }
            ws_table.cell(geomean(ws), 3);
            ms_table.cell(geomean(ms), 3);
        }
        std::cerr << "  [" << sched << " done]\n";
    }
    std::cout << "weighted speedup:\n";
    ws_table.print(std::cout);
    std::cout << "\nmaximum slowdown (lower = fairer):\n";
    ms_table.print(std::cout);
    return 0;
}
