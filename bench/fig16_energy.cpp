/**
 * @file
 * Figure 16 (extension): DRAM energy per scheme. Bank partitioning
 * restores row-buffer locality, which shows up as fewer ACTIVATE /
 * PRECHARGE pairs per unit of work. Reports per-scheme activates per
 * kilo-request and the energy breakdown from the Micron-style model,
 * averaged over the sensitivity mixes.
 */

#include <iostream>

#include "bench_common.hh"
#include "dram/energy.hh"
#include "sim/system.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig16", "DRAM activity and energy per scheme", rc);

    const std::vector<Scheme> schemes = {
        schemeByName("FR-FCFS"), schemeByName("UBP"),
        schemeByName("DBP"), schemeByName("DBP-TCM")};

    TextTable table({"scheme", "ACT per kilo-request", "act+pre (mJ)",
                     "rd+wr (mJ)", "refresh (mJ)", "total (mJ)"});
    for (const auto &scheme : schemes) {
        double acts = 0, reqs = 0;
        DramEnergyBreakdown sum;
        for (const auto &mix : sensitivityMixes()) {
            SystemParams params = applyScheme(rc.base, scheme);
            params.numCores = static_cast<unsigned>(mix.apps.size());
            auto owned = buildMixSources(mix, rc.seedBase);
            std::vector<TraceSource *> sources;
            for (auto &s : owned)
                sources.push_back(s.get());
            System sys(params, sources);
            sys.run(rc.warmupCpu + rc.measureCpu);

            for (unsigned c = 0; c < sys.numControllers(); ++c) {
                const DramChannel &ch = sys.controllerAt(c).channel();
                acts += static_cast<double>(ch.statActs.value());
                reqs += static_cast<double>(ch.statReads.value() +
                                            ch.statWrites.value());
                DramEnergyBreakdown e =
                    dramEnergy(ch, sys.memCycle());
                sum.actPreNj += e.actPreNj;
                sum.readNj += e.readNj;
                sum.writeNj += e.writeNj;
                sum.refreshNj += e.refreshNj;
                sum.backgroundNj += e.backgroundNj;
            }
            std::cerr << "  [" << mix.name << " / " << scheme.name
                      << "]\n";
        }
        table.beginRow();
        table.cell(scheme.name);
        table.cell(1000.0 * acts / reqs, 1);
        table.cell(sum.actPreNj * 1e-6, 3);
        table.cell((sum.readNj + sum.writeNj) * 1e-6, 3);
        table.cell(sum.refreshNj * 1e-6, 3);
        table.cell(sum.totalNj() * 1e-6, 3);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: partitioned schemes issue fewer"
                 " activates per request (row locality preserved),\n"
                 "lowering the act+pre energy component.\n";
    return 0;
}
