/**
 * @file
 * Figure 16 (extension): DRAM energy per scheme. Bank partitioning
 * restores row-buffer locality, which shows up as fewer ACTIVATE /
 * PRECHARGE pairs per unit of work. Reports per-scheme activates per
 * kilo-request and the energy breakdown from the Micron-style model,
 * averaged over the sensitivity mixes.
 */

#include "bench_common.hh"
#include "common/log.hh"
#include "dram/energy.hh"
#include "sim/system.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP"), schemeByName("DBP-TCM")};
}

Json
runEnergyJob(CampaignContext &ctx, const WorkloadMix &mix,
             const Scheme &scheme)
{
    const RunConfig &rc = ctx.config();
    SystemParams params = applyScheme(rc.base, scheme);
    params.numCores = static_cast<unsigned>(mix.apps.size());
    auto owned = buildMixSources(
        mix, jobSeed(rc.seedBase, mix.name, scheme.name));
    std::vector<TraceSource *> sources;
    for (auto &s : owned)
        sources.push_back(s.get());
    System sys(params, sources);
    sys.run(rc.warmupCpu + rc.measureCpu);

    double acts = 0, reqs = 0;
    DramEnergyBreakdown sum;
    for (unsigned c = 0; c < sys.numControllers(); ++c) {
        const DramChannel &ch = sys.controllerAt(c).channel();
        acts += static_cast<double>(ch.statActs.value());
        reqs += static_cast<double>(ch.statReads.value() +
                                    ch.statWrites.value());
        DramEnergyBreakdown e = dramEnergy(ch, sys.memCycle());
        sum.actPreNj += e.actPreNj;
        sum.readNj += e.readNj;
        sum.writeNj += e.writeNj;
        sum.refreshNj += e.refreshNj;
        sum.backgroundNj += e.backgroundNj;
    }

    // Refresh is on by default; a zero refresh-energy term here means
    // the REF counts were dropped on the floor somewhere between the
    // channel stats and the energy model.
    if (params.controller.refresh.mode != RefreshMode::None &&
        sum.refreshNj <= 0.0)
        DBP_PANIC("fig16: refresh enabled but refresh energy is zero "
                  "(mix " << mix.name << ", scheme " << scheme.name
                  << ")");

    Json j = Json::object();
    j.set("acts", acts);
    j.set("requests", reqs);
    j.set("act_pre_nj", sum.actPreNj);
    j.set("read_nj", sum.readNj);
    j.set("write_nj", sum.writeNj);
    j.set("refresh_nj", sum.refreshNj);
    j.set("background_nj", sum.backgroundNj);
    j.set("total_nj", sum.totalNj());
    return j;
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    for (const auto &mix : sensitivityMixes()) {
        for (const auto &scheme : schemes()) {
            p.add(sweepKey("", mix.name, scheme.name),
                  [mix, scheme](CampaignContext &ctx) {
                      return runEnergyJob(ctx, mix, scheme);
                  });
        }
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"scheme", "ACT per kilo-request", "act+pre (mJ)",
                     "rd+wr (mJ)", "refresh (mJ)", "total (mJ)"});
    for (const auto &scheme : schemes()) {
        double acts = 0, reqs = 0;
        double act_pre = 0, rdwr = 0, refresh = 0, total = 0;
        for (const auto &mix : sensitivityMixes()) {
            const std::string k = sweepKey("", mix.name, scheme.name);
            acts += run.num(k, "acts");
            reqs += run.num(k, "requests");
            act_pre += run.num(k, "act_pre_nj");
            rdwr += run.num(k, "read_nj") + run.num(k, "write_nj");
            refresh += run.num(k, "refresh_nj");
            total += run.num(k, "total_nj");
        }
        table.beginRow();
        table.cell(scheme.name);
        table.cell(1000.0 * acts / reqs, 1);
        table.cell(act_pre * 1e-6, 3);
        table.cell(rdwr * 1e-6, 3);
        table.cell(refresh * 1e-6, 3);
        table.cell(total * 1e-6, 3);
        run.summary("acts_per_kreq_" + scheme.name,
                    1000.0 * acts / reqs);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig16",
    "DRAM activity and energy per scheme",
    "Expected shape: partitioned schemes issue fewer activates per "
    "request (row locality preserved),\nlowering the act+pre energy "
    "component.",
    plan,
    render,
});

} // namespace
