/**
 * @file
 * Figure 17 (extension): composing channel- and bank-granular
 * partitioning. Weighted speedup and max slowdown of MCP, DBP,
 * DBP-MCP (channel groups split bank-wise inside) and DBP-MCP-TCM
 * over the sensitivity mixes — the "comprehensive approach" direction
 * the paper's discussion points toward, evaluated beyond its own
 * scheme set.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig17", "channel+bank partitioning composition", rc);

    std::vector<Scheme> schemes = {
        schemeByName("MCP"), schemeByName("DBP"),
        schemeByName("DBP-MCP"), schemeByName("DBP-TCM"),
        schemeByName("DBP-MCP-TCM")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, sensitivityMixes(), schemes);

    printMetric(rows, schemes, weightedSpeedupOf, "weighted speedup");
    printMetric(rows, schemes, maxSlowdownOf,
                "maximum slowdown (lower = fairer)");
    return 0;
}
