/**
 * @file
 * Figure 17 (extension): composing channel- and bank-granular
 * partitioning. Weighted speedup and max slowdown of MCP, DBP,
 * DBP-MCP (channel groups split bank-wise inside) and DBP-MCP-TCM
 * over the sensitivity mixes — the "comprehensive approach" direction
 * the paper's discussion points toward, evaluated beyond its own
 * scheme set.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("MCP"), schemeByName("DBP"),
            schemeByName("DBP-MCP"), schemeByName("DBP-TCM"),
            schemeByName("DBP-MCP-TCM")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, sensitivityMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", sensitivityMixes(), schemes(), "ws",
                     "weighted speedup", os);
    printSweepMetric(run, "", sensitivityMixes(), schemes(), "ms",
                     "maximum slowdown (lower = fairer)", os);
}

const CampaignRegistrar reg({
    "fig17",
    "channel+bank partitioning composition",
    "Expected shape: the composed schemes at or above their "
    "components on both metrics.",
    plan,
    render,
});

} // namespace
