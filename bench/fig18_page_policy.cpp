/**
 * @file
 * Figure 18 (extension): row-buffer management policy under
 * partitioning. Gmean weighted speedup / max slowdown of open,
 * open-adaptive (idle-timeout close) and closed page policies, for
 * FR-FCFS and for DBP, over the sensitivity mixes. Partitioning
 * preserves per-thread row locality, so the open policies should keep
 * their edge over closed-page, and adaptive should recoup part of the
 * conflict tRP without hurting hit streaks.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig18", "page policy x partitioning", rc);

    struct Variant
    {
        const char *name;
        PagePolicy policy;
        const char *part;
    };
    const std::vector<Variant> variants = {
        {"open / none", PagePolicy::Open, "none"},
        {"adaptive / none", PagePolicy::OpenAdaptive, "none"},
        {"closed / none", PagePolicy::Closed, "none"},
        {"open / dbp", PagePolicy::Open, "dbp"},
        {"adaptive / dbp", PagePolicy::OpenAdaptive, "dbp"},
        {"closed / dbp", PagePolicy::Closed, "dbp"},
    };

    TextTable table({"variant", "gmean WS", "gmean MS"});
    for (const auto &v : variants) {
        RunConfig cfg = rc;
        cfg.base.controller.pagePolicy = v.policy;
        ExperimentRunner runner(cfg);
        Scheme scheme{v.name, "fr-fcfs", v.part};
        std::vector<double> ws, ms;
        for (const auto &mix : sensitivityMixes()) {
            MixResult r = runner.runMix(mix, scheme);
            ws.push_back(r.metrics.weightedSpeedup);
            ms.push_back(r.metrics.maxSlowdown);
        }
        table.beginRow();
        table.cell(v.name);
        table.cell(geomean(ws), 3);
        table.cell(geomean(ms), 3);
        std::cerr << "  [" << v.name << " done]\n";
    }
    table.print(std::cout);
    return 0;
}
