/**
 * @file
 * Figure 18 (extension): row-buffer management policy under
 * partitioning. Gmean weighted speedup / max slowdown of open,
 * open-adaptive (idle-timeout close) and closed page policies, for
 * FR-FCFS and for DBP, over the sensitivity mixes. Partitioning
 * preserves per-thread row locality, so the open policies should keep
 * their edge over closed-page, and adaptive should recoup part of the
 * conflict tRP without hurting hit streaks.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

struct Variant
{
    const char *name;
    PagePolicy policy;
    const char *part;
};

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> v = {
        {"open / none", PagePolicy::Open, "none"},
        {"adaptive / none", PagePolicy::OpenAdaptive, "none"},
        {"closed / none", PagePolicy::Closed, "none"},
        {"open / dbp", PagePolicy::Open, "dbp"},
        {"adaptive / dbp", PagePolicy::OpenAdaptive, "dbp"},
        {"closed / dbp", PagePolicy::Closed, "dbp"},
    };
    return v;
}

std::string
prefixFor(const Variant &v)
{
    return std::string(v.name) + "/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (const auto &v : variants()) {
        RunConfig cfg = ctx.config();
        cfg.base.controller.pagePolicy = v.policy;
        Scheme scheme{v.name, "fr-fcfs", v.part};
        planMixSweep(p, cfg, prefixFor(v), sensitivityMixes(),
                     {scheme});
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"variant", "gmean WS", "gmean MS"});
    for (const auto &v : variants()) {
        table.beginRow();
        table.cell(v.name);
        table.cell(geomean(sweepColumn(run, prefixFor(v),
                                       sensitivityMixes(), v.name,
                                       "ws")),
                   3);
        table.cell(geomean(sweepColumn(run, prefixFor(v),
                                       sensitivityMixes(), v.name,
                                       "ms")),
                   3);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig18",
    "page policy x partitioning",
    "Expected shape: open policies keep their edge over closed-page "
    "under DBP; adaptive recoups part of\nthe conflict tRP.",
    plan,
    render,
});

} // namespace
