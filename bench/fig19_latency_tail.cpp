/**
 * @file
 * Figure 19 (extension): tail read latency. Unfairness shows up first
 * in the latency tail — a victim's P95 balloons long before its mean
 * does. Reports per-scheme, over the sensitivity mixes: the mean P50 /
 * P95 across threads and the worst single thread's P95 (the
 * tail-fairness analogue of max slowdown). Bank partitioning should
 * compress the worst-thread tail.
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/system.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig19", "read-latency tails per scheme (bus cycles)",
                rc);

    const std::vector<Scheme> schemes = {
        schemeByName("FR-FCFS"), schemeByName("UBP"),
        schemeByName("DBP"), schemeByName("TCM"),
        schemeByName("DBP-TCM")};

    TextTable table({"scheme", "mean P50", "mean P95",
                     "worst-thread P95"});
    for (const auto &scheme : schemes) {
        double p50_sum = 0, p95_sum = 0, worst95 = 0;
        unsigned threads = 0;
        for (const auto &mix : sensitivityMixes()) {
            SystemParams params = applyScheme(rc.base, scheme);
            params.numCores = static_cast<unsigned>(mix.apps.size());
            auto owned = buildMixSources(mix, rc.seedBase);
            std::vector<TraceSource *> sources;
            for (auto &s : owned)
                sources.push_back(s.get());
            System sys(params, sources);
            sys.run(rc.warmupCpu + rc.measureCpu);

            for (unsigned t = 0; t < params.numCores; ++t) {
                auto tid = static_cast<ThreadId>(t);
                double p50 = sys.threadReadLatencyPercentile(tid, 0.5);
                double p95 = sys.threadReadLatencyPercentile(tid, 0.95);
                p50_sum += p50;
                p95_sum += p95;
                worst95 = std::max(worst95, p95);
                ++threads;
            }
            std::cerr << "  [" << mix.name << " / " << scheme.name
                      << "]\n";
        }
        table.beginRow();
        table.cell(scheme.name);
        table.cell(p50_sum / threads, 1);
        table.cell(p95_sum / threads, 1);
        table.cell(worst95, 1);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: partitioned schemes compress the"
                 " worst-thread P95 (victims stop queueing behind\n"
                 "other threads' row conflicts).\n";
    return 0;
}
