/**
 * @file
 * Figure 19 (extension): tail read latency. Unfairness shows up first
 * in the latency tail — a victim's P95 balloons long before its mean
 * does. Reports per-scheme, over the sensitivity mixes: the mean P50 /
 * P95 across threads and the worst single thread's P95 (the
 * tail-fairness analogue of max slowdown). Bank partitioning should
 * compress the worst-thread tail.
 */

#include <algorithm>

#include "bench_common.hh"
#include "sim/system.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP"), schemeByName("TCM"),
            schemeByName("DBP-TCM")};
}

Json
runTailJob(CampaignContext &ctx, const WorkloadMix &mix,
           const Scheme &scheme)
{
    const RunConfig &rc = ctx.config();
    SystemParams params = applyScheme(rc.base, scheme);
    params.numCores = static_cast<unsigned>(mix.apps.size());
    auto owned = buildMixSources(
        mix, jobSeed(rc.seedBase, mix.name, scheme.name));
    std::vector<TraceSource *> sources;
    for (auto &s : owned)
        sources.push_back(s.get());
    System sys(params, sources);
    sys.run(rc.warmupCpu + rc.measureCpu);

    Json p50 = Json::array();
    Json p95 = Json::array();
    for (unsigned t = 0; t < params.numCores; ++t) {
        auto tid = static_cast<ThreadId>(t);
        p50.push(Json(sys.threadReadLatencyPercentile(tid, 0.5)));
        p95.push(Json(sys.threadReadLatencyPercentile(tid, 0.95)));
    }
    Json j = Json::object();
    j.set("p50", std::move(p50));
    j.set("p95", std::move(p95));
    return j;
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    for (const auto &mix : sensitivityMixes()) {
        for (const auto &scheme : schemes()) {
            p.add(sweepKey("", mix.name, scheme.name),
                  [mix, scheme](CampaignContext &ctx) {
                      return runTailJob(ctx, mix, scheme);
                  });
        }
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"scheme", "mean P50", "mean P95",
                     "worst-thread P95"});
    for (const auto &scheme : schemes()) {
        double p50_sum = 0, p95_sum = 0, worst95 = 0;
        unsigned threads = 0;
        for (const auto &mix : sensitivityMixes()) {
            const Json &job =
                run.job(sweepKey("", mix.name, scheme.name));
            const Json &p50 = job.at("p50");
            const Json &p95 = job.at("p95");
            for (std::size_t t = 0; t < p95.size(); ++t) {
                p50_sum += p50.at(t).asDouble();
                p95_sum += p95.at(t).asDouble();
                worst95 = std::max(worst95, p95.at(t).asDouble());
                ++threads;
            }
        }
        table.beginRow();
        table.cell(scheme.name);
        table.cell(p50_sum / threads, 1);
        table.cell(p95_sum / threads, 1);
        table.cell(worst95, 1);
        run.summary("worst_thread_p95_" + scheme.name, worst95);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig19",
    "read-latency tails per scheme (bus cycles)",
    "Expected shape: partitioned schemes compress the worst-thread "
    "P95 (victims stop queueing behind\nother threads' row "
    "conflicts).",
    plan,
    render,
});

} // namespace
