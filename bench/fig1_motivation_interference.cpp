/**
 * @file
 * Figure 1 (motivation): inter-thread interference destroys row-buffer
 * locality. Each application's interference-free row-buffer hit rate
 * (alone) is compared with its actual hit rate while co-running in a
 * fully intensive mix under unpartitioned FR-FCFS, and with the hit
 * rate under equal bank partitioning (which restores isolation).
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    RunConfig rc = bench::makeRunConfig(argc, argv);
    bench::printHeader(
        "fig1", "row-buffer locality: alone vs shared vs UBP", rc);

    ExperimentRunner runner(rc);
    const WorkloadMix &mix = mixByName("W10"); // 100 % intensive.

    MixResult shared = runner.runMix(mix, schemeByName("FR-FCFS"));
    MixResult ubp = runner.runMix(mix, schemeByName("UBP"));

    TextTable table({"app", "alone RB hit", "shared RB hit",
                     "UBP RB hit", "lost (alone-shared)"});
    for (std::size_t t = 0; t < mix.apps.size(); ++t) {
        double alone = runner.aloneProfile(mix.apps[t]).rowBufferHitRate;
        table.beginRow();
        table.cell(mix.apps[t]);
        table.cell(alone, 3);
        table.cell(shared.rowHitRate[t], 3);
        table.cell(ubp.rowHitRate[t], 3);
        table.cell(alone - shared.rowHitRate[t], 3);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: shared << alone for high-locality"
                 " apps; UBP restores most of the loss.\n";
    return 0;
}
