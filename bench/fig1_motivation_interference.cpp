/**
 * @file
 * Figure 1 (motivation): inter-thread interference destroys row-buffer
 * locality. Each application's interference-free row-buffer hit rate
 * (alone) is compared with its actual hit rate while co-running in a
 * fully intensive mix under unpartitioned FR-FCFS, and with the hit
 * rate under equal bank partitioning (which restores isolation).
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const char *kMix = "W10"; // 100 % intensive.

void
plan(CampaignPlan &p, CampaignContext &)
{
    const WorkloadMix &mix = mixByName(kMix);
    for (const char *scheme : {"FR-FCFS", "UBP"}) {
        Scheme s = schemeByName(scheme);
        p.add(sweepKey("", mix.name, s.name),
              [mix, s](CampaignContext &ctx) {
                  return mixResultToJson(ctx.runMix(mix, s));
              });
    }
    for (const auto &app : mix.apps) {
        p.add("alone/" + app, [app](CampaignContext &ctx) {
            AloneBaseline b = ctx.baselines().get(ctx.config(), app);
            Json j = Json::object();
            j.set("row_hit_rate", b.profile.rowBufferHitRate);
            return j;
        });
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    const WorkloadMix &mix = mixByName(kMix);
    const Json &shared = run.job(sweepKey("", mix.name, "FR-FCFS"));
    const Json &ubp = run.job(sweepKey("", mix.name, "UBP"));

    TextTable table({"app", "alone RB hit", "shared RB hit",
                     "UBP RB hit", "lost (alone-shared)"});
    double lost_sum = 0.0;
    for (std::size_t t = 0; t < mix.apps.size(); ++t) {
        double alone =
            run.num("alone/" + mix.apps[t], "row_hit_rate");
        double sh = shared.at("row_hit_rate").at(t).asDouble();
        double ub = ubp.at("row_hit_rate").at(t).asDouble();
        lost_sum += alone - sh;
        table.beginRow();
        table.cell(mix.apps[t]);
        table.cell(alone, 3);
        table.cell(sh, 3);
        table.cell(ub, 3);
        table.cell(alone - sh, 3);
    }
    table.print(os);
    run.summary("mean_rb_hit_lost_shared",
                lost_sum / static_cast<double>(mix.apps.size()));
}

const CampaignRegistrar reg({
    "fig1",
    "row-buffer locality: alone vs shared vs UBP",
    "Expected shape: shared << alone for high-locality apps; UBP "
    "restores most of the loss.",
    plan,
    render,
});

} // namespace
