/**
 * @file
 * Figure 20 (extension): refresh mode x scheme. DRAM refresh steals
 * bank time; how much throughput and fairness it costs depends on the
 * refresh granularity and on whether banks are partitioned. All-bank
 * REF blocks a whole rank for tRFC; per-bank REFpb blocks one bank
 * for tRFCpb, so the other banks keep serving — and under DBP a
 * thread only ever stalls on refreshes of its own banks
 * (refresh-access parallelism, as in the DARP line of work). The
 * "darp" variant adds refresh-aware issue: pull-in during idle,
 * postponement under demand, out-of-order bank rotation.
 *
 * Every job runs with the protocol checker enabled, so the campaign
 * doubles as an end-to-end validation that no refresh mode violates
 * the DDR3 rules; the driver fails on any nonzero violation count.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

struct Mode
{
    const char *name;
    RefreshMode mode;
    bool aware;
};

const std::vector<Mode> &
modes()
{
    static const std::vector<Mode> m = {
        {"none", RefreshMode::None, false},
        {"all-bank", RefreshMode::AllBank, false},
        {"per-bank", RefreshMode::PerBank, false},
        {"darp", RefreshMode::PerBank, true},
    };
    return m;
}

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("DBP"),
            schemeByName("DBP-TCM")};
}

std::string
prefixFor(const Mode &m)
{
    return std::string(m.name) + "/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (const auto &m : modes()) {
        RunConfig cfg = ctx.config();
        cfg.base.controller.refresh.mode = m.mode;
        cfg.base.controller.refresh.aware = m.aware;
        cfg.base.protocolCheck = true;
        planMixSweep(p, cfg, prefixFor(m), sensitivityMixes(),
                     schemes());
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    for (const char *field : {"ws", "ms"}) {
        TextTable table({std::string("gmean ") + field + " (refresh)",
                         "FR-FCFS", "DBP", "DBP-TCM"});
        for (const auto &m : modes()) {
            table.beginRow();
            table.cell(m.name);
            for (const auto &s : schemes()) {
                double g = geomean(sweepColumn(run, prefixFor(m),
                                               sensitivityMixes(),
                                               s.name, field));
                table.cell(g, 3);
                run.summary(std::string("gmean_") + field + "_" +
                                prefixFor(m) + s.name,
                            g);
            }
        }
        table.print(os);
        os << '\n';
    }

    // How much of the refresh-induced loss does per-bank refresh
    // recover under DBP? (100 % = back to the no-refresh ideal.)
    auto gm = [&](const char *mode, const char *scheme,
                  const char *field) {
        return geomean(sweepColumn(run, std::string(mode) + "/",
                                   sensitivityMixes(), scheme, field));
    };
    double ws_none = gm("none", "DBP", "ws");
    double ws_all = gm("all-bank", "DBP", "ws");
    double ws_pb = gm("per-bank", "DBP", "ws");
    if (ws_none > ws_all) {
        double recovered =
            100.0 * (ws_pb - ws_all) / (ws_none - ws_all);
        run.summary("ws_loss_recovered_pct_DBP", recovered);
        os << "DBP weighted-speedup loss to refresh recovered by "
              "per-bank refresh: " << recovered << " %\n";
    }
}

const CampaignRegistrar reg({
    "fig20",
    "refresh mode x scheme (throughput, fairness, checker-clean)",
    "Expected shape: refresh costs throughput and fairness everywhere; "
    "per-bank refresh beats all-bank\nrefresh, and most clearly so "
    "under DBP, where a thread only stalls on its own banks' "
    "refreshes.",
    plan,
    render,
});

} // namespace
