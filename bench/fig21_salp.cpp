/**
 * @file
 * Figure 21 (extension): subarray-level parallelism x scheme. Bank
 * partitioning trades row-buffer isolation for bank-level parallelism:
 * a thread confined to its color set has fewer banks to spread misses
 * over. SALP/MASA (Kim et al., ISCA 2012) recovers parallelism
 * *inside* each bank — overlapping precharge with activation (SALP-1),
 * activation with write recovery (SALP-2), or keeping several
 * subarrays' row buffers open at once (MASA) — so the question this
 * campaign asks is whether DBP plus MASA closes the BLP gap that
 * partitioning opens: does DBP with MASA-capable banks meet or beat
 * DBP with single-subarray banks, and how does the same upgrade move
 * UBP?
 *
 * The "masa-8c" variant additionally colors frames by subarray
 * (subarray_color=1), exercising the subarray-granular partitioning
 * axis end to end.
 *
 * Every job runs with the protocol checker enabled, so the campaign
 * doubles as an end-to-end validation that no SALP mode violates the
 * DDR3 + subarray rules; the driver fails on any nonzero violation
 * count.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

struct Mode
{
    const char *name;
    SalpMode salp;
    unsigned subarrays;
    bool color;
};

const std::vector<Mode> &
modes()
{
    static const std::vector<Mode> m = {
        {"s1", SalpMode::None, 1, false},
        {"salp1-8", SalpMode::Salp1, 8, false},
        {"salp2-8", SalpMode::Salp2, 8, false},
        {"masa-4", SalpMode::Masa, 4, false},
        {"masa-8", SalpMode::Masa, 8, false},
        {"masa-8c", SalpMode::Masa, 8, true},
    };
    return m;
}

std::vector<Scheme>
schemes()
{
    return {schemeByName("UBP"), schemeByName("DBP")};
}

std::string
prefixFor(const Mode &m)
{
    return std::string(m.name) + "/";
}

void
plan(CampaignPlan &p, CampaignContext &ctx)
{
    for (const auto &m : modes()) {
        RunConfig cfg = ctx.config();
        cfg.base.controller.salp = m.salp;
        cfg.base.geometry.subarraysPerBank = m.subarrays;
        cfg.base.subarrayColoring = m.color;
        cfg.base.protocolCheck = true;
        planMixSweep(p, cfg, prefixFor(m), sensitivityMixes(),
                     schemes());
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    for (const char *field : {"ws", "ms"}) {
        TextTable table({std::string("gmean ") + field + " (salp)",
                         "UBP", "DBP"});
        for (const auto &m : modes()) {
            table.beginRow();
            table.cell(m.name);
            for (const auto &s : schemes()) {
                double g = geomean(sweepColumn(run, prefixFor(m),
                                               sensitivityMixes(),
                                               s.name, field));
                table.cell(g, 3);
                run.summary(std::string("gmean_") + field + "_" +
                                prefixFor(m) + s.name,
                            g);
            }
        }
        table.print(os);
        os << '\n';
    }

    auto gm = [&](const char *mode, const char *scheme,
                  const char *field) {
        return geomean(sweepColumn(run, std::string(mode) + "/",
                                   sensitivityMixes(), scheme, field));
    };

    // Does MASA close the BLP gap partitioning opens? Compare each
    // scheme's MASA-equipped machine against its single-subarray one,
    // and the partitioning gap (DBP over UBP) in both worlds.
    double ubp_s1 = gm("s1", "UBP", "ws");
    double ubp_masa = gm("masa-8", "UBP", "ws");
    double dbp_s1 = gm("s1", "DBP", "ws");
    double dbp_masa = gm("masa-8", "DBP", "ws");
    run.summary("ws_gain_pct_UBP_masa8", pctGain(ubp_s1, ubp_masa));
    run.summary("ws_gain_pct_DBP_masa8", pctGain(dbp_s1, dbp_masa));
    os << "weighted-speedup gain from MASA (8 subarrays): UBP "
       << pctGain(ubp_s1, ubp_masa) << " %, DBP "
       << pctGain(dbp_s1, dbp_masa) << " %\n";
    os << "DBP with MASA vs DBP with single-subarray banks: "
       << pctGain(dbp_s1, dbp_masa) << " % ws\n";
}

const CampaignRegistrar reg({
    "fig21",
    "subarray-level parallelism (SALP/MASA) x scheme",
    "Expected shape: SALP modes recover intra-bank parallelism, so "
    "every scheme gains and the\npartitioned schemes gain most — "
    "DBP+MASA should at least match DBP with single-subarray\nbanks, "
    "closing part of the BLP gap bank partitioning opens.",
    plan,
    render,
});

} // namespace
