/**
 * @file
 * Figure 2 (motivation): equal bank partitioning caps bank-level
 * parallelism (claim C4). Each application runs alone with its pages
 * confined to k banks, k in {1, 2, 4, 8, 16, 32}; IPC is reported
 * normalized to the all-banks case. High-BLP applications (mcf-like)
 * keep gaining with more banks — a static equal share (4 banks at
 * 8 cores / 32 banks) leaves their parallelism on the table, which is
 * exactly the deficiency DBP repairs.
 */

#include <iostream>

#include "bench_common.hh"
#include "part/policy.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace dbpsim;

namespace {

/** Alone IPC with the footprint confined to @p k banks. */
double
ipcWithBanks(const RunConfig &rc, const std::string &app, unsigned k)
{
    SystemParams params = rc.base;
    params.numCores = 1;
    params.partition = "none";

    auto source = makeSpecSource(app, rc.seedBase * 31 + 7);
    std::vector<TraceSource *> raw{source.get()};
    System sys(params, raw);

    auto order = channelSpreadColorOrder(params.geometry.channels,
                                         params.geometry.ranksPerChannel,
                                         params.geometry.banksPerRank);
    std::vector<unsigned> colors(order.begin(), order.begin() + k);
    sys.osMemory().setColorSet(0, colors);

    return sys.runAndMeasure(rc.warmupCpu, rc.measureCpu).at(0);
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig rc = bench::makeRunConfig(argc, argv);
    bench::printHeader("fig2",
                       "IPC vs available banks (alone, normalized)", rc);

    const std::vector<std::string> apps = {"mcf", "omnetpp", "lbm",
                                           "libquantum"};
    const std::vector<unsigned> banks = {1, 2, 4, 8, 16, 32};

    TextTable table({"app", "1", "2", "4", "8", "16", "32"});
    for (const auto &app : apps) {
        std::vector<double> ipcs;
        for (unsigned k : banks)
            ipcs.push_back(ipcWithBanks(rc, app, k));
        double base = ipcs.back();
        table.beginRow();
        table.cell(app);
        for (double v : ipcs)
            table.cell(v / base, 3);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: libquantum saturates by ~2 banks;"
                 " mcf/omnetpp keep improving well past the 4-bank\n"
                 "equal share of an 8-core machine.\n";
    return 0;
}
