/**
 * @file
 * Figure 2 (motivation): equal bank partitioning caps bank-level
 * parallelism (claim C4). Each application runs alone with its pages
 * confined to k banks, k in {1, 2, 4, 8, 16, 32}; IPC is reported
 * normalized to the all-banks case. High-BLP applications (mcf-like)
 * keep gaining with more banks — a static equal share (4 banks at
 * 8 cores / 32 banks) leaves their parallelism on the table, which is
 * exactly the deficiency DBP repairs.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<std::string> &
apps()
{
    static const std::vector<std::string> a = {"mcf", "omnetpp", "lbm",
                                               "libquantum"};
    return a;
}

const std::vector<unsigned> &
bankCounts()
{
    static const std::vector<unsigned> k = {1, 2, 4, 8, 16, 32};
    return k;
}

std::string
key(const std::string &app, unsigned k)
{
    return app + "/" + std::to_string(k) + "bk";
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    for (const auto &app : apps()) {
        for (unsigned k : bankCounts()) {
            p.add(key(app, k), [app, k](CampaignContext &ctx) {
                Json j = Json::object();
                j.set("ipc",
                      aloneIpcWithBanks(ctx.config(), app, k));
                return j;
            });
        }
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"app", "1", "2", "4", "8", "16", "32"});
    for (const auto &app : apps()) {
        double base = run.num(key(app, 32), "ipc");
        table.beginRow();
        table.cell(app);
        for (unsigned k : bankCounts())
            table.cell(run.num(key(app, k), "ipc") / base, 3);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig2",
    "IPC vs available banks (alone, normalized)",
    "Expected shape: libquantum saturates by ~2 banks; mcf/omnetpp "
    "keep improving well past the 4-bank\nequal share of an 8-core "
    "machine.",
    plan,
    render,
});

} // namespace
