/**
 * @file
 * Figure 3: DBP's bank-demand estimator tracks true demand. For each
 * intensive application, the alone-run row-miss intensity
 * (MPKI * (1 - RBHR)) — the signal DBP deals banks in proportion to —
 * is compared with the empirically "sufficient" bank count: the
 * smallest k whose confined-to-k-banks IPC reaches 90 % of the
 * all-banks IPC. The two should rank applications the same way.
 */

#include "bench_common.hh"
#include "trace/spec_profiles.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const std::vector<unsigned> &
bankCounts()
{
    static const std::vector<unsigned> k = {1, 2, 4, 8, 16, 32};
    return k;
}

std::vector<std::string>
intensiveApps()
{
    std::vector<std::string> out;
    for (const auto &info : specProfiles())
        if (info.intensive)
            out.push_back(info.name);
    return out;
}

std::string
bankKey(const std::string &app, unsigned k)
{
    return app + "/" + std::to_string(k) + "bk";
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    for (const auto &app : intensiveApps()) {
        p.add(app + "/profile", [app](CampaignContext &ctx) {
            AloneBaseline b = ctx.baselines().get(ctx.config(), app);
            Json j = Json::object();
            j.set("mpki", b.profile.mpki);
            j.set("row_hit_rate", b.profile.rowBufferHitRate);
            return j;
        });
        for (unsigned k : bankCounts()) {
            p.add(bankKey(app, k), [app, k](CampaignContext &ctx) {
                Json j = Json::object();
                j.set("ipc",
                      aloneIpcWithBanks(ctx.config(), app, k));
                return j;
            });
        }
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"app", "MPKI", "RB hit", "miss intensity",
                     "sufficient banks (90% IPC)"});
    for (const auto &app : intensiveApps()) {
        double mpki = run.num(app + "/profile", "mpki");
        double rbhr = run.num(app + "/profile", "row_hit_rate");
        // DBP's demand signal: row misses per kilo-instruction.
        double demand = mpki * (1.0 - rbhr);

        double full = run.num(bankKey(app, 32), "ipc");
        unsigned sufficient = 32;
        for (unsigned k : bankCounts()) {
            if (run.num(bankKey(app, k), "ipc") >= 0.9 * full) {
                sufficient = k;
                break;
            }
        }

        table.beginRow();
        table.cell(app);
        table.cell(mpki, 2);
        table.cell(rbhr, 2);
        table.cell(demand, 2);
        table.cell(sufficient);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig3",
    "bank-demand estimation vs sufficient banks",
    "Expected shape: miss intensity and sufficient bank count rank "
    "the applications consistently\n(streaming apps low, irregular "
    "intensive apps high).",
    plan,
    render,
});

} // namespace
