/**
 * @file
 * Figure 3: DBP's bank-demand estimator tracks true demand. For each
 * intensive application, the alone-run row-miss intensity
 * (MPKI * (1 - RBHR)) — the signal DBP deals banks in proportion to —
 * is compared with the empirically "sufficient" bank count: the
 * smallest k whose confined-to-k-banks IPC reaches 90 % of the
 * all-banks IPC. The two should rank applications the same way.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "part/part_dbp.hh"
#include "part/policy.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

using namespace dbpsim;

namespace {

double
ipcWithBanks(const RunConfig &rc, const std::string &app, unsigned k)
{
    SystemParams params = rc.base;
    params.numCores = 1;
    params.partition = "none";
    auto source = makeSpecSource(app, rc.seedBase * 31 + 7);
    std::vector<TraceSource *> raw{source.get()};
    System sys(params, raw);
    auto order = channelSpreadColorOrder(params.geometry.channels,
                                         params.geometry.ranksPerChannel,
                                         params.geometry.banksPerRank);
    std::vector<unsigned> colors(order.begin(), order.begin() + k);
    sys.osMemory().setColorSet(0, colors);
    return sys.runAndMeasure(rc.warmupCpu, rc.measureCpu).at(0);
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig rc = bench::makeRunConfig(argc, argv);
    bench::printHeader("fig3",
                       "bank-demand estimation vs sufficient banks", rc);

    ExperimentRunner runner(rc);
    const std::vector<unsigned> ks = {1, 2, 4, 8, 16, 32};

    TextTable table({"app", "MPKI", "RB hit", "miss intensity",
                     "sufficient banks (90% IPC)"});
    for (const auto &info : specProfiles()) {
        if (!info.intensive)
            continue;
        ThreadMemProfile p = runner.aloneProfile(info.name);
        // DBP's demand signal: row misses per kilo-instruction.
        double demand = p.mpki * (1.0 - p.rowBufferHitRate);

        double full = ipcWithBanks(rc, info.name, 32);
        unsigned sufficient = 32;
        for (unsigned k : ks) {
            if (ipcWithBanks(rc, info.name, k) >= 0.9 * full) {
                sufficient = k;
                break;
            }
        }

        table.beginRow();
        table.cell(info.name);
        table.cell(p.mpki, 2);
        table.cell(p.rowBufferHitRate, 2);
        table.cell(demand, 2);
        table.cell(sufficient);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: miss intensity and sufficient bank"
                 " count rank the applications consistently\n"
                 "(streaming apps low, irregular intensive apps high).\n";
    return 0;
}
