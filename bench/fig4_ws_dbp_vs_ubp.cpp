/**
 * @file
 * Figure 4 (headline, claim C1 throughput): weighted speedup of
 * FR-FCFS, equal bank partitioning (UBP) and Dynamic Bank Partitioning
 * (DBP) over the twelve standard mixes. The paper reports DBP beating
 * UBP by 4.3 % gmean.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig4", "weighted speedup: FR-FCFS vs UBP vs DBP", rc);

    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("UBP"),
                                   schemeByName("DBP")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, allMixes(), schemes);

    printMetric(rows, schemes, weightedSpeedupOf, "weighted speedup");

    std::vector<double> ubp, dbp;
    for (const auto &row : rows) {
        ubp.push_back(row.results[1].metrics.weightedSpeedup);
        dbp.push_back(row.results[2].metrics.weightedSpeedup);
    }
    std::cout << "DBP vs UBP gmean WS gain: "
              << formatDouble(pctGain(geomean(ubp), geomean(dbp)), 2)
              << " %  (paper: +4.3 %)\n";
    return 0;
}
