/**
 * @file
 * Figure 4 (headline, claim C1 throughput): weighted speedup of
 * FR-FCFS, equal bank partitioning (UBP) and Dynamic Bank Partitioning
 * (DBP) over the twelve standard mixes. The paper reports DBP beating
 * UBP by 4.3 % gmean.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, allMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", allMixes(), schemes(), "ws",
                     "weighted speedup", os);

    double ubp = geomean(sweepColumn(run, "", allMixes(), "UBP", "ws"));
    double dbp = geomean(sweepColumn(run, "", allMixes(), "DBP", "ws"));
    double gain = pctGain(ubp, dbp);
    run.summary("gmean_ws_gain_dbp_vs_ubp_pct", gain);
    os << "DBP vs UBP gmean WS gain: " << formatDouble(gain, 2)
       << " %  (paper: +4.3 %)\n";
}

const CampaignRegistrar reg({
    "fig4",
    "weighted speedup: FR-FCFS vs UBP vs DBP",
    "Expected shape: DBP above UBP above FR-FCFS on most mixes, with "
    "a positive gmean gain.",
    plan,
    render,
});

} // namespace
