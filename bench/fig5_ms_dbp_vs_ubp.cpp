/**
 * @file
 * Figure 5 (headline, claim C1 fairness): maximum slowdown (lower is
 * fairer) of FR-FCFS, UBP and DBP over the twelve standard mixes. The
 * paper reports DBP improving fairness by 16 % gmean over UBP.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, allMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", allMixes(), schemes(), "ms",
                     "maximum slowdown (lower = fairer)", os);

    double ubp = geomean(sweepColumn(run, "", allMixes(), "UBP", "ms"));
    double dbp = geomean(sweepColumn(run, "", allMixes(), "DBP", "ms"));
    // Fairness improvement = reduction in max slowdown.
    double gain = pctDrop(ubp, dbp);
    run.summary("gmean_fairness_gain_dbp_vs_ubp_pct", gain);
    os << "DBP vs UBP gmean fairness gain: " << formatDouble(gain, 2)
       << " %  (paper: +16 %)\n";
}

const CampaignRegistrar reg({
    "fig5",
    "maximum slowdown: FR-FCFS vs UBP vs DBP",
    "Expected shape: DBP's max slowdown below UBP's on most mixes "
    "(positive fairness gain).",
    plan,
    render,
});

} // namespace
