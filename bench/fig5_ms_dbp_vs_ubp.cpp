/**
 * @file
 * Figure 5 (headline, claim C1 fairness): maximum slowdown (lower is
 * fairer) of FR-FCFS, UBP and DBP over the twelve standard mixes. The
 * paper reports DBP improving fairness by 16 % gmean over UBP.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig5", "maximum slowdown: FR-FCFS vs UBP vs DBP", rc);

    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("UBP"),
                                   schemeByName("DBP")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, allMixes(), schemes);

    printMetric(rows, schemes, maxSlowdownOf,
                "maximum slowdown (lower = fairer)");

    std::vector<double> ubp, dbp;
    for (const auto &row : rows) {
        ubp.push_back(row.results[1].metrics.maxSlowdown);
        dbp.push_back(row.results[2].metrics.maxSlowdown);
    }
    // Fairness improvement = reduction in max slowdown.
    double gain = 100.0 * (geomean(ubp) - geomean(dbp)) / geomean(ubp);
    std::cout << "DBP vs UBP gmean fairness gain: "
              << formatDouble(gain, 2) << " %  (paper: +16 %)\n";
    return 0;
}
