/**
 * @file
 * Figure 6 (claims C2 + C6): composing DBP with TCM scheduling.
 * Weighted speedup and maximum slowdown of TCM alone vs DBP-TCM over
 * the twelve mixes. The paper reports +6.2 % throughput and +16.7 %
 * fairness for the combination — the orthogonality argument: the
 * partition removes inter-thread bank conflicts while the scheduler
 * orders the remaining intra-bank contention.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("TCM"), schemeByName("DBP-TCM")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, allMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", allMixes(), schemes(), "ws",
                     "weighted speedup", os);
    printSweepMetric(run, "", allMixes(), schemes(), "ms",
                     "maximum slowdown (lower = fairer)", os);

    double tcm_ws = geomean(sweepColumn(run, "", allMixes(), "TCM", "ws"));
    double comb_ws =
        geomean(sweepColumn(run, "", allMixes(), "DBP-TCM", "ws"));
    double tcm_ms = geomean(sweepColumn(run, "", allMixes(), "TCM", "ms"));
    double comb_ms =
        geomean(sweepColumn(run, "", allMixes(), "DBP-TCM", "ms"));

    double ws_gain = pctGain(tcm_ws, comb_ws);
    double fair_gain = pctDrop(tcm_ms, comb_ms);
    run.summary("gmean_ws_gain_dbptcm_vs_tcm_pct", ws_gain);
    run.summary("gmean_fairness_gain_dbptcm_vs_tcm_pct", fair_gain);
    os << "DBP-TCM vs TCM gmean WS gain: " << formatDouble(ws_gain, 2)
       << " %  (paper: +6.2 %)\n";
    os << "DBP-TCM vs TCM gmean fairness gain: "
       << formatDouble(fair_gain, 2) << " %  (paper: +16.7 %)\n";
}

const CampaignRegistrar reg({
    "fig6",
    "TCM vs DBP-TCM (throughput and fairness)",
    "Expected shape: the combination beats TCM alone on both metrics "
    "for most mixes.",
    plan,
    render,
});

} // namespace
