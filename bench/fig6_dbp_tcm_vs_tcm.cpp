/**
 * @file
 * Figure 6 (claims C2 + C6): composing DBP with TCM scheduling.
 * Weighted speedup and maximum slowdown of TCM alone vs DBP-TCM over
 * the twelve mixes. The paper reports +6.2 % throughput and +16.7 %
 * fairness for the combination — the orthogonality argument: the
 * partition removes inter-thread bank conflicts while the scheduler
 * orders the remaining intra-bank contention.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig6", "TCM vs DBP-TCM (throughput and fairness)", rc);

    std::vector<Scheme> schemes = {schemeByName("TCM"),
                                   schemeByName("DBP-TCM")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, allMixes(), schemes);

    printMetric(rows, schemes, weightedSpeedupOf, "weighted speedup");
    printMetric(rows, schemes, maxSlowdownOf,
                "maximum slowdown (lower = fairer)");

    std::vector<double> tcm_ws, comb_ws, tcm_ms, comb_ms;
    for (const auto &row : rows) {
        tcm_ws.push_back(row.results[0].metrics.weightedSpeedup);
        comb_ws.push_back(row.results[1].metrics.weightedSpeedup);
        tcm_ms.push_back(row.results[0].metrics.maxSlowdown);
        comb_ms.push_back(row.results[1].metrics.maxSlowdown);
    }
    std::cout << "DBP-TCM vs TCM gmean WS gain: "
              << formatDouble(pctGain(geomean(tcm_ws), geomean(comb_ws)),
                              2)
              << " %  (paper: +6.2 %)\n";
    double fair = 100.0 * (geomean(tcm_ms) - geomean(comb_ms)) /
        geomean(tcm_ms);
    std::cout << "DBP-TCM vs TCM gmean fairness gain: "
              << formatDouble(fair, 2) << " %  (paper: +16.7 %)\n";
    return 0;
}
