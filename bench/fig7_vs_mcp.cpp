/**
 * @file
 * Figure 7 (claims C3 + C5): comparison against Memory Channel
 * Partitioning. Weighted speedup and maximum slowdown of MCP, DBP and
 * DBP-TCM over the twelve mixes. The paper reports DBP-TCM beating MCP
 * by 5.3 % throughput and 37 % fairness — MCP's channel-granular
 * split concentrates the intensive threads' contention.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("MCP"), schemeByName("DBP"),
            schemeByName("DBP-TCM")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, allMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", allMixes(), schemes(), "ws",
                     "weighted speedup", os);
    printSweepMetric(run, "", allMixes(), schemes(), "ms",
                     "maximum slowdown (lower = fairer)", os);

    double mcp_ws = geomean(sweepColumn(run, "", allMixes(), "MCP", "ws"));
    double comb_ws =
        geomean(sweepColumn(run, "", allMixes(), "DBP-TCM", "ws"));
    double mcp_ms = geomean(sweepColumn(run, "", allMixes(), "MCP", "ms"));
    double comb_ms =
        geomean(sweepColumn(run, "", allMixes(), "DBP-TCM", "ms"));

    double ws_gain = pctGain(mcp_ws, comb_ws);
    double fair_gain = pctDrop(mcp_ms, comb_ms);
    run.summary("gmean_ws_gain_dbptcm_vs_mcp_pct", ws_gain);
    run.summary("gmean_fairness_gain_dbptcm_vs_mcp_pct", fair_gain);
    os << "DBP-TCM vs MCP gmean WS gain: " << formatDouble(ws_gain, 2)
       << " %  (paper: +5.3 %)\n";
    os << "DBP-TCM vs MCP gmean fairness gain: "
       << formatDouble(fair_gain, 2) << " %  (paper: +37 %)\n";
}

const CampaignRegistrar reg({
    "fig7",
    "MCP vs DBP vs DBP-TCM",
    "Expected shape: DBP-TCM ahead of MCP on throughput and far ahead "
    "on fairness.",
    plan,
    render,
});

} // namespace
