/**
 * @file
 * Figure 7 (claims C3 + C5): comparison against Memory Channel
 * Partitioning. Weighted speedup and maximum slowdown of MCP, DBP and
 * DBP-TCM over the twelve mixes. The paper reports DBP-TCM beating MCP
 * by 5.3 % throughput and 37 % fairness — MCP's channel-granular
 * split concentrates the intensive threads' contention.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig7", "MCP vs DBP vs DBP-TCM", rc);

    std::vector<Scheme> schemes = {schemeByName("MCP"),
                                   schemeByName("DBP"),
                                   schemeByName("DBP-TCM")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, allMixes(), schemes);

    printMetric(rows, schemes, weightedSpeedupOf, "weighted speedup");
    printMetric(rows, schemes, maxSlowdownOf,
                "maximum slowdown (lower = fairer)");

    std::vector<double> mcp_ws, comb_ws, mcp_ms, comb_ms;
    for (const auto &row : rows) {
        mcp_ws.push_back(row.results[0].metrics.weightedSpeedup);
        comb_ws.push_back(row.results[2].metrics.weightedSpeedup);
        mcp_ms.push_back(row.results[0].metrics.maxSlowdown);
        comb_ms.push_back(row.results[2].metrics.maxSlowdown);
    }
    std::cout << "DBP-TCM vs MCP gmean WS gain: "
              << formatDouble(pctGain(geomean(mcp_ws), geomean(comb_ws)),
                              2)
              << " %  (paper: +5.3 %)\n";
    double fair = 100.0 * (geomean(mcp_ms) - geomean(comb_ms)) /
        geomean(mcp_ms);
    std::cout << "DBP-TCM vs MCP gmean fairness gain: "
              << formatDouble(fair, 2) << " %  (paper: +37 %)\n";
    return 0;
}
