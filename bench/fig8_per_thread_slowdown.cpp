/**
 * @file
 * Figure 8 (claim C5): per-thread slowdowns inside one mix. MCP packs
 * the intensive threads into a channel subset and inflates their
 * slowdowns; DBP keeps every thread's slowdown moderate. One row per
 * application of mix W06, one column per scheme.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    Config cfg;
    RunConfig rc = makeRunConfig(argc, argv, &cfg);
    printHeader("fig8", "per-thread slowdowns in one mix", rc);

    const WorkloadMix &mix = mixByName(cfg.getString("mix", "W06"));
    std::vector<Scheme> schemes = {
        schemeByName("FR-FCFS"), schemeByName("MCP"),
        schemeByName("DBP"), schemeByName("DBP-TCM")};

    ExperimentRunner runner(rc);
    std::vector<MixResult> results;
    for (const auto &s : schemes)
        results.push_back(runner.runMix(mix, s));

    std::vector<std::string> headers{"app"};
    for (const auto &s : schemes)
        headers.push_back(s.name);
    TextTable table(headers);
    for (std::size_t t = 0; t < mix.apps.size(); ++t) {
        table.beginRow();
        table.cell(mix.apps[t]);
        for (const auto &r : results)
            table.cell(r.metrics.slowdowns[t], 3);
    }
    table.beginRow();
    table.cell("MAX");
    for (const auto &r : results)
        table.cell(r.metrics.maxSlowdown, 3);
    table.print(std::cout);

    std::cout << "\nExpected shape: MCP's worst thread (an intensive"
                 " one) suffers far more than under DBP/DBP-TCM.\n";
    return 0;
}
