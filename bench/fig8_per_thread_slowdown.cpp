/**
 * @file
 * Figure 8 (claim C5): per-thread slowdowns inside one mix. MCP packs
 * the intensive threads into a channel subset and inflates their
 * slowdowns; DBP keeps every thread's slowdown moderate. One row per
 * application of mix W06, one column per scheme.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

const char *kMix = "W06";

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("MCP"),
            schemeByName("DBP"), schemeByName("DBP-TCM")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, {mixByName(kMix)}, schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    const WorkloadMix &mix = mixByName(kMix);
    const std::vector<Scheme> ss = schemes();

    std::vector<std::string> headers{"app"};
    for (const auto &s : ss)
        headers.push_back(s.name);
    TextTable table(headers);
    for (std::size_t t = 0; t < mix.apps.size(); ++t) {
        table.beginRow();
        table.cell(mix.apps[t]);
        for (const auto &s : ss) {
            const Json &job = run.job(sweepKey("", mix.name, s.name));
            table.cell(job.at("slowdowns").at(t).asDouble(), 3);
        }
    }
    table.beginRow();
    table.cell("MAX");
    for (const auto &s : ss) {
        double ms = run.num(sweepKey("", mix.name, s.name), "ms");
        table.cell(ms, 3);
        run.summary("max_slowdown_" + s.name, ms);
    }
    table.print(os);
}

const CampaignRegistrar reg({
    "fig8",
    "per-thread slowdowns in one mix",
    "Expected shape: MCP's worst thread (an intensive one) suffers far "
    "more than under DBP/DBP-TCM.",
    plan,
    render,
});

} // namespace
