/**
 * @file
 * Figure 9: harmonic mean of speedups — the balanced
 * throughput-and-fairness metric — for the six paper schemes over the
 * twelve mixes (gmean summary). DBP-TCM should lead: it wins on both
 * component metrics.
 */

#include <iostream>

#include "bench_common.hh"

using namespace dbpsim;
using namespace dbpsim::bench;

int
main(int argc, char **argv)
{
    RunConfig rc = makeRunConfig(argc, argv);
    printHeader("fig9", "harmonic speedup across schemes", rc);

    std::vector<Scheme> schemes = {
        schemeByName("FR-FCFS"), schemeByName("UBP"),
        schemeByName("DBP"),     schemeByName("TCM"),
        schemeByName("DBP-TCM"), schemeByName("MCP")};
    ExperimentRunner runner(rc);
    auto rows = runSweep(runner, allMixes(), schemes);

    printMetric(rows, schemes, harmonicSpeedupOf,
                "harmonic speedup (higher = better balance)");
    return 0;
}
