/**
 * @file
 * Figure 9: harmonic mean of speedups — the balanced
 * throughput-and-fairness metric — for the six paper schemes over the
 * twelve mixes (gmean summary). DBP-TCM should lead: it wins on both
 * component metrics.
 */

#include "bench_common.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

std::vector<Scheme>
schemes()
{
    return {schemeByName("FR-FCFS"), schemeByName("UBP"),
            schemeByName("DBP"),     schemeByName("TCM"),
            schemeByName("DBP-TCM"), schemeByName("MCP")};
}

void
plan(CampaignPlan &p, CampaignContext &)
{
    planMixSweep(p, allMixes(), schemes());
}

void
render(CampaignRun &run, std::ostream &os)
{
    printSweepMetric(run, "", allMixes(), schemes(), "hs",
                     "harmonic speedup (higher = better balance)", os);
}

const CampaignRegistrar reg({
    "fig9",
    "harmonic speedup across schemes",
    "Expected shape: DBP-TCM leads the gmean row; FR-FCFS trails.",
    plan,
    render,
});

} // namespace
