/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths:
 * address decode/encode, DRAM channel command checks, scheduler
 * comparators under a loaded queue, frame allocation, synthetic trace
 * generation, and full-system cycles/second. These guard the
 * simulator's own performance (a figure sweep runs ~500 simulations).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "dram/addr_map.hh"
#include "dram/channel.hh"
#include "mem/sched_frfcfs.hh"
#include "os/frame_alloc.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

using namespace dbpsim;

namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.rowsPerBank = 4096;
    return g;
}

void
BM_AddrDecode(benchmark::State &state)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.decode(a));
        a += 4096 + 64;
    }
}
BENCHMARK(BM_AddrDecode);

void
BM_AddrRoundTrip(benchmark::State &state)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.encode(map.decode(a)));
        a += 8192 + 64;
    }
}
BENCHMARK(BM_AddrRoundTrip);

void
BM_ChannelCanIssue(benchmark::State &state)
{
    DramChannel ch(geo(), ddr3_1600(), 0);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    // dbplint:allow(cycle-literal) reason=arbitrary probe cycle for the microbenchmark loop, not a device timing
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ch.canIssue(DramCmd::Read, 0, 0, 5, now));
        ++now;
    }
}
BENCHMARK(BM_ChannelCanIssue);

void
BM_SchedulerComparator(benchmark::State &state)
{
    DramChannel ch(geo(), ddr3_1600(), 0);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    FrFcfsScheduler sched;
    SchedContext ctx{ch, 100};
    MemRequest a, b;
    a.coord.bank = 0;
    a.coord.row = 5;
    a.enqueueCycle = 10;
    b.coord.bank = 1;
    b.coord.row = 7;
    b.enqueueCycle = 5;
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.higherPriority(a, b, ctx));
}
BENCHMARK(BM_SchedulerComparator);

void
BM_FrameAllocate(benchmark::State &state)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    auto alloc = std::make_unique<FrameAllocator>(map);
    std::vector<unsigned> colors = {0, 5, 9, 13};
    std::size_t cursor = 0;
    std::uint64_t count = 0;
    for (auto _ : state) {
        std::uint64_t f = alloc->allocate(colors, cursor);
        benchmark::DoNotOptimize(f);
        alloc->release(f);
        ++count;
    }
}
BENCHMARK(BM_FrameAllocate);

void
BM_SyntheticNext(benchmark::State &state)
{
    auto src = makeSpecSource("mcf", 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(src->next());
}
BENCHMARK(BM_SyntheticNext);

void
BM_SystemCpuCycles(benchmark::State &state)
{
    auto a = makeSpecSource("mcf", 1);
    auto b = makeSpecSource("libquantum", 2);
    std::vector<TraceSource *> raw{a.get(), b.get()};
    SystemParams params;
    params.numCores = 2;
    params.geometry.rowsPerBank = 4096;
    System sys(params, raw);
    sys.run(10'000); // warm the footprints a little.
    for (auto _ : state)
        sys.run(1000);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SystemCpuCycles)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
