/**
 * @file
 * Table 1: the simulated system configuration — regenerates the
 * paper-style configuration table from the live defaults so the
 * numbers in EXPERIMENTS.md can never drift from the code.
 */

#include "bench_common.hh"
#include "dram/timing.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

void
plan(CampaignPlan &, CampaignContext &)
{
    // Render-only: the table is derived from the configuration itself.
}

void
render(CampaignRun &run, std::ostream &os)
{
    const SystemParams &p = run.config().base;
    DramTiming t = p.timing();

    TextTable table({"component", "configuration"});
    auto row = [&](const std::string &k, const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };

    row("cores", std::to_string(p.numCores) + " (trace-driven, " +
        std::to_string(p.core.issueWidth) + "-wide, " +
        std::to_string(p.core.windowSize) + "-entry window, " +
        std::to_string(p.core.mshrs) + " MSHRs, " +
        std::to_string(p.core.storeBufferSize) + "-entry store buffer)");
    row("cpu clock", "bus x " + std::to_string(p.cpuRatio) +
        " (3.2 GHz over 800 MHz)");
    row("memory", std::to_string(p.geometry.channels) + " channels x " +
        std::to_string(p.geometry.ranksPerChannel) + " ranks x " +
        std::to_string(p.geometry.banksPerRank) + " banks = " +
        std::to_string(p.geometry.totalBanks()) + " banks, " +
        std::to_string(p.geometry.capacityBytes() >> 30) + " GiB");
    row("dram", t.name + "  tRCD/tRP/tCL " + std::to_string(t.tRCD) +
        "/" + std::to_string(t.tRP) + "/" + std::to_string(t.tCL) +
        ", tRAS " + std::to_string(t.tRAS) + ", tFAW " +
        std::to_string(t.tFAW) + ", tREFI/tRFC " +
        std::to_string(t.tREFI) + "/" + std::to_string(t.tRFC));
    row("row / line / page",
        std::to_string(p.geometry.rowBytes) + " B row, " +
        std::to_string(p.geometry.lineBytes) + " B line, " +
        std::to_string(p.geometry.pageBytes) + " B OS page");
    row("controller", "per channel: " +
        std::to_string(p.controller.readQueueSize) + "-entry read / " +
        std::to_string(p.controller.writeQueueSize) +
        "-entry write queue, drain " +
        std::to_string(p.controller.writeHiWatermark) + "/" +
        std::to_string(p.controller.writeLoWatermark) +
        ", open-page");
    row("address map", mapSchemeName(p.scheme) +
        " interleave (frame-homogeneous banks; page coloring)");
    row("profiling interval",
        std::to_string(p.profileIntervalCpu) + " CPU cycles");
    row("dbp", "lightMpki " + formatDouble(p.dbp.lightMpki, 1) +
        ", demand = MPKI x (1 - RBHR)" +
        ", hysteresis " + std::to_string(p.dbp.hysteresisBanks) +
        " bank(s), light share cap " +
        formatDouble(p.dbp.lightShareCap, 2));
    row("migration", "eager, cost = 1 page of bursts at source and "
        "destination banks, cap " +
        std::to_string(p.partMgr.maxMigratePages) + " pages");

    table.print(os);
}

const CampaignRegistrar reg({
    "tab1",
    "system configuration",
    "",
    plan,
    render,
});

} // namespace
