/**
 * @file
 * Table 2: benchmark characteristics — every application profile run
 * alone on the full machine; reports IPC, MPKI, intrinsic row-buffer
 * hit rate, bank-level parallelism, footprint and class. These are
 * the measured inputs the partitioning policies act on (the analogue
 * of the SPEC characterization table in the paper).
 */

#include "bench_common.hh"
#include "trace/spec_profiles.hh"

namespace {

using namespace dbpsim;
using namespace dbpsim::bench;

void
plan(CampaignPlan &p, CampaignContext &)
{
    for (const auto &info : specProfiles()) {
        const std::string app = info.name;
        p.add(app, [app](CampaignContext &ctx) {
            AloneBaseline b = ctx.baselines().get(ctx.config(), app);
            Json j = Json::object();
            j.set("ipc", b.ipc);
            j.set("mpki", b.profile.mpki);
            j.set("row_hit_rate", b.profile.rowBufferHitRate);
            j.set("blp", b.profile.blp);
            j.set("footprint_pages",
                  static_cast<std::int64_t>(b.profile.footprintPages));
            return j;
        });
    }
}

void
render(CampaignRun &run, std::ostream &os)
{
    TextTable table({"app", "class", "IPC", "MPKI", "RB hit",
                     "BLP", "pages"});
    for (const auto &info : specProfiles()) {
        table.beginRow();
        table.cell(info.name);
        table.cell(info.intensive ? "intensive" : "light");
        table.cell(run.num(info.name, "ipc"));
        table.cell(run.num(info.name, "mpki"), 2);
        table.cell(run.num(info.name, "row_hit_rate"), 3);
        table.cell(run.num(info.name, "blp"), 2);
        table.cell(static_cast<std::uint64_t>(
            run.num(info.name, "footprint_pages")));
    }
    table.print(os);

    os << "\nMPKI = DRAM accesses per kilo-instruction; RB hit ="
          " interference-free (shadow) row-buffer hit rate;\n"
          "BLP = mean banks busy while the app has outstanding"
          " requests.\n";
}

const CampaignRegistrar reg({
    "tab2",
    "workload characteristics (alone runs)",
    "",
    plan,
    render,
});

} // namespace
