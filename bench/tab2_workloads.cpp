/**
 * @file
 * Table 2: benchmark characteristics — every application profile run
 * alone on the full machine; reports IPC, MPKI, intrinsic row-buffer
 * hit rate, bank-level parallelism, footprint and class. These are
 * the measured inputs the partitioning policies act on (the analogue
 * of the SPEC characterization table in the paper).
 */

#include <iostream>

#include "bench_common.hh"
#include "trace/spec_profiles.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    RunConfig rc = bench::makeRunConfig(argc, argv);
    bench::printHeader("tab2", "workload characteristics (alone runs)",
                       rc);

    ExperimentRunner runner(rc);
    TextTable table({"app", "class", "IPC", "MPKI", "RB hit",
                     "BLP", "pages"});
    for (const auto &info : specProfiles()) {
        ThreadMemProfile p = runner.aloneProfile(info.name);
        double ipc = runner.aloneIpc(info.name);
        table.beginRow();
        table.cell(info.name);
        table.cell(info.intensive ? "intensive" : "light");
        table.cell(ipc);
        table.cell(p.mpki, 2);
        table.cell(p.rowBufferHitRate, 3);
        table.cell(p.blp, 2);
        table.cell(p.footprintPages);
    }
    table.print(std::cout);

    std::cout << "\nMPKI = DRAM accesses per kilo-instruction; RB hit ="
                 " interference-free (shadow) row-buffer hit rate;\n"
                 "BLP = mean banks busy while the app has outstanding"
                 " requests.\n";
    return 0;
}
