file(REMOVE_RECURSE
  "CMakeFiles/fig10_sens_banks.dir/fig10_sens_banks.cpp.o"
  "CMakeFiles/fig10_sens_banks.dir/fig10_sens_banks.cpp.o.d"
  "fig10_sens_banks"
  "fig10_sens_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sens_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
