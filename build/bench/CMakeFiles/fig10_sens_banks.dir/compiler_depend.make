# Empty compiler generated dependencies file for fig10_sens_banks.
# This may be replaced when dependencies are built.
