file(REMOVE_RECURSE
  "CMakeFiles/fig11_sens_interval.dir/fig11_sens_interval.cpp.o"
  "CMakeFiles/fig11_sens_interval.dir/fig11_sens_interval.cpp.o.d"
  "fig11_sens_interval"
  "fig11_sens_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sens_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
