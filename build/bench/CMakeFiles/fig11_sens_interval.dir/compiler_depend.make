# Empty compiler generated dependencies file for fig11_sens_interval.
# This may be replaced when dependencies are built.
