file(REMOVE_RECURSE
  "CMakeFiles/fig12_sens_cores.dir/fig12_sens_cores.cpp.o"
  "CMakeFiles/fig12_sens_cores.dir/fig12_sens_cores.cpp.o.d"
  "fig12_sens_cores"
  "fig12_sens_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sens_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
