# Empty dependencies file for fig12_sens_cores.
# This may be replaced when dependencies are built.
