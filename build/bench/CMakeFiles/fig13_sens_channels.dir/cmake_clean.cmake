file(REMOVE_RECURSE
  "CMakeFiles/fig13_sens_channels.dir/fig13_sens_channels.cpp.o"
  "CMakeFiles/fig13_sens_channels.dir/fig13_sens_channels.cpp.o.d"
  "fig13_sens_channels"
  "fig13_sens_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sens_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
