# Empty dependencies file for fig13_sens_channels.
# This may be replaced when dependencies are built.
