file(REMOVE_RECURSE
  "CMakeFiles/fig15_orthogonality.dir/fig15_orthogonality.cpp.o"
  "CMakeFiles/fig15_orthogonality.dir/fig15_orthogonality.cpp.o.d"
  "fig15_orthogonality"
  "fig15_orthogonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_orthogonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
