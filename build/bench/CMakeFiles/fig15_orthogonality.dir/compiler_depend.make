# Empty compiler generated dependencies file for fig15_orthogonality.
# This may be replaced when dependencies are built.
