file(REMOVE_RECURSE
  "CMakeFiles/fig17_combined.dir/fig17_combined.cpp.o"
  "CMakeFiles/fig17_combined.dir/fig17_combined.cpp.o.d"
  "fig17_combined"
  "fig17_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
