# Empty dependencies file for fig17_combined.
# This may be replaced when dependencies are built.
