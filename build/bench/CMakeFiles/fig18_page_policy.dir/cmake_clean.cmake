file(REMOVE_RECURSE
  "CMakeFiles/fig18_page_policy.dir/fig18_page_policy.cpp.o"
  "CMakeFiles/fig18_page_policy.dir/fig18_page_policy.cpp.o.d"
  "fig18_page_policy"
  "fig18_page_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
