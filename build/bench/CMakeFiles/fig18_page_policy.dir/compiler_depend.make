# Empty compiler generated dependencies file for fig18_page_policy.
# This may be replaced when dependencies are built.
