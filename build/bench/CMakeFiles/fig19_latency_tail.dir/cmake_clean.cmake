file(REMOVE_RECURSE
  "CMakeFiles/fig19_latency_tail.dir/fig19_latency_tail.cpp.o"
  "CMakeFiles/fig19_latency_tail.dir/fig19_latency_tail.cpp.o.d"
  "fig19_latency_tail"
  "fig19_latency_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_latency_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
