# Empty dependencies file for fig19_latency_tail.
# This may be replaced when dependencies are built.
