file(REMOVE_RECURSE
  "CMakeFiles/fig1_motivation_interference.dir/fig1_motivation_interference.cpp.o"
  "CMakeFiles/fig1_motivation_interference.dir/fig1_motivation_interference.cpp.o.d"
  "fig1_motivation_interference"
  "fig1_motivation_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivation_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
