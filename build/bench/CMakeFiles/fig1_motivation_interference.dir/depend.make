# Empty dependencies file for fig1_motivation_interference.
# This may be replaced when dependencies are built.
