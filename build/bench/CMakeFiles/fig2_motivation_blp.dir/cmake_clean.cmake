file(REMOVE_RECURSE
  "CMakeFiles/fig2_motivation_blp.dir/fig2_motivation_blp.cpp.o"
  "CMakeFiles/fig2_motivation_blp.dir/fig2_motivation_blp.cpp.o.d"
  "fig2_motivation_blp"
  "fig2_motivation_blp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_motivation_blp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
