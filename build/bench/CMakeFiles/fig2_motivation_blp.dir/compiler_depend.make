# Empty compiler generated dependencies file for fig2_motivation_blp.
# This may be replaced when dependencies are built.
