file(REMOVE_RECURSE
  "CMakeFiles/fig3_demand_estimation.dir/fig3_demand_estimation.cpp.o"
  "CMakeFiles/fig3_demand_estimation.dir/fig3_demand_estimation.cpp.o.d"
  "fig3_demand_estimation"
  "fig3_demand_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_demand_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
