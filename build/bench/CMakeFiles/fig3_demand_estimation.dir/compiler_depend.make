# Empty compiler generated dependencies file for fig3_demand_estimation.
# This may be replaced when dependencies are built.
