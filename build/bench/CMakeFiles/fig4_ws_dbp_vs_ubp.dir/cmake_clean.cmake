file(REMOVE_RECURSE
  "CMakeFiles/fig4_ws_dbp_vs_ubp.dir/fig4_ws_dbp_vs_ubp.cpp.o"
  "CMakeFiles/fig4_ws_dbp_vs_ubp.dir/fig4_ws_dbp_vs_ubp.cpp.o.d"
  "fig4_ws_dbp_vs_ubp"
  "fig4_ws_dbp_vs_ubp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ws_dbp_vs_ubp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
