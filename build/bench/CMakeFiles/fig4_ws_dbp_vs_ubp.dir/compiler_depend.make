# Empty compiler generated dependencies file for fig4_ws_dbp_vs_ubp.
# This may be replaced when dependencies are built.
