# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_ws_dbp_vs_ubp.
