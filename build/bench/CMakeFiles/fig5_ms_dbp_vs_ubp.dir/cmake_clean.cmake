file(REMOVE_RECURSE
  "CMakeFiles/fig5_ms_dbp_vs_ubp.dir/fig5_ms_dbp_vs_ubp.cpp.o"
  "CMakeFiles/fig5_ms_dbp_vs_ubp.dir/fig5_ms_dbp_vs_ubp.cpp.o.d"
  "fig5_ms_dbp_vs_ubp"
  "fig5_ms_dbp_vs_ubp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ms_dbp_vs_ubp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
