# Empty dependencies file for fig5_ms_dbp_vs_ubp.
# This may be replaced when dependencies are built.
