file(REMOVE_RECURSE
  "CMakeFiles/fig6_dbp_tcm_vs_tcm.dir/fig6_dbp_tcm_vs_tcm.cpp.o"
  "CMakeFiles/fig6_dbp_tcm_vs_tcm.dir/fig6_dbp_tcm_vs_tcm.cpp.o.d"
  "fig6_dbp_tcm_vs_tcm"
  "fig6_dbp_tcm_vs_tcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dbp_tcm_vs_tcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
