# Empty compiler generated dependencies file for fig6_dbp_tcm_vs_tcm.
# This may be replaced when dependencies are built.
