# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_dbp_tcm_vs_tcm.
