file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_mcp.dir/fig7_vs_mcp.cpp.o"
  "CMakeFiles/fig7_vs_mcp.dir/fig7_vs_mcp.cpp.o.d"
  "fig7_vs_mcp"
  "fig7_vs_mcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_mcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
