# Empty dependencies file for fig7_vs_mcp.
# This may be replaced when dependencies are built.
