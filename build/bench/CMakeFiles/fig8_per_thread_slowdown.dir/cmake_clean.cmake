file(REMOVE_RECURSE
  "CMakeFiles/fig8_per_thread_slowdown.dir/fig8_per_thread_slowdown.cpp.o"
  "CMakeFiles/fig8_per_thread_slowdown.dir/fig8_per_thread_slowdown.cpp.o.d"
  "fig8_per_thread_slowdown"
  "fig8_per_thread_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_per_thread_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
