# Empty compiler generated dependencies file for fig8_per_thread_slowdown.
# This may be replaced when dependencies are built.
