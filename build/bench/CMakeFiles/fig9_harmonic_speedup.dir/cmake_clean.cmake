file(REMOVE_RECURSE
  "CMakeFiles/fig9_harmonic_speedup.dir/fig9_harmonic_speedup.cpp.o"
  "CMakeFiles/fig9_harmonic_speedup.dir/fig9_harmonic_speedup.cpp.o.d"
  "fig9_harmonic_speedup"
  "fig9_harmonic_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_harmonic_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
