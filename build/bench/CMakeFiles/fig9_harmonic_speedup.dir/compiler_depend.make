# Empty compiler generated dependencies file for fig9_harmonic_speedup.
# This may be replaced when dependencies are built.
