
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab1_config.cpp" "bench/CMakeFiles/tab1_config.dir/tab1_config.cpp.o" "gcc" "bench/CMakeFiles/tab1_config.dir/tab1_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dbp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/dbp_part.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dbp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dbp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
