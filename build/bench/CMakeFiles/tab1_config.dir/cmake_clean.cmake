file(REMOVE_RECURSE
  "CMakeFiles/tab1_config.dir/tab1_config.cpp.o"
  "CMakeFiles/tab1_config.dir/tab1_config.cpp.o.d"
  "tab1_config"
  "tab1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
