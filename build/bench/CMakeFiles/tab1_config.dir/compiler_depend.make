# Empty compiler generated dependencies file for tab1_config.
# This may be replaced when dependencies are built.
