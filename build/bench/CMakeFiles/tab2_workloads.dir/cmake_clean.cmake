file(REMOVE_RECURSE
  "CMakeFiles/tab2_workloads.dir/tab2_workloads.cpp.o"
  "CMakeFiles/tab2_workloads.dir/tab2_workloads.cpp.o.d"
  "tab2_workloads"
  "tab2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
