# Empty dependencies file for tab2_workloads.
# This may be replaced when dependencies are built.
