file(REMOVE_RECURSE
  "CMakeFiles/scheduler_compare.dir/scheduler_compare.cpp.o"
  "CMakeFiles/scheduler_compare.dir/scheduler_compare.cpp.o.d"
  "scheduler_compare"
  "scheduler_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
