# Empty dependencies file for scheduler_compare.
# This may be replaced when dependencies are built.
