file(REMOVE_RECURSE
  "CMakeFiles/workload_mix.dir/workload_mix.cpp.o"
  "CMakeFiles/workload_mix.dir/workload_mix.cpp.o.d"
  "workload_mix"
  "workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
