# Empty dependencies file for workload_mix.
# This may be replaced when dependencies are built.
