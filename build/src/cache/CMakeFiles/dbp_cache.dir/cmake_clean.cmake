file(REMOVE_RECURSE
  "CMakeFiles/dbp_cache.dir/cache.cc.o"
  "CMakeFiles/dbp_cache.dir/cache.cc.o.d"
  "libdbp_cache.a"
  "libdbp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
