file(REMOVE_RECURSE
  "libdbp_cache.a"
)
