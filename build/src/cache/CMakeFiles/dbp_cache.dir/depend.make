# Empty dependencies file for dbp_cache.
# This may be replaced when dependencies are built.
