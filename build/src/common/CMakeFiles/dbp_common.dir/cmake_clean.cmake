file(REMOVE_RECURSE
  "CMakeFiles/dbp_common.dir/config.cc.o"
  "CMakeFiles/dbp_common.dir/config.cc.o.d"
  "CMakeFiles/dbp_common.dir/log.cc.o"
  "CMakeFiles/dbp_common.dir/log.cc.o.d"
  "CMakeFiles/dbp_common.dir/random.cc.o"
  "CMakeFiles/dbp_common.dir/random.cc.o.d"
  "CMakeFiles/dbp_common.dir/stats.cc.o"
  "CMakeFiles/dbp_common.dir/stats.cc.o.d"
  "CMakeFiles/dbp_common.dir/table.cc.o"
  "CMakeFiles/dbp_common.dir/table.cc.o.d"
  "libdbp_common.a"
  "libdbp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
