file(REMOVE_RECURSE
  "libdbp_common.a"
)
