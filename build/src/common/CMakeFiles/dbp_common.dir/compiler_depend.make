# Empty compiler generated dependencies file for dbp_common.
# This may be replaced when dependencies are built.
