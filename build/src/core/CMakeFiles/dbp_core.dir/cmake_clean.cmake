file(REMOVE_RECURSE
  "CMakeFiles/dbp_core.dir/core.cc.o"
  "CMakeFiles/dbp_core.dir/core.cc.o.d"
  "libdbp_core.a"
  "libdbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
