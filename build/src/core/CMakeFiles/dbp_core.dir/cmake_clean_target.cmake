file(REMOVE_RECURSE
  "libdbp_core.a"
)
