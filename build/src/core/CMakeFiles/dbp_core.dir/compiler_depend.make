# Empty compiler generated dependencies file for dbp_core.
# This may be replaced when dependencies are built.
