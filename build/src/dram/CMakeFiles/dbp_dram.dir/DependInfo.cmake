
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/addr_map.cc" "src/dram/CMakeFiles/dbp_dram.dir/addr_map.cc.o" "gcc" "src/dram/CMakeFiles/dbp_dram.dir/addr_map.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/dram/CMakeFiles/dbp_dram.dir/channel.cc.o" "gcc" "src/dram/CMakeFiles/dbp_dram.dir/channel.cc.o.d"
  "/root/repo/src/dram/energy.cc" "src/dram/CMakeFiles/dbp_dram.dir/energy.cc.o" "gcc" "src/dram/CMakeFiles/dbp_dram.dir/energy.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/dbp_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/dbp_dram.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
