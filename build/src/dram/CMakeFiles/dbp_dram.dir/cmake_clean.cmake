file(REMOVE_RECURSE
  "CMakeFiles/dbp_dram.dir/addr_map.cc.o"
  "CMakeFiles/dbp_dram.dir/addr_map.cc.o.d"
  "CMakeFiles/dbp_dram.dir/channel.cc.o"
  "CMakeFiles/dbp_dram.dir/channel.cc.o.d"
  "CMakeFiles/dbp_dram.dir/energy.cc.o"
  "CMakeFiles/dbp_dram.dir/energy.cc.o.d"
  "CMakeFiles/dbp_dram.dir/timing.cc.o"
  "CMakeFiles/dbp_dram.dir/timing.cc.o.d"
  "libdbp_dram.a"
  "libdbp_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
