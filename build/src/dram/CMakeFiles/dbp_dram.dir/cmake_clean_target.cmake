file(REMOVE_RECURSE
  "libdbp_dram.a"
)
