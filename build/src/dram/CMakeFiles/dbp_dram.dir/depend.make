# Empty dependencies file for dbp_dram.
# This may be replaced when dependencies are built.
