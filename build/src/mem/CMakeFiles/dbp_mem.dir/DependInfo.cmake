
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/controller.cc" "src/mem/CMakeFiles/dbp_mem.dir/controller.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/controller.cc.o.d"
  "/root/repo/src/mem/profiler.cc" "src/mem/CMakeFiles/dbp_mem.dir/profiler.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/profiler.cc.o.d"
  "/root/repo/src/mem/sched_atlas.cc" "src/mem/CMakeFiles/dbp_mem.dir/sched_atlas.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/sched_atlas.cc.o.d"
  "/root/repo/src/mem/sched_bliss.cc" "src/mem/CMakeFiles/dbp_mem.dir/sched_bliss.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/sched_bliss.cc.o.d"
  "/root/repo/src/mem/sched_factory.cc" "src/mem/CMakeFiles/dbp_mem.dir/sched_factory.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/sched_factory.cc.o.d"
  "/root/repo/src/mem/sched_parbs.cc" "src/mem/CMakeFiles/dbp_mem.dir/sched_parbs.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/sched_parbs.cc.o.d"
  "/root/repo/src/mem/sched_tcm.cc" "src/mem/CMakeFiles/dbp_mem.dir/sched_tcm.cc.o" "gcc" "src/mem/CMakeFiles/dbp_mem.dir/sched_tcm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbp_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
