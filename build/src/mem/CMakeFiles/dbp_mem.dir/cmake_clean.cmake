file(REMOVE_RECURSE
  "CMakeFiles/dbp_mem.dir/controller.cc.o"
  "CMakeFiles/dbp_mem.dir/controller.cc.o.d"
  "CMakeFiles/dbp_mem.dir/profiler.cc.o"
  "CMakeFiles/dbp_mem.dir/profiler.cc.o.d"
  "CMakeFiles/dbp_mem.dir/sched_atlas.cc.o"
  "CMakeFiles/dbp_mem.dir/sched_atlas.cc.o.d"
  "CMakeFiles/dbp_mem.dir/sched_bliss.cc.o"
  "CMakeFiles/dbp_mem.dir/sched_bliss.cc.o.d"
  "CMakeFiles/dbp_mem.dir/sched_factory.cc.o"
  "CMakeFiles/dbp_mem.dir/sched_factory.cc.o.d"
  "CMakeFiles/dbp_mem.dir/sched_parbs.cc.o"
  "CMakeFiles/dbp_mem.dir/sched_parbs.cc.o.d"
  "CMakeFiles/dbp_mem.dir/sched_tcm.cc.o"
  "CMakeFiles/dbp_mem.dir/sched_tcm.cc.o.d"
  "libdbp_mem.a"
  "libdbp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
