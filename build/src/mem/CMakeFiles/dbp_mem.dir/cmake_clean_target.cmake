file(REMOVE_RECURSE
  "libdbp_mem.a"
)
