# Empty dependencies file for dbp_mem.
# This may be replaced when dependencies are built.
