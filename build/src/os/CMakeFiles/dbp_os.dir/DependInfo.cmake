
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/frame_alloc.cc" "src/os/CMakeFiles/dbp_os.dir/frame_alloc.cc.o" "gcc" "src/os/CMakeFiles/dbp_os.dir/frame_alloc.cc.o.d"
  "/root/repo/src/os/os_memory.cc" "src/os/CMakeFiles/dbp_os.dir/os_memory.cc.o" "gcc" "src/os/CMakeFiles/dbp_os.dir/os_memory.cc.o.d"
  "/root/repo/src/os/page_table.cc" "src/os/CMakeFiles/dbp_os.dir/page_table.cc.o" "gcc" "src/os/CMakeFiles/dbp_os.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbp_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
