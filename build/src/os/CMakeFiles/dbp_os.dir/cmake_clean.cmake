file(REMOVE_RECURSE
  "CMakeFiles/dbp_os.dir/frame_alloc.cc.o"
  "CMakeFiles/dbp_os.dir/frame_alloc.cc.o.d"
  "CMakeFiles/dbp_os.dir/os_memory.cc.o"
  "CMakeFiles/dbp_os.dir/os_memory.cc.o.d"
  "CMakeFiles/dbp_os.dir/page_table.cc.o"
  "CMakeFiles/dbp_os.dir/page_table.cc.o.d"
  "libdbp_os.a"
  "libdbp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
