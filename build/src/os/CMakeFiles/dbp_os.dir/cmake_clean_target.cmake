file(REMOVE_RECURSE
  "libdbp_os.a"
)
