# Empty dependencies file for dbp_os.
# This may be replaced when dependencies are built.
