
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/part/manager.cc" "src/part/CMakeFiles/dbp_part.dir/manager.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/manager.cc.o.d"
  "/root/repo/src/part/part_combined.cc" "src/part/CMakeFiles/dbp_part.dir/part_combined.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/part_combined.cc.o.d"
  "/root/repo/src/part/part_dbp.cc" "src/part/CMakeFiles/dbp_part.dir/part_dbp.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/part_dbp.cc.o.d"
  "/root/repo/src/part/part_factory.cc" "src/part/CMakeFiles/dbp_part.dir/part_factory.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/part_factory.cc.o.d"
  "/root/repo/src/part/part_mcp.cc" "src/part/CMakeFiles/dbp_part.dir/part_mcp.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/part_mcp.cc.o.d"
  "/root/repo/src/part/part_ubp.cc" "src/part/CMakeFiles/dbp_part.dir/part_ubp.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/part_ubp.cc.o.d"
  "/root/repo/src/part/policy.cc" "src/part/CMakeFiles/dbp_part.dir/policy.cc.o" "gcc" "src/part/CMakeFiles/dbp_part.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dbp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dbp_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
