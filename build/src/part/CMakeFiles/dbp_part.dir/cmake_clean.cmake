file(REMOVE_RECURSE
  "CMakeFiles/dbp_part.dir/manager.cc.o"
  "CMakeFiles/dbp_part.dir/manager.cc.o.d"
  "CMakeFiles/dbp_part.dir/part_combined.cc.o"
  "CMakeFiles/dbp_part.dir/part_combined.cc.o.d"
  "CMakeFiles/dbp_part.dir/part_dbp.cc.o"
  "CMakeFiles/dbp_part.dir/part_dbp.cc.o.d"
  "CMakeFiles/dbp_part.dir/part_factory.cc.o"
  "CMakeFiles/dbp_part.dir/part_factory.cc.o.d"
  "CMakeFiles/dbp_part.dir/part_mcp.cc.o"
  "CMakeFiles/dbp_part.dir/part_mcp.cc.o.d"
  "CMakeFiles/dbp_part.dir/part_ubp.cc.o"
  "CMakeFiles/dbp_part.dir/part_ubp.cc.o.d"
  "CMakeFiles/dbp_part.dir/policy.cc.o"
  "CMakeFiles/dbp_part.dir/policy.cc.o.d"
  "libdbp_part.a"
  "libdbp_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
