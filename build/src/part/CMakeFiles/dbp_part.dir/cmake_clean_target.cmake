file(REMOVE_RECURSE
  "libdbp_part.a"
)
