# Empty compiler generated dependencies file for dbp_part.
# This may be replaced when dependencies are built.
