file(REMOVE_RECURSE
  "CMakeFiles/dbp_sim.dir/experiment.cc.o"
  "CMakeFiles/dbp_sim.dir/experiment.cc.o.d"
  "CMakeFiles/dbp_sim.dir/metrics.cc.o"
  "CMakeFiles/dbp_sim.dir/metrics.cc.o.d"
  "CMakeFiles/dbp_sim.dir/params.cc.o"
  "CMakeFiles/dbp_sim.dir/params.cc.o.d"
  "CMakeFiles/dbp_sim.dir/schemes.cc.o"
  "CMakeFiles/dbp_sim.dir/schemes.cc.o.d"
  "CMakeFiles/dbp_sim.dir/system.cc.o"
  "CMakeFiles/dbp_sim.dir/system.cc.o.d"
  "libdbp_sim.a"
  "libdbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
