file(REMOVE_RECURSE
  "libdbp_sim.a"
)
