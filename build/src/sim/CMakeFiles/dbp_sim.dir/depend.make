# Empty dependencies file for dbp_sim.
# This may be replaced when dependencies are built.
