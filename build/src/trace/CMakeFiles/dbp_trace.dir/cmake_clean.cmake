file(REMOVE_RECURSE
  "CMakeFiles/dbp_trace.dir/mix.cc.o"
  "CMakeFiles/dbp_trace.dir/mix.cc.o.d"
  "CMakeFiles/dbp_trace.dir/spec_profiles.cc.o"
  "CMakeFiles/dbp_trace.dir/spec_profiles.cc.o.d"
  "CMakeFiles/dbp_trace.dir/synthetic.cc.o"
  "CMakeFiles/dbp_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/dbp_trace.dir/trace_file.cc.o"
  "CMakeFiles/dbp_trace.dir/trace_file.cc.o.d"
  "libdbp_trace.a"
  "libdbp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
