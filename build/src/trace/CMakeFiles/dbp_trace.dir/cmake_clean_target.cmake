file(REMOVE_RECURSE
  "libdbp_trace.a"
)
