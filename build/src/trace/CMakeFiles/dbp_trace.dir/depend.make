# Empty dependencies file for dbp_trace.
# This may be replaced when dependencies are built.
