
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addr_map.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_addr_map.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_addr_map.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_calibration.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_calibration.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_calibration.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_dram_sweep.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_dram_sweep.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_dram_sweep.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_os.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_os.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_os.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_schedulers.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_schedulers.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_schedulers.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_system_extra.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_system_extra.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_system_extra.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/dbpsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/dbpsim_tests.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dbp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/dbp_part.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dbp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dbp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
