# Empty compiler generated dependencies file for dbpsim_tests.
# This may be replaced when dependencies are built.
