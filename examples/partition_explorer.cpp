/**
 * @file
 * Watch Dynamic Bank Partitioning work: runs a mix under DBP and, at
 * every profiling interval, prints each thread's measured profile
 * (MPKI / shadow row-buffer hit rate / distinct-row parallelism) and
 * its current bank allocation, plus migration activity. Makes the
 * policy's decisions — light grouping, streamer donation, phase
 * adaptation — directly observable.
 *
 * Usage: partition_explorer [mix=W04] [intervals=12] [key=value ...]
 */

#include <iostream>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/mix.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    SystemParams params;
    params.profileIntervalCpu = 500'000;
    params.partition = "dbp";
    params.applyConfig(config);

    const WorkloadMix &mix = mixByName(config.getString("mix", "W04"));
    params.numCores = static_cast<unsigned>(mix.apps.size());
    unsigned intervals =
        static_cast<unsigned>(config.getUInt("intervals", 12));

    auto owned = buildMixSources(mix, config.getUInt("seed", 42));
    std::vector<TraceSource *> sources;
    for (auto &s : owned)
        sources.push_back(s.get());

    System system(params, sources);
    std::cout << "mix " << mix.name << " on " << params.summary()
              << "\nprofiling interval: " << params.profileIntervalCpu
              << " CPU cycles\n";

    std::uint64_t migrated_before = 0;
    std::uint64_t reparts_before = 0;
    for (unsigned i = 1; i <= intervals; ++i) {
        system.run(params.profileIntervalCpu);

        auto &mgr = system.partitionManager();
        std::uint64_t migrated =
            mgr.statPagesMigrated.value() - migrated_before;
        migrated_before = mgr.statPagesMigrated.value();
        bool repartitioned =
            mgr.statRepartitions.value() != reparts_before;
        reparts_before = mgr.statRepartitions.value();

        std::cout << "\n-- interval " << i << " (cycle "
                  << system.cpuCycle() << ")"
                  << (repartitioned ? "  ** REPARTITIONED **" : "")
                  << (migrated ? "  [" + std::to_string(migrated) +
                          " pages migrated]"
                               : "")
                  << '\n';

        const auto &profiles = system.lastIntervalProfiles();
        TextTable table({"app", "banks", "MPKI", "RB hit", "row par",
                         "footprint"});
        for (unsigned t = 0; t < params.numCores; ++t) {
            table.beginRow();
            table.cell(mix.apps[t]);
            table.cell(system.osMemory()
                           .colorSet(static_cast<ThreadId>(t))
                           .size());
            if (t < profiles.size()) {
                table.cell(profiles[t].mpki, 2);
                table.cell(profiles[t].rowBufferHitRate, 2);
                table.cell(profiles[t].rowParallelism, 2);
                table.cell(profiles[t].footprintPages);
            } else {
                table.cell("-");
                table.cell("-");
                table.cell("-");
                table.cell("-");
            }
        }
        table.print(std::cout);
    }

    std::cout << "\ntotal: "
              << system.partitionManager().statRepartitions.value()
              << " repartitions, "
              << system.partitionManager().statPagesMigrated.value()
              << " pages migrated\n";

    if (ProtocolChecker *pc = system.protocolChecker()) {
        pc->finalize(system.memCycle());
        pc->report(std::cout);
    }
    return 0;
}
