/**
 * @file
 * Watch Dynamic Bank Partitioning work: runs a mix under DBP and, at
 * every profiling interval, prints each thread's measured profile
 * (MPKI / shadow row-buffer hit rate / distinct-row parallelism) and
 * its current bank allocation, plus migration activity. Makes the
 * policy's decisions — light grouping, streamer donation, phase
 * adaptation — directly observable.
 *
 * Structured as a single-job campaign: the interval-by-interval trace
 * is captured as JSON (one entry per interval), rendered as the usual
 * tables, and optionally written with out=FILE for offline plotting.
 *
 * Usage: partition_explorer [mix=W04] [intervals=12] [out=FILE]
 *        [key=value ...]
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/campaign.hh"
#include "sim/system.hh"
#include "trace/mix.hh"

using namespace dbpsim;

namespace {

/** Step one System over @p intervals profiling intervals. */
Json
explore(const SystemParams &params, const WorkloadMix &mix,
        std::uint64_t seed, unsigned intervals)
{
    auto owned = buildMixSources(mix, seed);
    std::vector<TraceSource *> sources;
    for (auto &s : owned)
        sources.push_back(s.get());
    System system(params, sources);

    Json trace = Json::array();
    std::uint64_t migrated_before = 0;
    std::uint64_t reparts_before = 0;
    for (unsigned i = 1; i <= intervals; ++i) {
        system.run(params.profileIntervalCpu);

        auto &mgr = system.partitionManager();
        std::uint64_t migrated =
            mgr.statPagesMigrated.value() - migrated_before;
        migrated_before = mgr.statPagesMigrated.value();
        bool repartitioned =
            mgr.statRepartitions.value() != reparts_before;
        reparts_before = mgr.statRepartitions.value();

        Json entry = Json::object();
        entry.set("cycle", system.cpuCycle());
        entry.set("repartitioned", repartitioned);
        entry.set("pages_migrated", migrated);

        const auto &profiles = system.lastIntervalProfiles();
        Json threads = Json::array();
        for (unsigned t = 0; t < params.numCores; ++t) {
            Json th = Json::object();
            th.set("app", mix.apps[t]);
            th.set("banks",
                   static_cast<std::uint64_t>(
                       system.osMemory()
                           .colorSet(static_cast<ThreadId>(t))
                           .size()));
            if (t < profiles.size()) {
                th.set("mpki", profiles[t].mpki);
                th.set("rb_hit", profiles[t].rowBufferHitRate);
                th.set("row_par", profiles[t].rowParallelism);
                th.set("footprint", profiles[t].footprintPages);
            }
            threads.push(std::move(th));
        }
        entry.set("threads", std::move(threads));
        trace.push(std::move(entry));
    }

    Json doc = Json::object();
    doc.set("intervals", std::move(trace));
    doc.set("repartitions",
            system.partitionManager().statRepartitions.value());
    doc.set("pages_migrated",
            system.partitionManager().statPagesMigrated.value());
    if (ProtocolChecker *pc = system.protocolChecker()) {
        pc->finalize(system.memCycle());
        doc.set("check_violations", pc->violations());
    }
    return doc;
}

void
renderTrace(const Json &trace, const WorkloadMix &mix, std::ostream &os)
{
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Json &entry = trace.at(i);
        std::uint64_t migrated = entry.at("pages_migrated").asUInt();
        os << "\n-- interval " << (i + 1) << " (cycle "
           << entry.at("cycle").asUInt() << ")"
           << (entry.at("repartitioned").asBool()
                   ? "  ** REPARTITIONED **"
                   : "")
           << (migrated ? "  [" + std::to_string(migrated) +
                   " pages migrated]"
                        : "")
           << '\n';

        TextTable table({"app", "banks", "MPKI", "RB hit", "row par",
                         "footprint"});
        const Json &threads = entry.at("threads");
        for (std::size_t t = 0; t < mix.apps.size(); ++t) {
            const Json &th = threads.at(t);
            table.beginRow();
            table.cell(th.at("app").asString());
            table.cell(th.at("banks").asUInt());
            if (th.find("mpki")) {
                table.cell(th.at("mpki").asDouble(), 2);
                table.cell(th.at("rb_hit").asDouble(), 2);
                table.cell(th.at("row_par").asDouble(), 2);
                table.cell(th.at("footprint").asUInt());
            } else {
                table.cell("-");
                table.cell("-");
                table.cell("-");
                table.cell("-");
            }
        }
        table.print(os);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    rc.base.partition = "dbp";
    rc.base.applyConfig(config);
    rc.seedBase = config.getUInt("seed", 42);

    const WorkloadMix &mix = mixByName(config.getString("mix", "W04"));
    rc.base.numCores = static_cast<unsigned>(mix.apps.size());
    unsigned intervals =
        static_cast<unsigned>(config.getUInt("intervals", 12));

    std::cout << "mix " << mix.name << " on " << rc.base.summary()
              << "\nprofiling interval: " << rc.base.profileIntervalCpu
              << " CPU cycles\n";

    CampaignSpec spec;
    spec.name = "partition_explorer";
    spec.title = "DBP decisions on " + mix.name;
    spec.plan = [&mix, intervals](CampaignPlan &plan,
                                  CampaignContext &) {
        plan.add("trace", [mix, intervals](CampaignContext &ctx) {
            const RunConfig &cfg = ctx.config();
            return explore(cfg.base, mix,
                           jobSeed(cfg.seedBase, mix.name, "explore"),
                           intervals);
        });
    };
    spec.render = [&mix](CampaignRun &run, std::ostream &os) {
        const Json &doc = run.job("trace");
        renderTrace(doc.at("intervals"), mix, os);
        os << "\ntotal: " << doc.at("repartitions").asUInt()
           << " repartitions, " << doc.at("pages_migrated").asUInt()
           << " pages migrated\n";
        if (const Json *v = doc.find("check_violations"))
            os << "protocol violations: " << v->asUInt() << "\n";
    };

    CampaignOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    auto baselines = std::make_shared<AloneBaselineCache>();
    Json doc = runCampaign(spec, rc, baselines, opts, std::cout);

    const std::string out = config.getString("out", "");
    if (!out.empty()) {
        std::ofstream file(out);
        doc.write(file, 2);
        file << "\n";
        std::cout << "trace written to " << out << "\n";
    }
    return 0;
}
