/**
 * @file
 * Quickstart: build a 4-core system, run one workload mix under
 * FR-FCFS and under DBP, and print the paper's metrics side by side.
 *
 * Usage: quickstart [key=value ...]
 *   e.g. quickstart cores=8 banks=16 sched=tcm
 */

#include <iostream>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/mix.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    RunConfig rc;
    // Short demo runs: profile/repartition every 500k CPU cycles so
    // DBP adapts within the run (the paper's 10M-cycle interval suits
    // its billion-instruction runs); ATLAS's quantum scales likewise.
    rc.base.profileIntervalCpu = 500'000;
    rc.base.sched.atlasQuantum = 150'000;
    rc.base.applyConfig(config);
    rc.warmupCpu = config.getUInt("warmup", 1'500'000);
    rc.measureCpu = config.getUInt("measure", 3'000'000);

    unsigned cores = static_cast<unsigned>(config.getUInt("cores", 4));
    rc.base.numCores = cores;

    // A small mix: two memory hogs and two light applications.
    WorkloadMix mix = scaleMix(
        WorkloadMix{"quickstart", {"mcf", "libquantum", "gcc", "hmmer"}},
        cores);

    std::cout << "dbpsim quickstart\n"
              << "  machine : " << rc.base.summary() << "\n"
              << "  mix     : ";
    for (const auto &a : mix.apps)
        std::cout << a << ' ';
    std::cout << "\n\n";

    ExperimentRunner runner(rc);
    TextTable table({"scheme", "weighted speedup", "max slowdown",
                     "harmonic speedup"});
    for (const auto &scheme_name : {"FR-FCFS", "UBP", "DBP"}) {
        MixResult r = runner.runMix(mix, schemeByName(scheme_name));
        table.beginRow();
        table.cell(r.schemeName);
        table.cell(r.metrics.weightedSpeedup);
        table.cell(r.metrics.maxSlowdown);
        table.cell(r.metrics.harmonicSpeedup);
    }
    table.print(std::cout);

    std::cout << "\nHigher weighted/harmonic speedup is better; lower "
                 "max slowdown is fairer.\n";
    return 0;
}
