/**
 * @file
 * Sweep every memory scheduler (optionally crossed with every
 * partition policy) over one workload mix — a quick interactive view
 * of the scheduling landscape the paper's orthogonality argument
 * builds on. Built as an ad-hoc (unregistered) campaign, so the grid
 * points run in parallel and land in deterministic slots.
 *
 * Usage:
 *   scheduler_compare                  # W04, partition fixed to none
 *   scheduler_compare mix=W10 cross=1  # full scheduler x partition grid
 *   scheduler_compare jobs=8           # worker threads (default: hw)
 */

#include <iostream>
#include <memory>

#include "common/config.hh"
#include "common/table.hh"
#include "mem/sched_factory.hh"
#include "part/part_factory.hh"
#include "sim/campaign.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    rc.base.sched.atlasQuantum = 150'000; // scale ATLAS to short runs.
    rc.base.applyConfig(config);
    rc.warmupCpu = config.getUInt("warmup", 2'000'000);
    rc.measureCpu = config.getUInt("measure", 3'000'000);
    rc.seedBase = config.getUInt("seed", 42);

    const WorkloadMix &mix = mixByName(config.getString("mix", "W04"));
    rc.base.numCores = static_cast<unsigned>(mix.apps.size());
    bool cross = config.getBool("cross", false);

    std::cout << "mix " << mix.name << " on " << rc.base.summary()
              << "\n\n";

    const std::vector<std::string> parts =
        cross ? partitionPolicyNames()
              : std::vector<std::string>{"none"};

    CampaignSpec spec;
    spec.name = "scheduler_compare";
    spec.title = "scheduler x partition on " + mix.name;
    spec.plan = [&mix, &parts](CampaignPlan &plan, CampaignContext &) {
        for (const auto &sched : schedulerNames()) {
            for (const auto &part : parts) {
                Scheme scheme{sched + "+" + part, sched, part};
                plan.add(scheme.name,
                         [mix, scheme](CampaignContext &ctx) {
                             return mixResultToJson(
                                 ctx.runMix(mix, scheme));
                         });
            }
        }
    };
    spec.render = [&parts](CampaignRun &run, std::ostream &os) {
        TextTable table({"scheduler", "partition", "weighted speedup",
                         "max slowdown", "harmonic speedup"});
        for (const auto &sched : schedulerNames()) {
            for (const auto &part : parts) {
                const std::string key = sched + "+" + part;
                table.beginRow();
                table.cell(sched);
                table.cell(part);
                table.cell(run.num(key, "ws"));
                table.cell(run.num(key, "ms"));
                table.cell(run.num(key, "hs"));
            }
        }
        table.print(os);
    };

    CampaignOptions opts;
    opts.jobs = static_cast<unsigned>(config.getUInt("jobs", 0));
    opts.progress = config.getBool("progress", true);
    auto baselines = std::make_shared<AloneBaselineCache>();
    runCampaign(spec, rc, baselines, opts, std::cout);

    std::cout << "\nSchedulers reorder service; partitions remove "
                 "inter-thread bank conflicts. The best cell combines "
                 "both.\n";
    return 0;
}
