/**
 * @file
 * Sweep every memory scheduler (optionally crossed with every
 * partition policy) over one workload mix — a quick interactive view
 * of the scheduling landscape the paper's orthogonality argument
 * builds on.
 *
 * Usage:
 *   scheduler_compare                # W04, partition fixed to none
 *   scheduler_compare mix=W10 cross=1  # full scheduler x partition grid
 */

#include <iostream>

#include "common/config.hh"
#include "common/table.hh"
#include "mem/sched_factory.hh"
#include "part/part_factory.hh"
#include "sim/experiment.hh"

using namespace dbpsim;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    rc.base.sched.atlasQuantum = 150'000; // scale ATLAS to short runs.
    rc.base.applyConfig(config);
    rc.warmupCpu = config.getUInt("warmup", 2'000'000);
    rc.measureCpu = config.getUInt("measure", 3'000'000);

    const WorkloadMix &mix = mixByName(config.getString("mix", "W04"));
    rc.base.numCores = static_cast<unsigned>(mix.apps.size());
    bool cross = config.getBool("cross", false);

    std::cout << "mix " << mix.name << " on " << rc.base.summary()
              << "\n\n";

    ExperimentRunner runner(rc);
    std::vector<std::string> parts =
        cross ? partitionPolicyNames()
              : std::vector<std::string>{"none"};

    TextTable table({"scheduler", "partition", "weighted speedup",
                     "max slowdown", "harmonic speedup"});
    for (const auto &sched : schedulerNames()) {
        for (const auto &part : parts) {
            Scheme scheme{sched + "+" + part, sched, part};
            MixResult r = runner.runMix(mix, scheme);
            table.beginRow();
            table.cell(sched);
            table.cell(part);
            table.cell(r.metrics.weightedSpeedup);
            table.cell(r.metrics.maxSlowdown);
            table.cell(r.metrics.harmonicSpeedup);
        }
    }
    table.print(std::cout);

    std::cout << "\nSchedulers reorder service; partitions remove "
                 "inter-thread bank conflicts. The best cell combines "
                 "both.\n";
    return 0;
}
