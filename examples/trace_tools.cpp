/**
 * @file
 * Trace tooling: generate a trace file from any profile in the
 * library, inspect a trace file's statistics, or replay a trace file
 * through the simulator alongside synthetic co-runners.
 *
 * Usage:
 *   trace_tools gen app=mcf count=100000 out=mcf.trace
 *   trace_tools stat in=mcf.trace
 *   trace_tools replay in=mcf.trace corunners=lbm,gcc
 */

#include <iostream>
#include <set>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"

using namespace dbpsim;

namespace {

void
cmdGenerate(const Config &config)
{
    std::string app = config.getString("app", "mcf");
    std::string out = config.getString("out", app + ".trace");
    auto count =
        static_cast<std::size_t>(config.getUInt("count", 100'000));

    auto source = makeSpecSource(app, config.getUInt("seed", 1));
    writeTraceFile(out, captureRecords(*source, count));
    std::cout << "wrote " << count << " records of '" << app
              << "' to " << out << '\n';
}

void
cmdStat(const Config &config)
{
    std::string in = config.getString("in", "");
    if (in.empty())
        fatal("stat needs in=<trace file>");
    auto records = readTraceFile(in);

    std::uint64_t instrs = 0, writes = 0, seq = 0;
    std::set<std::uint64_t> pages;
    Addr prev = kInvalidAddr;
    for (const auto &r : records) {
        instrs += r.gap + 1;
        writes += r.write ? 1 : 0;
        pages.insert(r.vaddr / 4096);
        if (prev != kInvalidAddr && r.vaddr == prev + 64)
            ++seq;
        prev = r.vaddr;
    }
    double n = static_cast<double>(records.size());

    TextTable table({"metric", "value"});
    auto row = [&](const std::string &k, const std::string &v) {
        table.beginRow();
        table.cell(k);
        table.cell(v);
    };
    row("records", std::to_string(records.size()));
    row("instructions", std::to_string(instrs));
    row("MPKI",
        formatDouble(1000.0 * n / static_cast<double>(instrs), 2));
    row("write fraction",
        formatDouble(static_cast<double>(writes) / n, 3));
    row("sequential-step fraction",
        formatDouble(static_cast<double>(seq) / n, 3));
    row("footprint (4 KiB pages)", std::to_string(pages.size()));
    table.print(std::cout);
}

void
cmdReplay(const Config &config)
{
    std::string in = config.getString("in", "");
    if (in.empty())
        fatal("replay needs in=<trace file>");

    TraceFileSource file = TraceFileSource::fromFile(in);
    std::vector<std::unique_ptr<TraceSource>> others;
    std::vector<TraceSource *> sources{&file};
    std::istringstream cs(config.getString("corunners", ""));
    std::string app;
    while (std::getline(cs, app, ',')) {
        if (app.empty())
            continue;
        others.push_back(makeSpecSource(app, 7 + others.size()));
        sources.push_back(others.back().get());
    }

    SystemParams params;
    params.profileIntervalCpu = 500'000;
    params.applyConfig(config);
    params.numCores = static_cast<unsigned>(sources.size());

    System system(params, sources);
    auto ipc = system.runAndMeasure(config.getUInt("warmup", 1'000'000),
                                    config.getUInt("measure",
                                                   2'000'000));

    TextTable table({"core", "source", "IPC", "row hit rate"});
    for (unsigned t = 0; t < params.numCores; ++t) {
        table.beginRow();
        table.cell(t);
        table.cell(sources[t]->name());
        table.cell(ipc[t]);
        table.cell(system.threadRowHitRate(static_cast<ThreadId>(t)),
                   3);
    }
    table.print(std::cout);
    std::cout << "trace wrapped " << file.wraps() << " time(s)\n";

    if (ProtocolChecker *pc = system.protocolChecker()) {
        pc->finalize(system.memCycle());
        pc->report(std::cout);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace_tools gen|stat|replay [key=value...]"
                  << '\n';
        return 1;
    }
    std::string cmd = argv[1];
    Config config;
    config.parseArgs(argc, argv, 2);

    if (cmd == "gen")
        cmdGenerate(config);
    else if (cmd == "stat")
        cmdStat(config);
    else if (cmd == "replay")
        cmdReplay(config);
    else
        fatal("unknown command '", cmd, "' (expected gen|stat|replay)");
    return 0;
}
