/**
 * @file
 * Build a custom multiprogrammed workload from the application-profile
 * library (or use a standard mix) and compare schemes on it, with
 * per-thread slowdown detail.
 *
 * Usage:
 *   workload_mix                          # default custom mix
 *   workload_mix mix=W07                  # a standard mix
 *   workload_mix apps=mcf,lbm,gcc,namd    # your own 4-core mix
 *   workload_mix apps=... schemes=UBP,DBP,DBP-TCM
 */

#include <iostream>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "trace/spec_profiles.hh"

using namespace dbpsim;

namespace {

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    RunConfig rc;
    rc.base.profileIntervalCpu = 500'000;
    rc.base.sched.atlasQuantum = 150'000; // scale ATLAS to short runs.
    rc.base.applyConfig(config);
    rc.warmupCpu = config.getUInt("warmup", 2'000'000);
    rc.measureCpu = config.getUInt("measure", 3'000'000);

    WorkloadMix mix;
    if (config.has("mix")) {
        mix = mixByName(config.getString("mix", "W04"));
    } else if (config.has("apps")) {
        mix.name = "custom";
        mix.apps = splitCsv(config.getString("apps", ""));
        for (const auto &a : mix.apps)
            if (!hasSpecProfile(a))
                fatal("unknown app '", a, "'; see tab2_workloads for ",
                      "the profile library");
    } else {
        mix.name = "demo";
        mix.apps = {"mcf", "lbm", "libquantum", "omnetpp", "gcc",
                    "hmmer", "namd", "povray"};
    }
    rc.base.numCores = static_cast<unsigned>(mix.apps.size());

    std::vector<std::string> scheme_names =
        splitCsv(config.getString("schemes", "FR-FCFS,UBP,DBP,DBP-TCM"));

    std::cout << "mix " << mix.name << " ("
              << formatDouble(100 * mix.intensiveFraction(), 0)
              << " % intensive) on " << rc.base.summary() << "\n\n";

    ExperimentRunner runner(rc);

    // Summary metrics per scheme.
    TextTable summary({"scheme", "weighted speedup", "max slowdown",
                       "harmonic speedup", "pages migrated"});
    std::vector<MixResult> results;
    for (const auto &name : scheme_names) {
        MixResult r = runner.runMix(mix, schemeByName(name));
        summary.beginRow();
        summary.cell(r.schemeName);
        summary.cell(r.metrics.weightedSpeedup);
        summary.cell(r.metrics.maxSlowdown);
        summary.cell(r.metrics.harmonicSpeedup);
        summary.cell(r.pagesMigrated);
        results.push_back(std::move(r));
    }
    summary.print(std::cout);

    // Per-thread slowdowns.
    std::vector<std::string> headers{"app", "alone IPC"};
    for (const auto &r : results)
        headers.push_back(r.schemeName + " slowdown");
    TextTable detail(headers);
    for (std::size_t t = 0; t < mix.apps.size(); ++t) {
        detail.beginRow();
        detail.cell(mix.apps[t]);
        detail.cell(results[0].aloneIpc[t]);
        for (const auto &r : results)
            detail.cell(r.metrics.slowdowns[t]);
    }
    std::cout << '\n';
    detail.print(std::cout);
    return 0;
}
