#!/usr/bin/env bash
#
# Append one benchmark-trajectory data point to BENCH_campaign.json
# (JSON lines, one object per invocation): wall clock and summary
# metrics of a fixed micro fig4 campaign. Run it on each commit of
# interest and the file becomes the performance history of the
# campaign layer — wall_seconds tracks executor efficiency,
# job_seconds_total tracks simulator cost, and the gmean metrics catch
# accuracy drift. The config hash is recorded so points from different
# machine configurations are never compared by accident.
#
# Usage: scripts/bench_trajectory.sh [jobs]
#   jobs   Worker threads for the campaign (default: nproc).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

# Fixed micro workload: fig4's sweep on a shortened window. Changing
# these invalidates comparability with older lines, so don't.
warmup=500000
measure=1000000
seed=42

cmake --preset default >/dev/null
cmake --build build -j "$(nproc 2>/dev/null || echo 4)" \
    --target dbpsim_bench >/dev/null

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

./build/bench/dbpsim_bench fig4 --jobs="$jobs" --out="$out" --quiet \
    --no-cache warmup="$warmup" measure="$measure" seed="$seed" \
    >/dev/null

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$out/fig4.json" "$commit" "$date_utc" "$jobs" <<'EOF' \
    >>BENCH_campaign.json
import json
import sys

doc = json.load(open(sys.argv[1]))
line = {
    "commit": sys.argv[2],
    "date": sys.argv[3],
    "jobs": int(sys.argv[4]),
    "config_hash": doc["config"]["hash"],
    "jobs_count": doc["jobs_count"],
    "wall_seconds": round(doc["wall_seconds"], 3),
    "job_seconds_total": round(doc["job_seconds_total"], 3),
}
for key, value in doc["summary"].items():
    line[key] = round(value, 4) if isinstance(value, float) else value
print(json.dumps(line))
EOF

tail -n 1 BENCH_campaign.json
