#!/usr/bin/env bash
#
# Append one benchmark-trajectory data point to BENCH_campaign.json
# (JSON lines, one object per invocation): wall clock and summary
# metrics of a fixed micro fig4 campaign, plus micro fig20 refresh and
# fig21 subarray sweeps (fields prefixed fig20_ / fig21_). Run it on
# each commit of interest and the file becomes the performance history
# of the campaign layer — wall_seconds tracks executor efficiency,
# job_seconds_total tracks simulator cost, and the gmean metrics catch
# accuracy drift. fig20 and fig21 run with the protocol checker on, so
# the point also certifies the refresh engine and the SALP/MASA
# subsystem were violation-free at this commit. The config hash is
# recorded so points from different machine configurations are never
# compared by accident.
#
# Usage: scripts/bench_trajectory.sh [jobs]
#   jobs   Worker threads for the campaign (default: nproc).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"

# Fixed micro workload: fig4's sweep on a shortened window. Changing
# these invalidates comparability with older lines, so don't.
warmup=500000
measure=1000000
seed=42

# fig20 sweeps 4 refresh modes x 3 schemes and fig21 sweeps 6 salp
# variants x 2 schemes, so they get a shorter window to keep the whole
# trajectory point cheap. Same rule: fixed.
fig20_warmup=200000
fig20_measure=400000

cmake --preset default >/dev/null
cmake --build build -j "$(nproc 2>/dev/null || echo 4)" \
    --target dbpsim_bench >/dev/null

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

./build/bench/dbpsim_bench fig4 --jobs="$jobs" --out="$out" --quiet \
    --no-cache warmup="$warmup" measure="$measure" seed="$seed" \
    >/dev/null

./build/bench/dbpsim_bench fig20 --jobs="$jobs" --out="$out" --quiet \
    --no-cache warmup="$fig20_warmup" measure="$fig20_measure" \
    seed="$seed" >/dev/null

./build/bench/dbpsim_bench fig21 --jobs="$jobs" --out="$out" --quiet \
    --no-cache warmup="$fig20_warmup" measure="$fig20_measure" \
    seed="$seed" >/dev/null

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$out/fig4.json" "$out/fig20.json" "$out/fig21.json" \
    "$commit" "$date_utc" "$jobs" <<'EOF' >>BENCH_campaign.json
import json
import sys

doc = json.load(open(sys.argv[1]))
line = {
    "commit": sys.argv[4],
    "date": sys.argv[5],
    "jobs": int(sys.argv[6]),
    "config_hash": doc["config"]["hash"],
    "jobs_count": doc["jobs_count"],
    "wall_seconds": round(doc["wall_seconds"], 3),
    "job_seconds_total": round(doc["job_seconds_total"], 3),
}
for key, value in doc["summary"].items():
    line[key] = round(value, 4) if isinstance(value, float) else value

for prefix, path in (("fig20_", sys.argv[2]), ("fig21_", sys.argv[3])):
    sub = json.load(open(path))
    line[prefix + "wall_seconds"] = round(sub["wall_seconds"], 3)
    line[prefix + "job_seconds_total"] = round(
        sub["job_seconds_total"], 3)
    violations = sum(
        j.get("check_violations", 0) for j in sub["jobs"].values())
    line[prefix + "check_violations"] = violations
    for key, value in sub["summary"].items():
        if not key.startswith(("gmean_", "ws_gain_pct_")):
            continue
        flat = prefix + key.replace("/", "_").replace("-", "_")
        line[flat] = (round(value, 4)
                      if isinstance(value, float) else value)
print(json.dumps(line))
EOF

tail -n 1 BENCH_campaign.json
