#!/usr/bin/env bash
#
# Pre-merge gate: everything a change must survive before it lands.
#
#   1. Default build (-Werror -Wall -Wextra -Wconversion -Wshadow)
#      and the full test suite (which includes dbplint's fixture
#      tests and the LintTreeClean gate).
#   2. dbplint tree-wide: the project-specific determinism &
#      consistency linter (tools/lint/, see DESIGN.md "Static
#      analysis layer") must report zero findings.
#   3. ASan+UBSan build with the DRAM protocol checker compiled in
#      (DBPSIM_CHECK=ON) and the full test suite again.
#   4. TSan build + the campaign/executor/refresh/protocol-check test
#      subset — the parallel experiment executor must be data-race
#      free, and the refresh engine must stay checker-clean under it.
#   5. clang-tidy over the files changed relative to the merge base,
#      or over every file in compile_commands.json with --full
#      (skipped with a note when clang-tidy is not installed).
#   6. cppcheck over the same file set (skipped with a note when
#      cppcheck is not installed).
#
# Usage: scripts/check.sh [--full] [base-ref]
#   --full     Lint every translation unit in compile_commands.json
#              instead of only the changed set.
#   base-ref   Git ref to diff against for the changed-file steps
#              (default: main, falling back to HEAD~1; when no merge
#              base resolves at all, the files touched by HEAD are
#              linted so a detached or shallow checkout still gets a
#              real lint run instead of a silent skip).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

full=0
base_ref="main"
for arg in "$@"; do
    case "$arg" in
      --full) full=1 ;;
      -*) echo "check.sh: unknown option '$arg'" >&2; exit 2 ;;
      *) base_ref="$arg" ;;
    esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

# ---------------------------------------------------------------- 1 --
step "default build (-Werror) + tests"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

# ---------------------------------------------------------------- 2 --
step "dbplint tree-wide"
./build/tools/lint/dbplint --root=.

# ---------------------------------------------------------------- 3 --
step "ASan+UBSan build (protocol checker ON) + tests"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# ---------------------------------------------------------------- 4 --
step "TSan build + parallel-executor tests"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" --target dbpsim_tests
ctest --preset tsan -R 'Executor|Campaign|Refresh|ProtocolCheck'

# -------------------------------------------------- file selection --
# The clang-tidy and cppcheck steps share one file set: every
# translation unit (--full) or the C++ files changed against the
# merge base plus any local edits, falling back to the files HEAD
# itself touched when no merge base resolves (first commit, detached
# or shallow checkout) — previously that case skipped silently.
if [ "$full" -eq 1 ]; then
    changed="$(
        grep -oE '"file": *"[^"]+"' build/compile_commands.json |
            sed -E 's/.*"file": *"(.*)"/\1/' |
            grep -F "$repo_root" | grep -v '_deps' | sort -u || true
    )"
else
    if ! git rev-parse --verify --quiet "$base_ref" >/dev/null; then
        base_ref="HEAD~1"
    fi
    merge_base="$(git merge-base "$base_ref" HEAD 2>/dev/null || echo "")"
    changed="$(
        {
            if [ -n "$merge_base" ]; then
                git diff --name-only "$merge_base" HEAD
            else
                git diff-tree --no-commit-id --name-only -r HEAD
            fi
            git diff --name-only
            git diff --name-only --cached
        } | sort -u | grep -E '\.(cc|hh|cpp|hpp)$' || true
    )"
fi

existing=()
while IFS= read -r f; do
    [ -n "$f" ] && [ -f "$f" ] && existing+=("$f")
done <<<"$changed"

# ---------------------------------------------------------------- 5 --
if [ "$full" -eq 1 ]; then
    step "clang-tidy over all translation units"
else
    step "clang-tidy over changed files"
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping this step."
elif [ "${#existing[@]}" -eq 0 ]; then
    echo "no C++ files to lint; nothing to do."
else
    # The default preset exports compile_commands.json for tidy.
    clang-tidy -p build "${existing[@]}"
fi

# ---------------------------------------------------------------- 6 --
step "cppcheck over the same file set"
if ! command -v cppcheck >/dev/null 2>&1; then
    echo "cppcheck not installed; skipping this step."
elif [ "${#existing[@]}" -eq 0 ]; then
    echo "no C++ files to lint; nothing to do."
else
    cppcheck --std=c++20 --language=c++ --enable=warning,portability \
        --inline-suppr --error-exitcode=1 \
        --suppress=missingIncludeSystem -I src -I . \
        "${existing[@]}"
fi

echo
echo "all checks passed."
