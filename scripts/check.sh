#!/usr/bin/env bash
#
# Pre-merge gate: everything a change must survive before it lands.
#
#   1. Default build (-Werror -Wall -Wextra -Wconversion -Wshadow)
#      and the full test suite.
#   2. ASan+UBSan build with the DRAM protocol checker compiled in
#      (DBPSIM_CHECK=ON) and the full test suite again.
#   3. TSan build + the campaign/executor/refresh/protocol-check test
#      subset — the parallel experiment executor must be data-race
#      free, and the refresh engine must stay checker-clean under it.
#   4. clang-tidy over the files changed relative to the merge base
#      (skipped with a note when clang-tidy is not installed).
#
# Usage: scripts/check.sh [base-ref]
#   base-ref   Git ref to diff against for the clang-tidy step
#              (default: main, falling back to HEAD~1).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

base_ref="${1:-main}"
jobs="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

# ---------------------------------------------------------------- 1 --
step "default build (-Werror) + tests"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"
ctest --preset default -j "$jobs"

# ---------------------------------------------------------------- 2 --
step "ASan+UBSan build (protocol checker ON) + tests"
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# ---------------------------------------------------------------- 3 --
step "TSan build + parallel-executor tests"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" --target dbpsim_tests
ctest --preset tsan -R 'Executor|Campaign|Refresh|ProtocolCheck'

# ---------------------------------------------------------------- 4 --
step "clang-tidy over changed files"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping lint step."
    exit 0
fi

if ! git rev-parse --verify --quiet "$base_ref" >/dev/null; then
    base_ref="HEAD~1"
fi
merge_base="$(git merge-base "$base_ref" HEAD 2>/dev/null || echo "")"

changed="$(
    {
        [ -n "$merge_base" ] && git diff --name-only "$merge_base" HEAD
        git diff --name-only
        git diff --name-only --cached
    } | sort -u | grep -E '\.(cc|hh|cpp|hpp)$' || true
)"

if [ -z "$changed" ]; then
    echo "no changed C++ files; nothing to lint."
    exit 0
fi

# The default preset exports compile_commands.json for the tidy run.
existing=()
while IFS= read -r f; do
    [ -f "$f" ] && existing+=("$f")
done <<<"$changed"

if [ "${#existing[@]}" -eq 0 ]; then
    echo "changed files no longer exist; nothing to lint."
    exit 0
fi

clang-tidy -p build "${existing[@]}"

echo
echo "all checks passed."
