#include "cache/cache.hh"

#include "common/log.hh"

namespace dbpsim {

SetAssocCache::SetAssocCache(CacheParams params) : params_(params)
{
    if (!isPowerOfTwo(params_.lineBytes))
        fatal("cache line size must be a power of two");
    if (params_.associativity == 0)
        fatal("cache associativity must be >= 1");
    std::uint64_t line_count = params_.sizeBytes / params_.lineBytes;
    if (line_count == 0 || line_count % params_.associativity != 0)
        fatal("cache size / line size must be a multiple of assoc");
    sets_ = line_count / params_.associativity;
    if (!isPowerOfTwo(sets_))
        fatal("cache set count must be a power of two (got ", sets_, ")");
    lines_.resize(line_count);
}

void
SetAssocCache::split(Addr paddr, std::uint64_t &set, Addr &tag) const
{
    Addr line = paddr / params_.lineBytes;
    set = line % sets_;
    tag = line / sets_;
}

bool
SetAssocCache::contains(Addr paddr) const
{
    std::uint64_t set;
    Addr tag;
    split(paddr, set, tag);
    const Line *base = &lines_[set * params_.associativity];
    for (unsigned w = 0; w < params_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

CacheAccessResult
SetAssocCache::access(Addr paddr, bool write)
{
    std::uint64_t set;
    Addr tag;
    split(paddr, set, tag);
    Line *base = &lines_[set * params_.associativity];
    ++useCounter_;

    CacheAccessResult result;

    // Hit path.
    for (unsigned w = 0; w < params_.associativity; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useCounter_;
            l.dirty = l.dirty || write;
            result.hit = true;
            statHits.inc();
            return result;
        }
    }
    statMisses.inc();

    // Miss: pick an invalid way, else the LRU way.
    unsigned victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (unsigned w = 0; w < params_.associativity; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = w;
        }
    }

    Line &v = base[victim];
    if (v.valid) {
        statEvictions.inc();
        if (v.dirty) {
            statWritebacks.inc();
            result.writeback = true;
            result.writebackAddr =
                (v.tag * sets_ + set) * params_.lineBytes;
        }
    }
    v.valid = true;
    v.tag = tag;
    v.dirty = write;
    v.lastUse = useCounter_;
    return result;
}

void
SetAssocCache::flush()
{
    for (auto &l : lines_)
        l = Line{};
    useCounter_ = 0;
}

double
SetAssocCache::hitRate() const
{
    std::uint64_t total = statHits.value() + statMisses.value();
    return total == 0
        ? 0.0
        : static_cast<double>(statHits.value()) /
              static_cast<double>(total);
}

} // namespace dbpsim
