/**
 * @file
 * A set-associative, write-back, write-allocate cache with true-LRU
 * replacement. Used as an optional private L2 in front of the memory
 * system (the main experiments feed the controllers with post-cache
 * traces, matching the paper's methodology, but the substrate is a
 * full implementation for users who replay raw traces).
 */

#ifndef DBPSIM_CACHE_CACHE_HH
#define DBPSIM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dbpsim {

/**
 * Cache configuration.
 */
struct CacheParams
{
    std::uint64_t sizeBytes = 512 * 1024; ///< total capacity.
    unsigned associativity = 8;           ///< ways per set.
    std::uint64_t lineBytes = 64;         ///< line size.
    // dbplint:allow(cycle-literal) reason=L2 hit latency in CPU cycles (tab1 configuration), overridden by config key cache_hit_latency
    Cycle hitLatency = 12;                ///< CPU cycles on a hit.
};

/**
 * Result of one cache access.
 */
struct CacheAccessResult
{
    bool hit = false;            ///< line was present.
    bool writeback = false;      ///< a dirty victim was evicted.
    Addr writebackAddr = 0;      ///< victim line address (if writeback).
};

/**
 * The cache.
 */
class SetAssocCache
{
  public:
    /** @param params Validated (power-of-two sizes, assoc >= 1). */
    explicit SetAssocCache(CacheParams params);

    /**
     * Access @p paddr (line-aligned internally). Misses allocate; a
     * dirty victim surfaces through the result for the caller to send
     * to memory.
     */
    CacheAccessResult access(Addr paddr, bool write);

    /** Probe without side effects. */
    bool contains(Addr paddr) const;

    /** Invalidate everything (drops dirty data; tests only). */
    void flush();

    /** Number of sets. */
    std::uint64_t numSets() const { return sets_; }

    /** Configuration. */
    const CacheParams &params() const { return params_; }

    /** Hit fraction so far (0 when no accesses). */
    double hitRate() const;

    /** @name Counters. */
    /// @{
    StatScalar statHits;
    StatScalar statMisses;
    StatScalar statEvictions;
    StatScalar statWritebacks;
    /// @}

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    /** Set index and tag of an address. */
    void split(Addr paddr, std::uint64_t &set, Addr &tag) const;

    CacheParams params_;
    std::uint64_t sets_;
    std::vector<Line> lines_; ///< [set * assoc + way].
    std::uint64_t useCounter_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_CACHE_CACHE_HH
