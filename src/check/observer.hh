/**
 * @file
 * Observer interfaces of the verification layer.
 *
 * The DRAM channel and the OS memory model publish events through
 * these interfaces; the ProtocolChecker subscribes to both and
 * re-derives every protocol and partitioning invariant from the raw
 * event stream, independently of the component's own bookkeeping.
 * Keeping the interfaces here (header-only, depending only on
 * common/types) lets dram and os link without a cycle on dbp_check.
 */

#ifndef DBPSIM_CHECK_OBSERVER_HH
#define DBPSIM_CHECK_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dbpsim {

enum class DramCmd; // defined in dram/channel.hh

/**
 * One DRAM command as put on a channel's command bus.
 */
struct CmdEvent
{
    unsigned channel = 0;      ///< issuing channel id.
    DramCmd cmd{};             ///< command type.
    unsigned rank = 0;         ///< target rank.
    unsigned bank = 0;         ///< target bank (ignored for Refresh).
    std::uint64_t row = 0;     ///< row argument (ACT/column commands).
    Cycle cycle = 0;           ///< bus cycle of issue.
    ThreadId tid = kInvalidThread; ///< requesting thread, or
                                   ///< kInvalidThread for commands the
                                   ///< controller issues on its own
                                   ///< behalf (refresh, idle closes).
};

/**
 * Sees every command a DramChannel issues.
 */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;

    /** Called once per issued command, at issue time. */
    virtual void onCommand(const CmdEvent &ev) = 0;
};

/**
 * Sees the OS-side partitioning events: color-set adoption and
 * per-frame allocation decisions.
 */
class PartitionObserver
{
  public:
    virtual ~PartitionObserver() = default;

    /** Thread @p tid may now allocate only from @p colors (sorted). */
    virtual void onColorSet(ThreadId tid,
                            const std::vector<unsigned> &colors) = 0;

    /**
     * A frame of bank color @p color was just allocated (or a page
     * migrated into it) on behalf of thread @p tid.
     */
    virtual void onFrameAllocated(ThreadId tid, unsigned color) = 0;
};

} // namespace dbpsim

#endif // DBPSIM_CHECK_OBSERVER_HH
