#include "check/protocol_check.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "dram/channel.hh"

namespace dbpsim {

const char *
violationName(Violation v)
{
    switch (v) {
      case Violation::ActToOpenBank: return "act_to_open_bank";
      case Violation::ColToClosedBank: return "col_to_closed_bank";
      case Violation::ColWrongRow: return "col_wrong_row";
      case Violation::PreToClosedBank: return "pre_to_closed_bank";
      case Violation::RefreshOpenBank: return "refresh_open_bank";
      case Violation::TimingTRCD: return "trcd";
      case Violation::TimingTRP: return "trp";
      case Violation::TimingTRAS: return "tras";
      case Violation::TimingTRC: return "trc";
      case Violation::TimingTCCD: return "tccd";
      case Violation::TimingTRRD: return "trrd";
      case Violation::TimingTWTR: return "twtr";
      case Violation::TimingTWR: return "twr";
      case Violation::TimingTRTP: return "trtp";
      case Violation::TimingTFAW: return "tfaw";
      case Violation::TimingTRFC: return "trfc";
      case Violation::RefreshLate: return "refresh_late";
      case Violation::DataBusConflict: return "data_bus_conflict";
      case Violation::PartitionAccess: return "partition_access";
      case Violation::PartitionAlloc: return "partition_alloc";
      case Violation::TimingTRFCpb: return "trfc_pb";
      case Violation::RefreshPbOpenBank: return "refresh_pb_open_bank";
      case Violation::RefreshPbLate: return "refresh_pb_late";
      case Violation::RefreshPbForeign: return "refresh_pb_foreign";
      case Violation::TimingTSA: return "tsa";
      case Violation::SubarrayActIllegal: return "subarray_act_illegal";
      case Violation::SubarrayColIllegal: return "subarray_col_illegal";
      case Violation::PartitionSubarray: return "partition_subarray";
    }
    DBP_PANIC("unreachable Violation");
}

ProtocolChecker::ProtocolChecker(const DramGeometry &geom,
                                 const DramTiming &timing,
                                 unsigned num_threads,
                                 ProtocolCheckerParams params)
    : geom_(geom), timing_(timing), params_(params)
{
    std::string err = timing.validate();
    if (!err.empty())
        fatal("protocol checker: invalid timing: ", err);

    banks_.resize(geom.channels);
    ranks_.resize(geom.channels);
    channels_.resize(geom.channels);
    for (unsigned ch = 0; ch < geom.channels; ++ch) {
        banks_[ch].resize(geom.ranksPerChannel);
        ranks_[ch].resize(geom.ranksPerChannel);
        for (auto &rank_banks : banks_[ch]) {
            rank_banks.resize(geom.banksPerRank);
            if (params_.salp != SalpMode::None)
                for (auto &b : rank_banks)
                    b.subs.resize(geom.subarraysPerBank);
        }
    }
    allowedNow_.resize(num_threads);
    everAllowed_.resize(num_threads);
}

ProtocolChecker::ShadowBank &
ProtocolChecker::bankOf(const CmdEvent &ev)
{
    return banks_.at(ev.channel).at(ev.rank).at(ev.bank);
}

ProtocolChecker::ShadowRank &
ProtocolChecker::rankOf(const CmdEvent &ev)
{
    return ranks_.at(ev.channel).at(ev.rank);
}

void
ProtocolChecker::flag(Violation v, const CmdEvent &ev,
                      const std::string &what)
{
    counts_[static_cast<std::size_t>(v)].inc();
    std::ostringstream os;
    os << "protocol violation [" << violationName(v) << "] "
       << dramCmdName(ev.cmd) << " ch" << ev.channel << " rank"
       << ev.rank << " bank" << ev.bank << " row" << ev.row
       << " tid" << ev.tid << " at cycle " << ev.cycle << ": " << what;
    last_ = os.str();
    if (params_.failFast)
        DBP_PANIC(last_);
}

void
ProtocolChecker::flagPartition(Violation v, const std::string &what)
{
    counts_[static_cast<std::size_t>(v)].inc();
    last_ = "partition violation [" + std::string(violationName(v)) +
        "]: " + what;
    if (params_.failFast)
        DBP_PANIC(last_);
}

namespace {

std::string
tooEarly(const char *constraint, Cycle ready, Cycle now)
{
    std::ostringstream os;
    os << constraint << " not satisfied: earliest legal cycle " << ready
       << ", issued at " << now;
    return os.str();
}

} // namespace

void
ProtocolChecker::checkActivate(const CmdEvent &ev)
{
    ShadowBank &b = bankOf(ev);
    ShadowRank &r = rankOf(ev);
    const Cycle c = ev.cycle;

    if (params_.salp != SalpMode::None) {
        unsigned si = subarrayOf(ev.row);
        ShadowSubarray &s = b.subs.at(si);
        if (s.open)
            flag(Violation::SubarrayActIllegal, ev,
                 "subarray already has an open row");
        if (params_.salp != SalpMode::Masa) {
            // SALP-1/2: one open row per bank; another subarray's
            // in-flight precharge may overlap, an open row may not.
            for (unsigned k = 0; k < b.subs.size(); ++k) {
                if (k != si && b.subs[k].open) {
                    flag(Violation::SubarrayActIllegal, ev,
                         "another subarray holds an open row (mode " +
                             std::string(salpModeName(params_.salp)) +
                             ")");
                    break;
                }
            }
        }
        if (c < s.actReadyTRP)
            flag(Violation::TimingTRP, ev,
                 tooEarly("tRP after subarray precharge",
                          s.actReadyTRP, c));
        if (c < s.actReadyTRC)
            flag(Violation::TimingTRC, ev,
                 tooEarly("tRC after previous subarray ACT",
                          s.actReadyTRC, c));
    } else {
        if (b.open)
            flag(Violation::ActToOpenBank, ev,
                 "bank already has an open row");
        if (c < b.actReadyTRP)
            flag(Violation::TimingTRP, ev,
                 tooEarly("tRP after precharge", b.actReadyTRP, c));
        if (c < b.actReadyTRC)
            flag(Violation::TimingTRC, ev,
                 tooEarly("tRC after previous ACT", b.actReadyTRC, c));
    }
    if (c < r.actReadyTRRD)
        flag(Violation::TimingTRRD, ev,
             tooEarly("tRRD after rank ACT", r.actReadyTRRD, c));
    if (r.actFill >= 4) {
        Cycle oldest = r.actTimes[r.actPtr];
        if (c < oldest + timing_.tFAW)
            flag(Violation::TimingTFAW, ev,
                 tooEarly("tFAW four-activate window",
                          oldest + timing_.tFAW, c));
    }

    if (params_.salp != SalpMode::None) {
        unsigned si = subarrayOf(ev.row);
        ShadowSubarray &s = b.subs[si];
        s.open = true;
        s.row = ev.row;
        s.actReadyTRC = c + timing_.tRC;
        s.colReadyTRCD = c + timing_.tRCD;
        s.preReadyTRAS = c + timing_.tRAS;
        // The freshest ACT drives the global bitlines immediately.
        b.designated = si;
        b.designateReadyAt = c;
    } else {
        b.open = true;
        b.row = ev.row;
        b.actReadyTRC = c + timing_.tRC;
        b.colReadyTRCD = c + timing_.tRCD;
        b.preReadyTRAS = c + timing_.tRAS;
    }
    r.actReadyTRRD = c + timing_.tRRD;
    r.actTimes[r.actPtr] = c;
    r.actPtr = (r.actPtr + 1) % 4;
    if (r.actFill < 4)
        ++r.actFill;
}

void
ProtocolChecker::checkPrecharge(const CmdEvent &ev)
{
    ShadowBank &b = bankOf(ev);
    const Cycle c = ev.cycle;

    if (params_.salp != SalpMode::None) {
        ShadowSubarray &s = b.subs.at(subarrayOf(ev.row));
        if (!s.open)
            flag(Violation::PreToClosedBank, ev,
                 "precharge to a closed subarray");
        if (c < s.preReadyTRAS)
            flag(Violation::TimingTRAS, ev,
                 tooEarly("tRAS after subarray ACT",
                          s.preReadyTRAS, c));
        if (c < s.preReadyTWR)
            flag(Violation::TimingTWR, ev,
                 tooEarly("tWR after write data", s.preReadyTWR, c));
        if (c < s.preReadyTRTP)
            flag(Violation::TimingTRTP, ev,
                 tooEarly("tRTP after read", s.preReadyTRTP, c));

        s.open = false;
        // SALP-2/MASA: the PRE may issue inside the write recovery;
        // its internal completion (and the subarray's next ACT) waits.
        Cycle done = c;
        if (params_.salp != SalpMode::Salp1)
            done = std::max(done, s.wrRecoveryAt);
        s.actReadyTRP = done + timing_.tRP;
        return;
    }

    if (!b.open)
        flag(Violation::PreToClosedBank, ev,
             "precharge to a closed bank");
    if (c < b.preReadyTRAS)
        flag(Violation::TimingTRAS, ev,
             tooEarly("tRAS after ACT", b.preReadyTRAS, c));
    if (c < b.preReadyTWR)
        flag(Violation::TimingTWR, ev,
             tooEarly("tWR after write data", b.preReadyTWR, c));
    if (c < b.preReadyTRTP)
        flag(Violation::TimingTRTP, ev,
             tooEarly("tRTP after read", b.preReadyTRTP, c));

    b.open = false;
    b.actReadyTRP = c + timing_.tRP;
}

void
ProtocolChecker::checkDataBus(const CmdEvent &ev, bool is_write)
{
    ShadowChannel &ch = channels_.at(ev.channel);
    const Cycle start =
        ev.cycle + (is_write ? timing_.tCWL : timing_.tCL);
    Cycle required = ch.dataBusFreeAt;
    bool switch_penalty = ch.lastDataRank >= 0 &&
        (static_cast<unsigned>(ch.lastDataRank) != ev.rank ||
         ch.lastDataWrite != is_write);
    if (switch_penalty)
        required += timing_.tRTRS;
    if (start < required)
        flag(Violation::DataBusConflict, ev,
             tooEarly(switch_penalty
                          ? "data bus busy (incl. tRTRS switch)"
                          : "data bus busy",
                      required, start));

    ch.dataBusFreeAt = start + timing_.tBURST;
    ch.lastDataRank = static_cast<int>(ev.rank);
    ch.lastDataWrite = is_write;
}

void
ProtocolChecker::checkPartitionAccess(const CmdEvent &ev)
{
    if (ev.tid < 0 ||
        static_cast<std::size_t>(ev.tid) >= everAllowed_.size())
        return;
    const auto &ever = everAllowed_[static_cast<std::size_t>(ev.tid)];
    if (ever.empty())
        return; // no assignment recorded yet: unpartitioned.
    unsigned bank_color =
        (ev.channel * geom_.ranksPerChannel + ev.rank) *
            geom_.banksPerRank + ev.bank;
    unsigned color = bank_color;
    if (params_.subarrayColoring)
        color = bank_color * geom_.subarraysPerBank + subarrayOf(ev.row);
    if (color >= ever.size() || !ever[color]) {
        if (params_.subarrayColoring) {
            // Distinguish a foreign bank from a foreign subarray of a
            // partially-owned bank (the new, finer breach class).
            bool owns_bank = false;
            for (unsigned k = 0; k < geom_.subarraysPerBank; ++k) {
                unsigned kc = bank_color * geom_.subarraysPerBank + k;
                if (kc < ever.size() && ever[kc]) {
                    owns_bank = true;
                    break;
                }
            }
            if (owns_bank) {
                std::ostringstream os;
                os << "thread " << ev.tid << " accessed subarray color "
                   << color << " which was never in its partition";
                flag(Violation::PartitionSubarray, ev, os.str());
                return;
            }
        }
        std::ostringstream os;
        os << "thread " << ev.tid << " accessed bank color "
           << bank_color << " which was never in its partition";
        flag(Violation::PartitionAccess, ev, os.str());
        return;
    }
    const auto &now = allowedNow_[static_cast<std::size_t>(ev.tid)];
    if (!now[color])
        statStaleAccesses.inc(); // legitimate pre-repartition page.
}

void
ProtocolChecker::checkColumn(const CmdEvent &ev, bool is_write)
{
    ShadowBank &b = bankOf(ev);
    ShadowRank &r = rankOf(ev);
    ShadowChannel &ch = channels_.at(ev.channel);
    const Cycle c = ev.cycle;

    if (params_.salp != SalpMode::None) {
        unsigned si = subarrayOf(ev.row);
        ShadowSubarray &s = b.subs.at(si);
        if (!s.open)
            flag(Violation::ColToClosedBank, ev,
                 "column command to a closed subarray");
        else if (s.row != ev.row) {
            std::ostringstream os;
            os << "subarray's open row is " << s.row;
            flag(Violation::ColWrongRow, ev, os.str());
        }
        if (params_.salp == SalpMode::Masa) {
            if (b.designated != si)
                flag(Violation::SubarrayColIllegal, ev,
                     "column command to a non-designated subarray "
                     "(designated is " +
                         std::to_string(b.designated) + ")");
            else if (c < b.designateReadyAt)
                flag(Violation::TimingTSA, ev,
                     tooEarly("tSA after SA_SEL relink",
                              b.designateReadyAt, c));
        }
        if (c < s.colReadyTRCD)
            flag(Violation::TimingTRCD, ev,
                 tooEarly("tRCD after subarray ACT",
                          s.colReadyTRCD, c));
    } else {
        if (!b.open)
            flag(Violation::ColToClosedBank, ev,
                 "column command to a closed bank");
        else if (b.row != ev.row) {
            std::ostringstream os;
            os << "open row is " << b.row;
            flag(Violation::ColWrongRow, ev, os.str());
        }
        if (c < b.colReadyTRCD)
            flag(Violation::TimingTRCD, ev,
                 tooEarly("tRCD after ACT", b.colReadyTRCD, c));
    }
    if (c < ch.colReadyTCCD)
        flag(Violation::TimingTCCD, ev,
             tooEarly("tCCD after column command", ch.colReadyTCCD, c));
    if (!is_write && c < r.rdReadyTWTR)
        flag(Violation::TimingTWTR, ev,
             tooEarly("tWTR after write data", r.rdReadyTWTR, c));

    checkDataBus(ev, is_write);
    checkPartitionAccess(ev);

    ch.colReadyTCCD = c + timing_.tCCD;
    if (params_.salp != SalpMode::None) {
        ShadowSubarray &s = b.subs[subarrayOf(ev.row)];
        if (is_write) {
            Cycle data_end = c + timing_.tCWL + timing_.tBURST;
            if (params_.salp == SalpMode::Salp1)
                s.preReadyTWR = data_end + timing_.tWR;
            else
                s.wrRecoveryAt =
                    std::max(s.wrRecoveryAt, data_end + timing_.tWR);
            r.rdReadyTWTR = data_end + timing_.tWTR;
            if (ev.cmd == DramCmd::WriteAp) {
                s.open = false;
                s.actReadyTRP = data_end + timing_.tWR + timing_.tRP;
            }
        } else {
            s.preReadyTRTP = c + timing_.tRTP;
            if (ev.cmd == DramCmd::ReadAp) {
                s.open = false;
                s.actReadyTRP = c + timing_.tRTP + timing_.tRP;
            }
        }
        return;
    }
    if (is_write) {
        Cycle data_end = c + timing_.tCWL + timing_.tBURST;
        b.preReadyTWR = data_end + timing_.tWR;
        r.rdReadyTWTR = data_end + timing_.tWTR;
        if (ev.cmd == DramCmd::WriteAp) {
            b.open = false;
            b.actReadyTRP = data_end + timing_.tWR + timing_.tRP;
        }
    } else {
        b.preReadyTRTP = c + timing_.tRTP;
        if (ev.cmd == DramCmd::ReadAp) {
            b.open = false;
            b.actReadyTRP = c + timing_.tRTP + timing_.tRP;
        }
    }
}

void
ProtocolChecker::checkSaSel(const CmdEvent &ev)
{
    ShadowBank &b = bankOf(ev);
    const Cycle c = ev.cycle;

    if (params_.salp != SalpMode::Masa) {
        flag(Violation::SubarrayActIllegal, ev,
             "SA_SEL outside masa mode");
        return;
    }
    unsigned si = subarrayOf(ev.row);
    ShadowSubarray &s = b.subs.at(si);
    if (!s.open)
        flag(Violation::SubarrayColIllegal, ev,
             "SA_SEL to a closed subarray");
    else if (s.row != ev.row) {
        std::ostringstream os;
        os << "SA_SEL row mismatch: subarray's open row is " << s.row;
        flag(Violation::SubarrayColIllegal, ev, os.str());
    }
    if (c < b.designateReadyAt)
        flag(Violation::TimingTSA, ev,
             tooEarly("tSA after previous SA_SEL relink",
                      b.designateReadyAt, c));

    b.designated = si;
    b.designateReadyAt = c + timing_.tSA;
}

void
ProtocolChecker::checkRefresh(const CmdEvent &ev)
{
    ShadowRank &r = rankOf(ev);
    const Cycle c = ev.cycle;

    auto &rank_banks = banks_.at(ev.channel).at(ev.rank);
    for (unsigned bi = 0; bi < rank_banks.size(); ++bi) {
        ShadowBank &b = rank_banks[bi];
        CmdEvent bev = ev;
        bev.bank = bi;
        if (params_.salp != SalpMode::None) {
            for (const ShadowSubarray &s : b.subs) {
                if (s.open) {
                    flag(Violation::RefreshOpenBank, bev,
                         "refresh while a subarray has an open row");
                    break;
                }
            }
            for (const ShadowSubarray &s : b.subs) {
                if (c < s.actReadyTRP) {
                    flag(Violation::TimingTRP, bev,
                         tooEarly("tRP before refresh",
                                  s.actReadyTRP, c));
                    break;
                }
            }
            for (const ShadowSubarray &s : b.subs) {
                if (c < s.actReadyTRC) {
                    flag(Violation::TimingTRC, bev,
                         tooEarly("tRC before refresh",
                                  s.actReadyTRC, c));
                    break;
                }
            }
        } else {
            if (b.open)
                flag(Violation::RefreshOpenBank, bev,
                     "refresh while the bank has an open row");
            if (c < b.actReadyTRP)
                flag(Violation::TimingTRP, bev,
                     tooEarly("tRP before refresh", b.actReadyTRP, c));
            if (c < b.actReadyTRC)
                flag(Violation::TimingTRC, bev,
                     tooEarly("tRC before refresh", b.actReadyTRC, c));
        }
        if (c < b.pbRefreshEndAt)
            flag(Violation::TimingTRFCpb, bev,
                 tooEarly("tRFCpb before all-bank refresh",
                          b.pbRefreshEndAt, c));
        // An all-bank REF refreshes every bank; reset their cadence.
        b.lastPbRefreshAt = c;
    }

    Cycle bound = static_cast<Cycle>(params_.refreshPostponeMax + 1) *
        timing_.tREFI;
    if (c > r.lastRefreshAt + bound)
        flag(Violation::RefreshLate, ev,
             "inter-refresh gap " +
                 std::to_string(c - r.lastRefreshAt) +
                 " exceeds bound " + std::to_string(bound));

    r.refreshEndAt = c + timing_.tRFC;
    r.lastRefreshAt = c;
    r.refreshedOnce = true;
}

void
ProtocolChecker::checkRefreshBank(const CmdEvent &ev)
{
    ShadowBank &b = bankOf(ev);
    const Cycle c = ev.cycle;

    if (params_.salp != SalpMode::None) {
        for (const ShadowSubarray &s : b.subs) {
            if (s.open) {
                flag(Violation::RefreshPbOpenBank, ev,
                     "per-bank refresh while a subarray has an open "
                     "row");
                break;
            }
        }
        for (const ShadowSubarray &s : b.subs) {
            if (c < s.actReadyTRP) {
                flag(Violation::TimingTRP, ev,
                     tooEarly("tRP before per-bank refresh",
                              s.actReadyTRP, c));
                break;
            }
        }
        for (const ShadowSubarray &s : b.subs) {
            if (c < s.actReadyTRC) {
                flag(Violation::TimingTRC, ev,
                     tooEarly("tRC before per-bank refresh",
                              s.actReadyTRC, c));
                break;
            }
        }
    } else {
        if (b.open)
            flag(Violation::RefreshPbOpenBank, ev,
                 "per-bank refresh while the bank has an open row");
        if (c < b.actReadyTRP)
            flag(Violation::TimingTRP, ev,
                 tooEarly("tRP before per-bank refresh",
                          b.actReadyTRP, c));
        if (c < b.actReadyTRC)
            flag(Violation::TimingTRC, ev,
                 tooEarly("tRC before per-bank refresh",
                          b.actReadyTRC, c));
    }

    // Each bank must see a refresh (REFpb or all-bank) once per tREFI,
    // within the same postpone window as the all-bank cadence.
    Cycle bound = static_cast<Cycle>(params_.refreshPostponeMax + 1) *
        timing_.tREFI;
    if (c > b.lastPbRefreshAt + bound)
        flag(Violation::RefreshPbLate, ev,
             "per-bank inter-refresh gap " +
                 std::to_string(c - b.lastPbRefreshAt) +
                 " exceeds bound " + std::to_string(bound));

    // A REFpb issued on behalf of a thread must target a bank whose
    // color was at some point in that thread's partition — per-bank
    // refresh must never disturb a foreign partition's timing state.
    // (Engine-issued refreshes carry kInvalidThread and are exempt.)
    if (ev.tid >= 0 &&
        static_cast<std::size_t>(ev.tid) < everAllowed_.size()) {
        const auto &ever =
            everAllowed_[static_cast<std::size_t>(ev.tid)];
        if (!ever.empty()) {
            unsigned bank_color =
                (ev.channel * geom_.ranksPerChannel + ev.rank) *
                    geom_.banksPerRank + ev.bank;
            bool owns = false;
            if (params_.subarrayColoring) {
                // REFpb touches the whole bank; owning any subarray of
                // it is enough (the refresh disturbs only banks the
                // thread already shares).
                for (unsigned k = 0; k < geom_.subarraysPerBank; ++k) {
                    unsigned kc =
                        bank_color * geom_.subarraysPerBank + k;
                    if (kc < ever.size() && ever[kc]) {
                        owns = true;
                        break;
                    }
                }
            } else {
                owns = bank_color < ever.size() && ever[bank_color];
            }
            if (!owns) {
                std::ostringstream os;
                os << "per-bank refresh for thread " << ev.tid
                   << " touches bank color " << bank_color
                   << " outside its partition";
                flag(Violation::RefreshPbForeign, ev, os.str());
            }
        }
    }

    b.pbRefreshEndAt = c + timing_.tRFCpb;
    b.lastPbRefreshAt = c;
}

void
ProtocolChecker::onCommand(const CmdEvent &ev)
{
    statCommands.inc();
    DBP_ASSERT(ev.channel < banks_.size(),
               "checker: channel " << ev.channel << " out of range");
    DBP_ASSERT(ev.rank < geom_.ranksPerChannel,
               "checker: rank " << ev.rank << " out of range");
    if (ev.cmd != DramCmd::Refresh)
        DBP_ASSERT(ev.bank < geom_.banksPerRank,
                   "checker: bank " << ev.bank << " out of range");

    // Nothing may target a rank whose refresh is still in flight.
    ShadowRank &r = rankOf(ev);
    if (ev.cycle < r.refreshEndAt)
        flag(Violation::TimingTRFC, ev,
             tooEarly("tRFC after refresh", r.refreshEndAt, ev.cycle));

    // Nor a bank whose per-bank refresh is still in flight (an
    // all-bank REF checks this per bank in checkRefresh).
    if (ev.cmd != DramCmd::Refresh) {
        ShadowBank &b = bankOf(ev);
        if (ev.cycle < b.pbRefreshEndAt)
            flag(Violation::TimingTRFCpb, ev,
                 tooEarly("tRFCpb after per-bank refresh",
                          b.pbRefreshEndAt, ev.cycle));
    }

    switch (ev.cmd) {
      case DramCmd::Activate:
        checkActivate(ev);
        break;
      case DramCmd::Precharge:
        checkPrecharge(ev);
        break;
      case DramCmd::Read:
      case DramCmd::ReadAp:
        checkColumn(ev, false);
        break;
      case DramCmd::Write:
      case DramCmd::WriteAp:
        checkColumn(ev, true);
        break;
      case DramCmd::Refresh:
        checkRefresh(ev);
        break;
      case DramCmd::RefreshBank:
        checkRefreshBank(ev);
        break;
      case DramCmd::SaSel:
        checkSaSel(ev);
        break;
    }
}

void
ProtocolChecker::onColorSet(ThreadId tid,
                            const std::vector<unsigned> &colors)
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= allowedNow_.size())
        return;
    auto t = static_cast<std::size_t>(tid);
    std::size_t total = partitionColors();
    allowedNow_[t].assign(total, 0);
    if (everAllowed_[t].empty())
        everAllowed_[t].assign(total, 0);
    for (unsigned c : colors) {
        if (c >= total) {
            flagPartition(Violation::PartitionAlloc,
                          "color " + std::to_string(c) +
                              " out of range in assignment for thread " +
                              std::to_string(tid));
            continue;
        }
        allowedNow_[t][c] = 1;
        everAllowed_[t][c] = 1;
    }
}

void
ProtocolChecker::onFrameAllocated(ThreadId tid, unsigned color)
{
    statAllocations.inc();
    if (tid < 0 || static_cast<std::size_t>(tid) >= allowedNow_.size())
        return;
    const auto &now = allowedNow_[static_cast<std::size_t>(tid)];
    if (now.empty())
        return; // unpartitioned.
    if (color >= now.size() || !now[color]) {
        std::ostringstream os;
        os << "frame of color " << color << " allocated for thread "
           << tid << " outside its color set";
        flagPartition(Violation::PartitionAlloc, os.str());
    }
}

void
ProtocolChecker::finalize(Cycle now)
{
    if (!params_.expectRefresh)
        return; // refresh disabled by configuration: nothing is owed.
    Cycle bound = static_cast<Cycle>(params_.refreshPostponeMax + 1) *
        timing_.tREFI;
    for (unsigned ch = 0; ch < ranks_.size(); ++ch) {
        for (unsigned rk = 0; rk < ranks_[ch].size(); ++rk) {
            const ShadowRank &r = ranks_[ch][rk];
            if (now <= r.lastRefreshAt + bound)
                continue; // covered by all-bank REFs.
            // A rank is equally covered when every one of its banks
            // kept its own per-bank cadence (REFpb mode).
            bool pb_covered = true;
            for (const ShadowBank &b : banks_[ch][rk]) {
                if (now > b.lastPbRefreshAt + bound) {
                    pb_covered = false;
                    break;
                }
            }
            if (pb_covered)
                continue;
            CmdEvent ev;
            ev.channel = ch;
            ev.cmd = DramCmd::Refresh;
            ev.rank = rk;
            ev.cycle = now;
            flag(Violation::RefreshLate, ev,
                 "rank not refreshed within " +
                     std::to_string(bound) +
                     " cycles of end of run");
        }
    }
}

std::uint64_t
ProtocolChecker::violations() const
{
    std::uint64_t total = 0;
    for (const auto &c : counts_)
        total += c.value();
    return total;
}

void
ProtocolChecker::addStats(StatGroup &g) const
{
    g.addScalar("commands", &statCommands);
    g.addScalar("allocations", &statAllocations);
    g.addScalar("stale_accesses", &statStaleAccesses);
    for (std::size_t i = 0; i < kNumViolations; ++i)
        g.addScalar(std::string("violation_") +
                        violationName(static_cast<Violation>(i)),
                    &counts_[i]);
}

void
ProtocolChecker::report(std::ostream &os) const
{
    os << "protocol checker: " << commandsChecked()
       << " commands checked, " << violations() << " violations\n";
    for (std::size_t i = 0; i < kNumViolations; ++i) {
        if (counts_[i].value() == 0)
            continue;
        os << "  " << violationName(static_cast<Violation>(i)) << ": "
           << counts_[i].value() << '\n';
    }
    if (!last_.empty())
        os << "  last: " << last_ << '\n';
}

} // namespace dbpsim
