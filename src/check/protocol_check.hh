/**
 * @file
 * DRAM protocol checker.
 *
 * An always-compiled, config-gated validator that watches every
 * command the controllers put on the channels' command buses and
 * re-derives the DDR timing rules and structural invariants from
 * scratch — its shadow state is built only from observed CmdEvents, so
 * a bookkeeping bug inside DramChannel (a forgotten tWTR update, a
 * mis-folded tRP) is caught here even though the channel's own
 * canIssue() believed the command legal.
 *
 * Checked timing constraints (per the DramTiming in force):
 *   tRCD, tRP, tRAS, tRC, tCCD, tRRD, tWTR, tWR, tRTP, tFAW (four
 *   activates per rolling window), tRFC (nothing to a refreshing
 *   rank), tRFCpb (nothing to a bank inside its per-bank refresh
 *   window), refresh cadence (inter-REF gap bounded by the JEDEC
 *   pull-in/postpone window, per rank for REF and per bank for
 *   REFpb), and data-bus occupancy incl. tRTRS.
 *
 * Structural invariants:
 *   no ACT to an open bank, no column command to a closed bank or to
 *   the wrong open row, no PRE to a closed bank, no REF over open
 *   banks, no REFpb to an open bank, no REFpb charged to a thread
 *   whose partition never contained the bank.
 *
 * Partitioning invariants (fed by OsMemory through PartitionObserver):
 *   allocation containment — a frame allocated for a thread must have
 *   a color inside the thread's current color set; access containment
 *   — a thread's column command must target a bank whose color was at
 *   some point assigned to that thread (pages legitimately survive a
 *   repartition under lazy/none migration, so only a never-assigned
 *   color is a violation; accesses to formerly-assigned colors are
 *   tracked separately as stale accesses).
 *
 * In fail-fast mode the first violation panics with a full
 * description; otherwise violations are counted per class and the
 * caller asserts on the counters (tests) or dumps them (stats).
 */

#ifndef DBPSIM_CHECK_PROTOCOL_CHECK_HH
#define DBPSIM_CHECK_PROTOCOL_CHECK_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/observer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/addr_map.hh"
#include "dram/subarray.hh"
#include "dram/timing.hh"

namespace dbpsim {

/**
 * Violation classes the checker distinguishes.
 */
enum class Violation
{
    ActToOpenBank,    ///< ACT while the bank already has an open row.
    ColToClosedBank,  ///< RD/WR to a bank with no open row.
    ColWrongRow,      ///< RD/WR to a row other than the open one.
    PreToClosedBank,  ///< PRE to an already-closed bank.
    RefreshOpenBank,  ///< REF while a bank of the rank is open.
    TimingTRCD,       ///< column command < tRCD after ACT.
    TimingTRP,        ///< ACT/REF < tRP after the precharge point.
    TimingTRAS,       ///< PRE < tRAS after ACT.
    TimingTRC,        ///< ACT < tRC after previous ACT, same bank.
    TimingTCCD,       ///< column command < tCCD after previous one.
    TimingTRRD,       ///< ACT < tRRD after previous ACT, same rank.
    TimingTWTR,       ///< RD < tWTR after write data end, same rank.
    TimingTWR,        ///< PRE < tWR after write data end, same bank.
    TimingTRTP,       ///< PRE < tRTP after RD, same bank.
    TimingTFAW,       ///< fifth ACT inside a rank's tFAW window.
    TimingTRFC,       ///< any command to a rank still refreshing.
    RefreshLate,      ///< inter-refresh gap beyond the postpone bound.
    DataBusConflict,  ///< data bursts overlap / tRTRS violated.
    PartitionAccess,  ///< access to a color never assigned to the thread.
    PartitionAlloc,   ///< frame allocated outside the thread's color set.
    TimingTRFCpb,     ///< command to a bank inside its REFpb window.
    RefreshPbOpenBank,///< REFpb while the target bank has an open row.
    RefreshPbLate,    ///< a bank's REFpb cadence beyond the postpone bound.
    RefreshPbForeign, ///< REFpb charged to a thread that never owned the bank.
    TimingTSA,        ///< column/SA_SEL before the designated relink done.
    SubarrayActIllegal,///< ACT breaking the mode's subarray invariant.
    SubarrayColIllegal,///< column/SA_SEL to a wrong/undesignated subarray.
    PartitionSubarray,///< access outside the thread's subarray colors.
};

/** Number of violation classes. */
constexpr std::size_t kNumViolations =
    static_cast<std::size_t>(Violation::PartitionSubarray) + 1;

/** Short stable name of a violation class (stat keys, messages). */
const char *violationName(Violation v);

/**
 * Checker configuration.
 */
struct ProtocolCheckerParams
{
    /** Panic on the first violation (tests, debugging). */
    bool failFast = false;

    /**
     * Refreshes a controller may postpone before the cadence check
     * fires (JEDEC DDR3 allows 8). The checked bound on the gap
     * between consecutive REFs to one rank is
     * (refreshPostponeMax + 1) * tREFI.
     */
    unsigned refreshPostponeMax = 8;

    /**
     * Whether the run is expected to refresh at all. When false
     * (refresh mode "none"), the cadence checks that observe the
     * *absence* of refreshes — finalize()'s end-of-run bound — are
     * skipped; the per-command checks still apply to any REF/REFpb
     * that does appear.
     */
    bool expectRefresh = true;

    /**
     * Subarray-level parallelism mode the run uses. With None the
     * checker applies the monolithic per-bank rules (seed behaviour);
     * otherwise structural and timing rules are re-derived per
     * subarray, including the MASA designated-latch (tSA) rules.
     */
    SalpMode salp = SalpMode::None;

    /**
     * Whether partition colors carry the subarray index (the address
     * map's color_subarrays flag). Containment is then checked at
     * {channel, rank, bank, subarray} granularity.
     */
    bool subarrayColoring = false;
};

/**
 * The checker. One instance observes all channels of a machine.
 */
class ProtocolChecker : public CommandObserver, public PartitionObserver
{
  public:
    /**
     * @param geom Machine geometry (channel/rank/bank counts).
     * @param timing Timing rule set the commands must respect.
     * @param num_threads Hardware threads (partition tracking).
     * @param params Checker tuning.
     */
    ProtocolChecker(const DramGeometry &geom, const DramTiming &timing,
                    unsigned num_threads,
                    ProtocolCheckerParams params = {});

    /** CommandObserver: validate one command, update shadow state. */
    void onCommand(const CmdEvent &ev) override;

    /** PartitionObserver: a thread's color set changed. */
    void onColorSet(ThreadId tid,
                    const std::vector<unsigned> &colors) override;

    /** PartitionObserver: a frame was allocated / migrated into. */
    void onFrameAllocated(ThreadId tid, unsigned color) override;

    /**
     * End-of-run checks that observe the absence of events: verifies
     * every rank has refreshed recently enough relative to @p now.
     * Call once after the simulation finished (optional).
     */
    void finalize(Cycle now);

    /** Total violations of every class. */
    std::uint64_t violations() const;

    /** Violations of one class. */
    std::uint64_t violations(Violation v) const
    {
        return counts_[static_cast<std::size_t>(v)].value();
    }

    /** Commands observed. */
    std::uint64_t commandsChecked() const
    {
        return statCommands.value();
    }

    /** Description of the most recent violation ("" if none). */
    const std::string &lastViolation() const { return last_; }

    /** Register all counters on @p g (prefix "check"). */
    void addStats(StatGroup &g) const;

    /** Human-readable violation summary. */
    void report(std::ostream &os) const;

    /** Parameters in use. */
    const ProtocolCheckerParams &params() const { return params_; }

    /** @name Counters. */
    /// @{
    StatScalar statCommands;      ///< commands observed.
    StatScalar statStaleAccesses; ///< accesses to formerly-owned colors.
    StatScalar statAllocations;   ///< frame allocations observed.
    /// @}

  private:
    /** Shadow per-subarray state (SALP modes only). */
    struct ShadowSubarray
    {
        bool open = false;
        std::uint64_t row = 0;
        Cycle actReadyTRP = 0;  ///< precharge completion + tRP.
        Cycle actReadyTRC = 0;  ///< last ACT + tRC.
        Cycle colReadyTRCD = 0; ///< last ACT + tRCD.
        Cycle preReadyTRAS = 0; ///< last ACT + tRAS.
        Cycle preReadyTWR = 0;  ///< write data end + tWR (SALP-1 only).
        Cycle preReadyTRTP = 0; ///< last RD + tRTP.
        Cycle wrRecoveryAt = 0; ///< deferred completion (SALP-2/MASA).
    };

    /** Shadow per-bank state, rebuilt purely from observed commands. */
    struct ShadowBank
    {
        bool open = false;
        std::uint64_t row = 0;
        Cycle actReadyTRP = 0;  ///< precharge point + tRP.
        Cycle actReadyTRC = 0;  ///< last ACT + tRC.
        Cycle colReadyTRCD = 0; ///< last ACT + tRCD.
        Cycle preReadyTRAS = 0; ///< last ACT + tRAS.
        Cycle preReadyTWR = 0;  ///< last write data end + tWR.
        Cycle preReadyTRTP = 0; ///< last RD + tRTP.
        Cycle pbRefreshEndAt = 0;  ///< in-flight REFpb completes here.
        Cycle lastPbRefreshAt = 0; ///< cycle of the last REFpb.
        /** Subarray shadows; sized only when params.salp != None. */
        std::vector<ShadowSubarray> subs;
        unsigned designated = 0;    ///< MASA designated subarray.
        Cycle designateReadyAt = 0; ///< SA_SEL relink completes here.
    };

    /** Shadow per-rank state. */
    struct ShadowRank
    {
        std::array<Cycle, 4> actTimes{};
        unsigned actPtr = 0;
        unsigned actFill = 0;
        Cycle actReadyTRRD = 0;  ///< last ACT in rank + tRRD.
        Cycle rdReadyTWTR = 0;   ///< last write data end + tWTR.
        Cycle refreshEndAt = 0;  ///< in-flight REF completes here.
        Cycle lastRefreshAt = 0; ///< cycle of the last REF.
        bool refreshedOnce = false;
    };

    /** Shadow per-channel state. */
    struct ShadowChannel
    {
        Cycle colReadyTCCD = 0;
        Cycle dataBusFreeAt = 0;
        int lastDataRank = -1;
        bool lastDataWrite = false;
    };

    /** Record a violation of class @p v with description @p what. */
    void flag(Violation v, const CmdEvent &ev, const std::string &what);

    /** Record a partition violation without a command context. */
    void flagPartition(Violation v, const std::string &what);

    ShadowBank &bankOf(const CmdEvent &ev);
    ShadowRank &rankOf(const CmdEvent &ev);

    void checkActivate(const CmdEvent &ev);
    void checkPrecharge(const CmdEvent &ev);
    void checkColumn(const CmdEvent &ev, bool is_write);
    void checkSaSel(const CmdEvent &ev);
    void checkRefresh(const CmdEvent &ev);
    void checkRefreshBank(const CmdEvent &ev);
    void checkDataBus(const CmdEvent &ev, bool is_write);
    void checkPartitionAccess(const CmdEvent &ev);

    /** Subarray index of a row (low row bits). */
    unsigned subarrayOf(std::uint64_t row) const
    {
        return static_cast<unsigned>(row & (geom_.subarraysPerBank - 1));
    }

    /** Partition colors tracked (banks, x subarrays when colored). */
    unsigned partitionColors() const
    {
        return geom_.totalBanks() *
            (params_.subarrayColoring ? geom_.subarraysPerBank : 1u);
    }

    DramGeometry geom_;
    DramTiming timing_;
    ProtocolCheckerParams params_;

    std::vector<std::vector<std::vector<ShadowBank>>> banks_;
    std::vector<std::vector<ShadowRank>> ranks_;
    std::vector<ShadowChannel> channels_;

    /** Per thread: current / cumulative allowed colors ([tid][color]).
     *  Empty until the first onColorSet for that thread. */
    std::vector<std::vector<char>> allowedNow_;
    std::vector<std::vector<char>> everAllowed_;

    std::array<StatScalar, kNumViolations> counts_;
    std::string last_;
};

} // namespace dbpsim

#endif // DBPSIM_CHECK_PROTOCOL_CHECK_HH
