#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace dbpsim {

std::int64_t
parseIntString(const std::string &text, const std::string &what)
{
    if (text.empty())
        fatal("empty integer for ", what);

    std::string body = text;
    std::int64_t mult = 1;
    char last = static_cast<char>(std::tolower(body.back()));
    if (last == 'k' || last == 'm' || last == 'g') {
        mult = last == 'k' ? (1LL << 10)
             : last == 'm' ? (1LL << 20)
                           : (1LL << 30);
        body.pop_back();
    }

    errno = 0;
    char *end = nullptr;
    std::int64_t v = std::strtoll(body.c_str(), &end, 0);
    if (errno != 0 || end == body.c_str() || *end != '\0')
        fatal("malformed integer '", text, "' for ", what);
    return v * mult;
}

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return parseIntString(it->second, key);
}

std::uint64_t
Config::getUInt(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::int64_t v = parseIntString(it->second, key);
    if (v < 0)
        fatal("negative value '", it->second, "' for unsigned key ", key);
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        fatal("malformed double '", it->second, "' for ", key);
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("malformed bool '", it->second, "' for ", key);
}

bool
Config::parseToken(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(token.substr(0, eq), token.substr(eq + 1));
    return true;
}

void
Config::parseArgs(int argc, char **argv, int first)
{
    for (int i = first; i < argc; ++i) {
        if (!parseToken(argv[i]))
            fatal("expected key=value argument, got '", argv[i], "'");
    }
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    bool sep = false;
    for (const auto &kv : values_) {
        if (sep)
            os << ' ';
        os << kv.first << '=' << kv.second;
        sep = true;
    }
    return os.str();
}

} // namespace dbpsim
