/**
 * @file
 * A small typed key=value configuration store.
 *
 * Used to override system parameters from the command line of examples
 * and benchmarks ("banks=64 sched=tcm part=dbp"). Keys are free-form
 * strings; values are parsed on demand into the requested type, with a
 * fatal() on malformed input (user error, not a simulator bug).
 */

#ifndef DBPSIM_COMMON_CONFIG_HH
#define DBPSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbpsim {

/**
 * Key=value configuration bag with typed accessors.
 */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** True iff the key is present. */
    bool has(const std::string &key) const;

    /** String value, or @p def if absent. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer value (decimal, hex with 0x, or k/m/g suffix). */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;

    /** Unsigned 64-bit value with the same syntax as getInt. */
    std::uint64_t getUInt(const std::string &key, std::uint64_t def) const;

    /** Floating-point value. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean: accepts 0/1/true/false/yes/no/on/off. */
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse one "key=value" token into this config.
     * Returns false (and changes nothing) if the token has no '='.
     */
    bool parseToken(const std::string &token);

    /**
     * Parse argv-style overrides; every argument must look like
     * key=value, otherwise fatal().
     */
    void parseArgs(int argc, char **argv, int first = 1);

    /** All keys in insertion-independent (sorted) order. */
    std::vector<std::string> keys() const;

    /** Render as "k1=v1 k2=v2 ..." (sorted), for logging. */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values_;
};

/**
 * Parse an integer with optional 0x prefix or k/m/g (binary) suffix.
 * fatal()s on malformed input, mentioning @p what.
 */
std::int64_t parseIntString(const std::string &text, const std::string &what);

/**
 * True iff environment variable @p name is set to a non-empty value
 * other than "0". The one sanctioned environment probe: ambient state
 * must flow through here (dbplint determinism/banned-getenv) so every
 * env-sensitive switch is grep-able and none can reach results —
 * callers may gate debug *output* on it, never simulated behaviour.
 */
bool envFlag(const char *name);

} // namespace dbpsim

#endif // DBPSIM_COMMON_CONFIG_HH
