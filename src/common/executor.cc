#include "common/executor.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace dbpsim {

JobExecutor::JobExecutor(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
}

unsigned
JobExecutor::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : hw;
}

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

std::vector<double>
JobExecutor::run(const std::vector<std::function<void()>> &tasks)
{
    std::vector<double> seconds(tasks.size(), 0.0);
    if (tasks.empty())
        return seconds;

    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto run_one = [&](std::size_t i) {
        auto start = std::chrono::steady_clock::now();
        try {
            tasks[i]();
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
        // Each task writes only its own slot: no synchronization
        // needed beyond the thread join below.
        seconds[i] = secondsSince(start);
    };

    unsigned workers = threads_;
    if (workers > tasks.size())
        workers = static_cast<unsigned>(tasks.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            run_one(i);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            while (true) {
                std::size_t i = next.fetch_add(1);
                if (i >= tasks.size())
                    return;
                run_one(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return seconds;
}

} // namespace dbpsim
