/**
 * @file
 * A small thread-pool job executor for independent simulation jobs.
 *
 * The campaign layer fans one sweep out into many self-contained
 * (mix, scheme) simulations; this executor runs them on N worker
 * threads. Determinism is the caller's contract: every task must
 * derive its seeds from stable names (see jobSeed() in
 * sim/baseline.hh), write only into its own pre-assigned result slot,
 * and never read another task's output — then the results are
 * byte-identical whether the pool runs 1 thread or 16, regardless of
 * completion order.
 */

#ifndef DBPSIM_COMMON_EXECUTOR_HH
#define DBPSIM_COMMON_EXECUTOR_HH

#include <functional>
#include <vector>

namespace dbpsim {

/**
 * Runs a batch of independent tasks on a fixed-size worker pool.
 */
class JobExecutor
{
  public:
    /**
     * @param threads Worker count. 0 picks the hardware concurrency;
     *        1 runs every task inline on the calling thread (serial
     *        mode — the reference for determinism comparisons).
     */
    explicit JobExecutor(unsigned threads = 0);

    /** Hardware concurrency with a sane fallback. */
    static unsigned defaultThreads();

    /** Resolved worker count. */
    unsigned threads() const { return threads_; }

    /**
     * Run all @p tasks to completion and return per-task wall-clock
     * seconds, indexed like @p tasks. Tasks are claimed from a shared
     * atomic cursor, so submission order never influences which thread
     * runs what — and must therefore never influence results either.
     * The first exception thrown by any task is rethrown here after
     * every worker has drained (remaining tasks still run).
     */
    std::vector<double> run(
        const std::vector<std::function<void()>> &tasks);

  private:
    unsigned threads_;
};

} // namespace dbpsim

#endif // DBPSIM_COMMON_EXECUTOR_HH
