#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace dbpsim {

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    DBP_ASSERT(type_ == Type::Object, "Json::set on non-object");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *j = find(key);
    if (!j)
        fatal("json: missing member '", key, "'");
    return *j;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    DBP_ASSERT(type_ == Type::Array, "Json::push on non-array");
    elements_.push_back(std::move(value));
    return *this;
}

const Json &
Json::at(std::size_t i) const
{
    DBP_ASSERT(type_ == Type::Array, "Json::at(index) on non-array");
    if (i >= elements_.size())
        fatal("json: index ", i, " out of range (size ",
              elements_.size(), ")");
    return elements_[i];
}

std::size_t
Json::size() const
{
    switch (type_) {
      case Type::Array:
        return elements_.size();
      case Type::Object:
        return members_.size();
      case Type::String:
        return str_.size();
      default:
        return 0;
    }
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        fatal("json: not a number");
    return num_;
}

std::int64_t
Json::asInt() const
{
    return static_cast<std::int64_t>(asDouble());
}

std::uint64_t
Json::asUInt() const
{
    double v = asDouble();
    if (v < 0)
        fatal("json: negative value where unsigned expected");
    return static_cast<std::uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fatal("json: not a string");
    return str_;
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Shortest decimal form that parses back to the same double: try
 * increasing precision until the round-trip matches. Deterministic and
 * locale-independent (snprintf with "C" numeric formatting assumed, as
 * everywhere else in the simulator).
 */
void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null (campaign metrics are finite
        // by construction, so this only guards against future misuse).
        os << "null";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        os << static_cast<std::int64_t>(v);
        return;
    }
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    os << buf;
}

void
writeIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

// ---- parser ---------------------------------------------------------

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                if (pos + 1 >= text.size())
                    return fail("truncated escape");
                char e = text[pos + 1];
                pos += 2;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos + static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // The writer only emits \u00XX control codes;
                    // decode the Latin-1 range, reject the rest.
                    if (code > 0xff)
                        return fail("unsupported \\u escape");
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Json v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = Json(true);
            return true;
        }
        if (literal("false")) {
            out = Json(false);
            return true;
        }
        if (literal("null")) {
            out = Json();
            return true;
        }
        // number
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+'))
            ++pos;
        if (pos == start)
            return fail("unexpected character");
        double v = 0.0;
        if (std::sscanf(text.substr(start, pos - start).c_str(), "%lf",
                        &v) != 1)
            return fail("malformed number");
        out = Json(v);
        return true;
    }
};

} // namespace

void
Json::writeImpl(std::ostream &os, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        writeNumber(os, num_);
        break;
      case Type::String:
        writeEscaped(os, str_);
        break;
      case Type::Array: {
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i)
                os << (indent ? "," : ", ");
            if (indent)
                writeIndent(os, indent, depth + 1);
            elements_[i].writeImpl(os, indent, depth + 1);
        }
        if (indent)
            writeIndent(os, indent, depth);
        os << ']';
        break;
      }
      case Type::Object: {
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        bool first = true;
        for (const auto &m : members_) {
            if (!first)
                os << (indent ? "," : ", ");
            first = false;
            if (indent)
                writeIndent(os, indent, depth + 1);
            writeEscaped(os, m.first);
            os << ": ";
            m.second.writeImpl(os, indent, depth + 1);
        }
        if (indent)
            writeIndent(os, indent, depth);
        os << '}';
        break;
      }
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeImpl(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text);
    Json out;
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return Json();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " +
                std::to_string(p.pos);
        return Json();
    }
    if (error)
        error->clear();
    return out;
}

} // namespace dbpsim
