/**
 * @file
 * A minimal JSON value: build, serialize, parse.
 *
 * Written for the campaign result files (results/<campaign>.json and
 * results/alone_cache.json): object keys keep insertion order and
 * doubles print with round-trip precision, so the same in-memory
 * results always serialize to byte-identical text — the property the
 * parallel-vs-serial determinism gate compares. The parser accepts
 * exactly the subset the writer emits (standard JSON without unicode
 * escapes beyond \uXXXX pass-through).
 */

#ifndef DBPSIM_COMMON_JSON_HH
#define DBPSIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dbpsim {

/**
 * One JSON value (null / bool / number / string / array / object).
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Null value. */
    Json() = default;

    Json(bool v) : type_(Type::Bool), bool_(v) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(unsigned v) : type_(Type::Number), num_(v) {}
    Json(std::int64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(std::uint64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(const char *v) : type_(Type::String), str_(v) {}
    Json(std::string v) : type_(Type::String), str_(std::move(v)) {}

    /** Empty object / array factories. */
    static Json object();
    static Json array();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    // ---- object interface -------------------------------------------
    /** Set (or overwrite) @p key; makes a null value an object. */
    Json &set(const std::string &key, Json value);

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Member access; fatal() when absent. */
    const Json &at(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    // ---- array interface --------------------------------------------
    /** Append an element; makes a null value an array. */
    Json &push(Json value);

    /** Element access; fatal() when out of range. */
    const Json &at(std::size_t i) const;

    /** Array / object / string element count (0 for scalars). */
    std::size_t size() const;

    // ---- scalar accessors (fatal() on type mismatch) ----------------
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUInt() const;
    const std::string &asString() const;

    // ---- serialization ----------------------------------------------
    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits compact single-line text. Deterministic: member
     * order is insertion order, doubles use shortest round-trip form.
     */
    void write(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

    /**
     * Parse JSON text. Returns a null value and fills @p error (when
     * given) on malformed input.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

  private:
    void writeImpl(std::ostream &os, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace dbpsim

#endif // DBPSIM_COMMON_JSON_HH
