#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dbpsim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Per-thread job tag; plain thread_local needs no synchronization.
thread_local std::string t_job_tag;
} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

const std::string &
logJobTag()
{
    return t_job_tag;
}

LogJobScope::LogJobScope(std::string tag) : saved_(std::move(t_job_tag))
{
    t_job_tag = std::move(tag);
}

LogJobScope::~LogJobScope()
{
    t_job_tag = std::move(saved_);
}

namespace detail {

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(logLevel()))
        return;
    // One fprintf call per line: stderr is unbuffered and POSIX makes
    // single stdio calls atomic with respect to each other, so
    // parallel workers cannot interleave mid-line.
    if (t_job_tag.empty())
        std::fprintf(stderr, "[dbpsim:%s] %s\n", tag, msg.c_str());
    else
        std::fprintf(stderr, "[dbpsim:%s] (%s) %s\n", tag,
                     t_job_tag.c_str(), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (t_job_tag.empty())
        std::fprintf(stderr, "[dbpsim:panic] %s:%d: %s\n", file, line,
                     msg.c_str());
    else
        std::fprintf(stderr, "[dbpsim:panic] (%s) %s:%d: %s\n",
                     t_job_tag.c_str(), file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    if (t_job_tag.empty())
        std::fprintf(stderr, "[dbpsim:fatal] %s\n", msg.c_str());
    else
        std::fprintf(stderr, "[dbpsim:fatal] (%s) %s\n",
                     t_job_tag.c_str(), msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace dbpsim
