#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace dbpsim {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[dbpsim:%s] %s\n", tag, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[dbpsim:panic] %s:%d: %s\n", file, line,
                 msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "[dbpsim:fatal] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace dbpsim
