/**
 * @file
 * Logging and invariant-checking helpers, in the spirit of gem5's
 * logging.hh: panic() for simulator bugs, fatal() for user errors,
 * warn()/inform() for status.
 */

#ifndef DBPSIM_COMMON_LOG_HH
#define DBPSIM_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace dbpsim {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/**
 * Global log verbosity (default: Warn). Stored atomically so campaign
 * worker threads can consult it while another thread adjusts it.
 */
LogLevel logLevel();

/** Set the global log verbosity (atomic; callable from any thread). */
void setLogLevel(LogLevel level);

/**
 * This thread's job tag — prefixed to every log line the thread emits
 * so interleaved parallel campaign output stays attributable
 * ("[dbpsim:warn] (fig4:W04/DBP) ..."). Empty when unset.
 */
const std::string &logJobTag();

/**
 * RAII scope installing a job tag on the current thread; restores the
 * previous tag (nesting-safe) on destruction. Campaign workers wrap
 * each job in one of these.
 */
class LogJobScope
{
  public:
    explicit LogJobScope(std::string tag);
    ~LogJobScope();

    LogJobScope(const LogJobScope &) = delete;
    LogJobScope &operator=(const LogJobScope &) = delete;

  private:
    std::string saved_;
};

namespace detail {

/** Emit one formatted log line to stderr if @p level is enabled. */
void emit(LogLevel level, const char *tag, const std::string &msg);

/** Abort with a message: simulator bug (never user-triggered). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message: user/configuration error. */
[[noreturn]] void fatalImpl(const std::string &msg);

} // namespace detail

/** Report a user/configuration error and exit. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::fatalImpl(os.str());
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::emit(LogLevel::Warn, "warn", os.str());
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    detail::emit(LogLevel::Info, "info", os.str());
}

/** High-volume debugging message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::ostringstream os;
    (os << ... << args);
    detail::emit(LogLevel::Debug, "debug", os.str());
}

} // namespace dbpsim

/**
 * Abort on an internal inconsistency (simulator bug). Active in all
 * build types: the simulator's correctness claims depend on these.
 */
#define DBP_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream dbp_assert_os_;                             \
            dbp_assert_os_ << "assertion '" #cond "' failed: " << msg;     \
            ::dbpsim::detail::panicImpl(__FILE__, __LINE__,                \
                                        dbp_assert_os_.str());             \
        }                                                                  \
    } while (0)

/** Unconditional panic. */
#define DBP_PANIC(msg)                                                     \
    do {                                                                   \
        std::ostringstream dbp_panic_os_;                                  \
        dbp_panic_os_ << msg;                                              \
        ::dbpsim::detail::panicImpl(__FILE__, __LINE__,                    \
                                    dbp_panic_os_.str());                  \
    } while (0)

#endif // DBPSIM_COMMON_LOG_HH
