#include "common/random.hh"

#include <cmath>

#include "common/log.hh"

namespace dbpsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed through SplitMix64 as the xoshiro authors
    // recommend; guarantees a non-zero state.
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    DBP_ASSERT(bound > 0, "nextBelow(0)");
    // Debiased multiply-shift (Lemire). Bias is negligible for the
    // bounds used in this simulator, but reject the tail anyway.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next64();
        // Use 128-bit multiply to map r into [0, bound).
        unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    DBP_ASSERT(lo <= hi, "nextRange: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0,1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 0;
    DBP_ASSERT(p > 0.0, "nextGeometric: p must be in (0,1]");
    // Inverse-transform sampling.
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

Rng
Rng::split()
{
    return Rng(next64());
}

} // namespace dbpsim
