/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (synthetic trace
 * generators, TCM's insertion shuffle, allocator tie-breaking) draws
 * from an explicitly seeded Rng so that simulations are exactly
 * reproducible. SplitMix64 is used for seeding and xoshiro256** for the
 * stream; both are tiny, fast, and well studied.
 */

#ifndef DBPSIM_COMMON_RANDOM_HH
#define DBPSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace dbpsim {

/**
 * A deterministic, seedable PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability @p p (mean (1-p)/p). Returns 0 when p >= 1.
     */
    std::uint64_t nextGeometric(double p);

    /** Derive an independent child generator (for per-thread streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace dbpsim

#endif // DBPSIM_COMMON_RANDOM_HH
