#include "common/stats.hh"

#include <iomanip>

#include "common/log.hh"

namespace dbpsim {

StatHistogram::StatHistogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), width_(bucket_width)
{
    DBP_ASSERT(bucket_count > 0, "histogram needs >=1 bucket");
    DBP_ASSERT(bucket_width > 0.0, "histogram bucket width must be > 0");
}

void
StatHistogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < 0) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
StatHistogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
}

void
StatGroup::addScalar(const std::string &name, const StatScalar *s)
{
    Entry e;
    e.name = name;
    e.scalar = s;
    entries_.push_back(e);
}

void
StatGroup::addAverage(const std::string &name, const StatAverage *s)
{
    Entry e;
    e.name = name;
    e.average = s;
    entries_.push_back(e);
}

void
StatGroup::addDerived(const std::string &name, double (*fn)(const void *),
                      const void *ctx)
{
    Entry e;
    e.name = name;
    e.derived = fn;
    e.ctx = ctx;
    entries_.push_back(e);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << name_ << '.' << std::left << std::setw(32) << e.name << ' ';
        if (e.scalar) {
            os << e.scalar->value();
        } else if (e.average) {
            os << std::fixed << std::setprecision(4) << e.average->mean();
        } else if (e.derived) {
            os << std::fixed << std::setprecision(4) << e.derived(e.ctx);
        }
        os << '\n';
    }
}

} // namespace dbpsim
