/**
 * @file
 * Lightweight statistics primitives, loosely modelled on gem5's stats
 * package: scalar counters, averages, and histograms, grouped into
 * named StatGroups that can be dumped as text.
 */

#ifndef DBPSIM_COMMON_STATS_HH
#define DBPSIM_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dbpsim {

/**
 * A monotonically growing scalar counter.
 */
class StatScalar
{
  public:
    StatScalar() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { value_ += n; }

    /** Current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used at interval boundaries). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running mean of a stream of samples.
 */
class StatAverage
{
  public:
    StatAverage() = default;

    /** Add one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Number of samples. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Mean, or 0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Reset. */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bucket histogram over [0, bucketCount * bucketWidth); samples
 * beyond the top land in an overflow bucket.
 */
class StatHistogram
{
  public:
    /**
     * @param bucket_count Number of regular buckets.
     * @param bucket_width Width of each bucket.
     */
    StatHistogram(std::size_t bucket_count, double bucket_width);

    /** Add one sample. */
    void sample(double v);

    /** Count in regular bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Samples beyond the last regular bucket. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total sample count. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Number of regular buckets. */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Width of each regular bucket. */
    double bucketWidth() const { return width_; }

    /** Reset all buckets. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of stats for dumping. Components register their
 * stats by name; the group formats them aligned.
 */
class StatGroup
{
  public:
    /** @param name Dotted group name shown as a dump prefix. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a scalar for dumping. Pointers must outlive the group. */
    void addScalar(const std::string &name, const StatScalar *s);

    /** Register an average for dumping. */
    void addAverage(const std::string &name, const StatAverage *s);

    /** Register a derived value computed at dump time. */
    void addDerived(const std::string &name, double (*fn)(const void *),
                    const void *ctx);

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Group name. */
    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        std::string name;
        const StatScalar *scalar = nullptr;
        const StatAverage *average = nullptr;
        double (*derived)(const void *) = nullptr;
        const void *ctx = nullptr;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace dbpsim

#endif // DBPSIM_COMMON_STATS_HH
