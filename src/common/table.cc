#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace dbpsim {

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        DBP_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DBP_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::beginRow()
{
    DBP_ASSERT(rows_.empty() || rows_.back().size() == headers_.size(),
               "previous row incomplete: has " << rows_.back().size()
               << " cells, expected " << headers_.size());
    rows_.emplace_back();
}

void
TextTable::cell(const std::string &v)
{
    DBP_ASSERT(!rows_.empty(), "cell() before beginRow()");
    DBP_ASSERT(rows_.back().size() < headers_.size(),
               "too many cells in row");
    rows_.back().push_back(v);
}

void
TextTable::cell(double v, int precision)
{
    cell(formatDouble(v, precision));
}

void
TextTable::cell(std::int64_t v)
{
    cell(std::to_string(v));
}

void
TextTable::cell(std::uint64_t v)
{
    cell(std::to_string(v));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << v;
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << row[c];
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace dbpsim
