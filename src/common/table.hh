/**
 * @file
 * ASCII / CSV table rendering for the benchmark harnesses.
 *
 * Every figure/table bench emits one of these so the output looks like
 * the rows/series of the corresponding plot in the paper and can also
 * be piped into a plotting script as CSV.
 */

#ifndef DBPSIM_COMMON_TABLE_HH
#define DBPSIM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace dbpsim {

/**
 * A simple column-aligned table with a header row.
 */
class TextTable
{
  public:
    /** @param headers Column titles; fixes the column count. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &v);

    /** Append a formatted double cell (fixed, @p precision digits). */
    void cell(double v, int precision = 3);

    /** Append an integer cell. */
    void cell(std::int64_t v);
    void cell(std::uint64_t v);
    void cell(int v) { cell(static_cast<std::int64_t>(v)); }
    void cell(unsigned v) { cell(static_cast<std::uint64_t>(v)); }

    /** Number of completed + current rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render aligned ASCII with a separator under the header. */
    void print(std::ostream &os) const;

    /** Render comma-separated values (header first). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision into a string. */
std::string formatDouble(double v, int precision = 3);

/** Geometric mean of a vector of positive values (0 on empty input). */
double geomean(const std::vector<double> &values);

} // namespace dbpsim

#endif // DBPSIM_COMMON_TABLE_HH
