/**
 * @file
 * Fundamental scalar types and small helpers shared by every module.
 */

#ifndef DBPSIM_COMMON_TYPES_HH
#define DBPSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dbpsim {

/** A physical or virtual byte address. */
using Addr = std::uint64_t;

/** A cycle count. CPU and DRAM cycles use the same type; context decides. */
using Cycle = std::uint64_t;

/** An instruction count. */
using InstCount = std::uint64_t;

/** Identifies a hardware thread / core (one application per core). */
using ThreadId = std::int32_t;

/** Thread id used for traffic not belonging to any application thread
 *  (e.g. page-migration traffic injected by the OS model). */
constexpr ThreadId kSystemThread = -1;

/** An invalid / "no thread" marker. */
constexpr ThreadId kInvalidThread = -2;

/** Sentinel for "never" when tracking earliest-allowed cycles. */
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/**
 * Integer ceil-division for unsigned operands.
 */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * True iff @p v is a power of two (0 is not).
 */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * log2 of a power-of-two value.
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) { v >>= 1; ++l; }
    return l;
}

} // namespace dbpsim

#endif // DBPSIM_COMMON_TYPES_HH
