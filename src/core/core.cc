#include "core/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

TraceCore::TraceCore(ThreadId tid, CoreParams params, TraceSource *source,
                     CoreMemoryInterface *mem)
    : tid_(tid), params_(params), source_(source), mem_(mem)
{
    DBP_ASSERT(source_ != nullptr, "core needs a trace source");
    DBP_ASSERT(mem_ != nullptr, "core needs a memory interface");
    DBP_ASSERT(params_.windowSize > 0, "window size must be >= 1");
    DBP_ASSERT(params_.issueWidth > 0, "issue width must be >= 1");
    DBP_ASSERT(params_.mshrs > 0, "mshr count must be >= 1");
    DBP_ASSERT(params_.storeBufferSize > 0, "store buffer must be >= 1");
    mshrs_.resize(params_.mshrs);
}

void
TraceCore::fetch()
{
    // Keep fetching while the window has room, counted in
    // instructions. One trace record contributes its bubble run plus
    // the memory instruction itself.
    while (windowInstrs_ < params_.windowSize) {
        TraceRecord rec = source_->next();
        if (rec.gap > 0) {
            Entry bubble;
            bubble.kind = Entry::Kind::Bubble;
            bubble.count = rec.gap;
            window_.push_back(bubble);
            windowInstrs_ += rec.gap;
        }
        Entry memop;
        memop.kind = rec.write ? Entry::Kind::Store : Entry::Kind::Load;
        memop.vaddr = rec.vaddr - rec.vaddr % params_.lineBytes;
        memop.serial = nextSerial_++;
        window_.push_back(memop);
        windowInstrs_ += 1;
    }
}

bool
TraceCore::tryIssueLoad(Entry &entry)
{
    Addr line = entry.vaddr;

    // Merge with an outstanding MSHR for the same line.
    for (auto &m : mshrs_) {
        if (m.valid && m.lineAddr == line) {
            m.waiters.push_back(entry.serial);
            entry.issued = true;
            statMshrMerges.inc();
            return true;
        }
    }

    if (mshrInUse_ >= params_.mshrs) {
        statMshrStalls.inc();
        return false;
    }

    // Find a free MSHR slot; its index is the completion tag.
    std::size_t slot = mshrs_.size();
    for (std::size_t i = 0; i < mshrs_.size(); ++i) {
        if (!mshrs_[i].valid) {
            slot = i;
            break;
        }
    }
    DBP_ASSERT(slot < mshrs_.size(), "mshrInUse_ / valid mismatch");

    if (!mem_->issueLoad(tid_, line, this, slot))
        return false;

    mshrs_[slot].valid = true;
    mshrs_[slot].lineAddr = line;
    mshrs_[slot].waiters.assign(1, entry.serial);
    ++mshrInUse_;
    entry.issued = true;
    statLoads.inc();
    return true;
}

void
TraceCore::issueLoads()
{
    for (auto &entry : window_) {
        if (entry.kind != Entry::Kind::Load || entry.issued)
            continue;
        if (!tryIssueLoad(entry))
            break; // in-order issue attempts; retry next cycle.
    }
}

void
TraceCore::readComplete(std::uint64_t tag)
{
    DBP_ASSERT(tag < mshrs_.size(), "bad completion tag " << tag);
    Mshr &m = mshrs_[tag];
    DBP_ASSERT(m.valid, "completion for free MSHR " << tag);

    for (std::uint64_t serial : m.waiters) {
        for (auto &entry : window_) {
            if (entry.kind == Entry::Kind::Load &&
                entry.serial == serial) {
                entry.completed = true;
                break;
            }
        }
    }
    m.valid = false;
    m.waiters.clear();
    DBP_ASSERT(mshrInUse_ > 0, "mshrInUse_ underflow");
    --mshrInUse_;
}

void
TraceCore::drainStoreBuffer()
{
    if (storeBuffer_.empty())
        return;
    if (mem_->issueStore(tid_, storeBuffer_.front())) {
        storeBuffer_.pop_front();
        statStores.inc();
    }
}

void
TraceCore::retire()
{
    std::uint64_t budget = params_.issueWidth;
    while (budget > 0 && !window_.empty()) {
        Entry &head = window_.front();
        switch (head.kind) {
          case Entry::Kind::Bubble: {
            std::uint64_t take = std::min<std::uint64_t>(budget,
                                                         head.count);
            head.count -= take;
            budget -= take;
            retired_ += take;
            windowInstrs_ -= take;
            if (head.count == 0)
                window_.pop_front();
            break;
          }
          case Entry::Kind::Load: {
            if (!head.completed) {
                statHeadStalls.inc();
                return;
            }
            retired_ += 1;
            windowInstrs_ -= 1;
            --budget;
            window_.pop_front();
            break;
          }
          case Entry::Kind::Store: {
            if (storeBuffer_.size() >= params_.storeBufferSize) {
                statStoreStalls.inc();
                return;
            }
            storeBuffer_.push_back(head.vaddr);
            retired_ += 1;
            windowInstrs_ -= 1;
            --budget;
            window_.pop_front();
            break;
          }
        }
    }
}

void
TraceCore::tick()
{
    fetch();
    issueLoads();
    retire();
    drainStoreBuffer();
}

} // namespace dbpsim
