/**
 * @file
 * Trace-driven core model with an instruction window, MSHRs and a
 * store buffer — the standard front end of memory-scheduling studies
 * (PAR-BS / ATLAS / TCM / MCP use the same model): the core retires up
 * to issueWidth instructions per CPU cycle; loads issue to the memory
 * system as soon as they enter the window (out-of-order issue, subject
 * to MSHR availability, with same-line merging) but block retirement
 * when they reach the window head uncompleted; stores retire into a
 * finite store buffer that drains to the memory system asynchronously.
 * This reproduces each application's memory-level parallelism, which
 * is exactly what bank partitioning trades in.
 */

#ifndef DBPSIM_CORE_CORE_HH
#define DBPSIM_CORE_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/request.hh"
#include "trace/source.hh"

namespace dbpsim {

/**
 * Core configuration.
 */
struct CoreParams
{
    unsigned windowSize = 128;     ///< instruction window entries.
    unsigned issueWidth = 4;       ///< max retires per CPU cycle.
    unsigned mshrs = 32;           ///< outstanding load lines.
    unsigned storeBufferSize = 32; ///< pending stores.
    std::uint64_t lineBytes = 64;  ///< access granularity.
};

/**
 * How a core reaches the memory system. The System implements this:
 * it translates virtual addresses through the OS model and routes to
 * the right channel controller (optionally through a private cache).
 */
class CoreMemoryInterface
{
  public:
    virtual ~CoreMemoryInterface() = default;

    /**
     * Issue a load for @p vaddr. Returns false when the memory system
     * cannot accept it this cycle (retry later). On true, completion
     * arrives via @p client->readComplete(@p tag).
     */
    virtual bool issueLoad(ThreadId tid, Addr vaddr, MemClient *client,
                           std::uint64_t tag) = 0;

    /** Issue a posted store; false = retry later. */
    virtual bool issueStore(ThreadId tid, Addr vaddr) = 0;
};

/**
 * The core.
 */
class TraceCore : public MemClient
{
  public:
    /**
     * @param tid This core's hardware thread id.
     * @param params Window/MSHR configuration.
     * @param source Trace to execute (not owned).
     * @param mem Memory interface (not owned).
     */
    TraceCore(ThreadId tid, CoreParams params, TraceSource *source,
              CoreMemoryInterface *mem);

    /** Advance one CPU cycle. */
    void tick();

    /** MemClient: a load line returned. @p tag is the MSHR index. */
    void readComplete(std::uint64_t tag) override;

    /** Instructions retired since construction. */
    InstCount instructionsRetired() const { return retired_; }

    /** This core's thread id. */
    ThreadId tid() const { return tid_; }

    /** Loads sent to the memory system. */
    std::uint64_t loadsIssued() const { return statLoads.value(); }

    /** Outstanding load lines right now (tests). */
    unsigned outstandingLoads() const { return mshrInUse_; }

    /** Occupied instruction-window slots, in instructions (tests). */
    std::uint64_t windowOccupancy() const { return windowInstrs_; }

    /** @name Counters. */
    /// @{
    StatScalar statLoads;        ///< loads issued to memory.
    StatScalar statStores;       ///< stores issued to memory.
    StatScalar statMshrMerges;   ///< loads merged into an MSHR.
    StatScalar statHeadStalls;   ///< cycles stalled on a head load.
    StatScalar statMshrStalls;   ///< cycles a load waited for an MSHR.
    StatScalar statStoreStalls;  ///< cycles stalled on store buffer.
    /// @}

  private:
    /** One window entry: a bubble run or a memory instruction. */
    struct Entry
    {
        enum class Kind { Bubble, Load, Store } kind = Kind::Bubble;
        std::uint64_t count = 0; ///< remaining instructions (bubbles).
        Addr vaddr = 0;          ///< memory entries.
        bool issued = false;     ///< load sent to memory / MSHR merged.
        bool completed = false;  ///< load data returned.
        std::uint64_t serial = 0; ///< unique id for MSHR attachment.
    };

    /** Fill the window from the trace. */
    void fetch();

    /** Try to issue every unissued load in the window. */
    void issueLoads();

    /** Retire from the head, up to issueWidth instructions. */
    void retire();

    /** Drain one store-buffer entry if the memory system accepts. */
    void drainStoreBuffer();

    /** Try to issue one load entry; updates MSHR state. */
    bool tryIssueLoad(Entry &entry);

    ThreadId tid_;
    CoreParams params_;
    TraceSource *source_;
    CoreMemoryInterface *mem_;

    std::deque<Entry> window_;
    std::uint64_t windowInstrs_ = 0; ///< instructions in the window.
    InstCount retired_ = 0;
    std::uint64_t nextSerial_ = 0;

    /** MSHR: line address + completion fan-out to window entries. */
    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::vector<std::uint64_t> waiters; ///< entry serials.
    };
    std::vector<Mshr> mshrs_;
    unsigned mshrInUse_ = 0;

    std::deque<Addr> storeBuffer_;
};

} // namespace dbpsim

#endif // DBPSIM_CORE_CORE_HH
