#include "dram/addr_map.hh"

#include <sstream>

#include "common/log.hh"

namespace dbpsim {

std::string
DramGeometry::validate() const
{
    auto pot = [](std::uint64_t v) { return isPowerOfTwo(v); };
    std::ostringstream os;
    if (!pot(channels) || !pot(ranksPerChannel) || !pot(banksPerRank) ||
        !pot(subarraysPerBank) || !pot(rowsPerBank) || !pot(rowBytes) ||
        !pot(lineBytes) || !pot(pageBytes)) {
        os << "all geometry fields must be powers of two";
        return os.str();
    }
    if (subarraysPerBank == 0 || subarraysPerBank > rowsPerBank) {
        os << "subarraysPerBank (" << subarraysPerBank
           << ") must be in [1, rowsPerBank]";
        return os.str();
    }
    if (lineBytes > pageBytes) {
        os << "lineBytes (" << lineBytes << ") > pageBytes ("
           << pageBytes << ")";
        return os.str();
    }
    if (pageBytes > rowBytes) {
        os << "pageBytes (" << pageBytes << ") > rowBytes (" << rowBytes
           << "): a frame would span rows";
        return os.str();
    }
    if (rowBytes < lineBytes) {
        os << "rowBytes < lineBytes";
        return os.str();
    }
    return std::string();
}

MapScheme
mapSchemeByName(const std::string &name)
{
    if (name == "page")
        return MapScheme::PageInterleave;
    if (name == "row")
        return MapScheme::RowInterleave;
    if (name == "line")
        return MapScheme::LineInterleave;
    fatal("unknown address-mapping scheme '", name,
          "' (expected page|row|line)");
}

std::string
mapSchemeName(MapScheme scheme)
{
    switch (scheme) {
      case MapScheme::PageInterleave: return "page";
      case MapScheme::RowInterleave: return "row";
      case MapScheme::LineInterleave: return "line";
    }
    DBP_PANIC("unreachable map scheme");
}

AddressMap::AddressMap(const DramGeometry &geom, MapScheme scheme,
                       bool bank_xor, bool color_subarrays)
    : geom_(geom), scheme_(scheme), bankXor_(bank_xor),
      colorSubarrays_(color_subarrays)
{
    std::string err = geom.validate();
    if (!err.empty())
        fatal("invalid DRAM geometry: ", err);

    chanBits_ = floorLog2(geom.channels);
    rankBits_ = floorLog2(geom.ranksPerChannel);
    bankBits_ = floorLog2(geom.banksPerRank);
    rowBits_ = floorLog2(geom.rowsPerBank);
    colBits_ = floorLog2(geom.colsPerRow());
    lineBits_ = floorLog2(geom.lineBytes);
    pageLineBits_ = floorLog2(geom.pageBytes / geom.lineBytes);
    slotBits_ = floorLog2(geom.rowBytes / geom.pageBytes);
    subBits_ = floorLog2(geom.subarraysPerBank);
}

namespace {

/** Extract @p bits bits from @p value at the running cursor. */
std::uint64_t
take(std::uint64_t &value, unsigned bits)
{
    std::uint64_t field = value & ((1ULL << bits) - 1);
    value >>= bits;
    return field;
}

/** Append @p field (of width @p bits) at the running cursor. */
void
put(std::uint64_t &value, unsigned &shift, std::uint64_t field,
    unsigned bits)
{
    value |= field << shift;
    shift += bits;
}

} // namespace

DramCoord
AddressMap::decode(Addr addr) const
{
    std::uint64_t line = addr >> lineBits_;
    DramCoord c;

    switch (scheme_) {
      case MapScheme::PageInterleave: {
        std::uint64_t col_lo = take(line, pageLineBits_);
        c.channel = static_cast<unsigned>(take(line, chanBits_));
        c.rank = static_cast<unsigned>(take(line, rankBits_));
        c.bank = static_cast<unsigned>(take(line, bankBits_));
        std::uint64_t slot = take(line, slotBits_);
        c.row = take(line, rowBits_);
        c.col = col_lo | (slot << pageLineBits_);
        break;
      }
      case MapScheme::RowInterleave: {
        c.col = take(line, colBits_);
        c.channel = static_cast<unsigned>(take(line, chanBits_));
        c.rank = static_cast<unsigned>(take(line, rankBits_));
        c.bank = static_cast<unsigned>(take(line, bankBits_));
        c.row = take(line, rowBits_);
        break;
      }
      case MapScheme::LineInterleave: {
        c.channel = static_cast<unsigned>(take(line, chanBits_));
        c.rank = static_cast<unsigned>(take(line, rankBits_));
        c.bank = static_cast<unsigned>(take(line, bankBits_));
        c.col = take(line, colBits_);
        c.row = take(line, rowBits_);
        break;
      }
    }

    if (bankXor_ && bankBits_ > 0) {
        auto mask = (1ULL << bankBits_) - 1;
        c.bank = static_cast<unsigned>((c.bank ^ (c.row & mask)) & mask);
    }
    return c;
}

Addr
AddressMap::encode(const DramCoord &coord) const
{
    DramCoord c = coord;
    DBP_ASSERT(c.channel < geom_.channels, "channel out of range");
    DBP_ASSERT(c.rank < geom_.ranksPerChannel, "rank out of range");
    DBP_ASSERT(c.bank < geom_.banksPerRank, "bank out of range");
    DBP_ASSERT(c.row < geom_.rowsPerBank, "row out of range");
    DBP_ASSERT(c.col < geom_.colsPerRow(), "col out of range");

    if (bankXor_ && bankBits_ > 0) {
        // XOR with the same row bits is its own inverse.
        auto mask = (1ULL << bankBits_) - 1;
        c.bank = static_cast<unsigned>((c.bank ^ (c.row & mask)) & mask);
    }

    std::uint64_t line = 0;
    unsigned shift = 0;

    switch (scheme_) {
      case MapScheme::PageInterleave: {
        std::uint64_t col_lo = c.col & ((1ULL << pageLineBits_) - 1);
        std::uint64_t slot = c.col >> pageLineBits_;
        put(line, shift, col_lo, pageLineBits_);
        put(line, shift, c.channel, chanBits_);
        put(line, shift, c.rank, rankBits_);
        put(line, shift, c.bank, bankBits_);
        put(line, shift, slot, slotBits_);
        put(line, shift, c.row, rowBits_);
        break;
      }
      case MapScheme::RowInterleave: {
        put(line, shift, c.col, colBits_);
        put(line, shift, c.channel, chanBits_);
        put(line, shift, c.rank, rankBits_);
        put(line, shift, c.bank, bankBits_);
        put(line, shift, c.row, rowBits_);
        break;
      }
      case MapScheme::LineInterleave: {
        put(line, shift, c.channel, chanBits_);
        put(line, shift, c.rank, rankBits_);
        put(line, shift, c.bank, bankBits_);
        put(line, shift, c.col, colBits_);
        put(line, shift, c.row, rowBits_);
        break;
      }
    }

    return line << lineBits_;
}

unsigned
AddressMap::colorOf(const DramCoord &coord) const
{
    unsigned bank_color =
        ((coord.channel * geom_.ranksPerChannel) + coord.rank)
        * geom_.banksPerRank + coord.bank;
    if (!colorSubarrays_)
        return bank_color;
    return bank_color * geom_.subarraysPerBank + subarrayOf(coord.row);
}

AddressMap::ColorLocation
AddressMap::colorLocation(unsigned color) const
{
    DBP_ASSERT(color < numColors(), "color out of range");
    ColorLocation loc;
    loc.subarray = 0;
    if (colorSubarrays_) {
        loc.subarray = color % geom_.subarraysPerBank;
        color /= geom_.subarraysPerBank;
    }
    loc.bank = color % geom_.banksPerRank;
    loc.rank = (color / geom_.banksPerRank) % geom_.ranksPerChannel;
    loc.channel = color / (geom_.banksPerRank * geom_.ranksPerChannel);
    return loc;
}

bool
AddressMap::supportsBankColoring() const
{
    return scheme_ == MapScheme::PageInterleave && !bankXor_;
}

std::uint64_t
AddressMap::framesPerColor() const
{
    DBP_ASSERT(supportsBankColoring(),
               "framesPerColor only defined for PageInterleave");
    return geom_.totalFrames() / numColors();
}

std::uint64_t
AddressMap::frameOfColorIndex(unsigned color, std::uint64_t index) const
{
    DBP_ASSERT(supportsBankColoring(),
               "frameOfColorIndex only defined for PageInterleave");
    DBP_ASSERT(color < numColors(), "color out of range");
    DBP_ASSERT(index < framesPerColor(), "frame index out of range");
    // Frame number layout (LSB first): chan | rank | bank | slot | row.
    // colorOf() orders colors as ((chan*ranks)+rank)*banks+bank, while
    // the frame's low bits order them as chan lowest. Re-split color.
    unsigned sub = 0;
    if (colorSubarrays_) {
        sub = color % geom_.subarraysPerBank;
        color /= geom_.subarraysPerBank;
    }
    unsigned bank = color % geom_.banksPerRank;
    unsigned rank = (color / geom_.banksPerRank) % geom_.ranksPerChannel;
    unsigned chan = color / (geom_.banksPerRank * geom_.ranksPerChannel);

    std::uint64_t frame = 0;
    unsigned shift = 0;
    put(frame, shift, chan, chanBits_);
    put(frame, shift, rank, rankBits_);
    put(frame, shift, bank, bankBits_);
    if (colorSubarrays_) {
        // The subarray index is the low row bits, which sit just above
        // the slot bits; the index enumerates slot + high row bits.
        std::uint64_t slot = index & ((1ULL << slotBits_) - 1);
        put(frame, shift, slot, slotBits_);
        put(frame, shift, sub, subBits_);
        put(frame, shift, index >> slotBits_, rowBits_ - subBits_);
    } else {
        put(frame, shift, index, slotBits_ + rowBits_);
    }
    return frame;
}

unsigned
AddressMap::colorOfFrame(std::uint64_t frame) const
{
    DBP_ASSERT(supportsBankColoring(),
               "colorOfFrame only defined for PageInterleave");
    std::uint64_t f = frame;
    auto chan = static_cast<unsigned>(take(f, chanBits_));
    auto rank = static_cast<unsigned>(take(f, rankBits_));
    auto bank = static_cast<unsigned>(take(f, bankBits_));
    unsigned bank_color =
        ((chan * geom_.ranksPerChannel) + rank) * geom_.banksPerRank
        + bank;
    if (!colorSubarrays_)
        return bank_color;
    take(f, slotBits_);
    auto sub = static_cast<unsigned>(take(f, subBits_));
    return bank_color * geom_.subarraysPerBank + sub;
}

} // namespace dbpsim
