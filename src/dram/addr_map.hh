/**
 * @file
 * Physical address <-> DRAM coordinate mapping.
 *
 * The mapping scheme determines which address bits select the channel,
 * rank, bank, row and column. Bank partitioning via OS page coloring
 * requires the {channel, rank, bank} bits to sit entirely above the
 * page offset so that one physical frame lives wholly inside one bank
 * (scheme PageInterleave). Line/row interleaving schemes are provided
 * as unpartitionable baselines for ablations.
 */

#ifndef DBPSIM_DRAM_ADDR_MAP_HH
#define DBPSIM_DRAM_ADDR_MAP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dbpsim {

/**
 * DRAM geometry. All counts must be powers of two.
 */
struct DramGeometry
{
    unsigned channels = 2;          ///< memory channels.
    unsigned ranksPerChannel = 2;   ///< ranks per channel.
    unsigned banksPerRank = 8;      ///< banks per rank.
    unsigned subarraysPerBank = 8;  ///< subarrays per bank (SALP/MASA).
    std::uint64_t rowsPerBank = 32768; ///< rows per bank.
    std::uint64_t rowBytes = 8192;  ///< row (page) size per bank.
    std::uint64_t lineBytes = 64;   ///< cache-line / burst granularity.
    std::uint64_t pageBytes = 4096; ///< OS frame size.

    /** Total banks across the machine. */
    unsigned totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Line-sized columns per row. */
    std::uint64_t colsPerRow() const { return rowBytes / lineBytes; }

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes() const
    {
        return static_cast<std::uint64_t>(totalBanks()) * rowsPerBank
            * rowBytes;
    }

    /** Total OS frames. */
    std::uint64_t totalFrames() const { return capacityBytes() / pageBytes; }

    /** Validate power-of-two-ness and size relations; "" when OK. */
    std::string validate() const;
};

/**
 * Decoded DRAM coordinates of one cache line.
 */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0; ///< line-sized column within the row.

    bool operator==(const DramCoord &o) const = default;
};

/** Address bit-field ordering schemes. */
enum class MapScheme
{
    /**
     * [line-in-page][chan][rank][bank][page-slot-in-row][row].
     * Frames are bank-homogeneous; required for bank partitioning.
     */
    PageInterleave,
    /** [col][chan][rank][bank][row]: whole rows contiguous. */
    RowInterleave,
    /** [chan][rank][bank][col][row]: maximally spreads lines. */
    LineInterleave,
};

/** Parse "page" / "row" / "line"; fatal() on anything else. */
MapScheme mapSchemeByName(const std::string &name);

/** Human-readable scheme name. */
std::string mapSchemeName(MapScheme scheme);

/**
 * Bidirectional address translator for a geometry + scheme.
 *
 * A "color" identifies one physical bank machine-wide:
 *   color = ((channel * ranksPerChannel) + rank) * banksPerRank + bank.
 * With subarray coloring enabled, each bank color subdivides into
 * subarraysPerBank colors:
 *   color = bankColor * subarraysPerBank + subarrayOf(row),
 * so the OS can give two threads disjoint subarrays of one bank.
 */
class AddressMap
{
  public:
    /**
     * @param geom Validated DRAM geometry.
     * @param scheme Field ordering.
     * @param bank_xor If true, the bank field is XOR-permuted with the
     *        low row bits (Zhang et al.) to spread conflicting rows.
     *        Incompatible with OS bank partitioning; default off.
     * @param color_subarrays If true, colors name {channel, rank,
     *        bank, subarray} instead of {channel, rank, bank}; the
     *        partitioning axis gains subarray granularity.
     */
    AddressMap(const DramGeometry &geom, MapScheme scheme,
               bool bank_xor = false, bool color_subarrays = false);

    /** Decode a byte address into DRAM coordinates. */
    DramCoord decode(Addr addr) const;

    /** Inverse of decode; returns the line's base byte address. */
    Addr encode(const DramCoord &coord) const;

    /** Machine-wide bank color of a coordinate. */
    unsigned colorOf(const DramCoord &coord) const;

    /** Location of one color within the machine. */
    struct ColorLocation
    {
        unsigned channel;
        unsigned rank;
        unsigned bank;
        unsigned subarray; ///< 0 unless subarray coloring is enabled.
    };

    /** Inverse of colorOf: which (channel, rank, bank[, subarray]) a
     *  color names. */
    ColorLocation colorLocation(unsigned color) const;

    /** Number of colors (total banks, x subarrays when colored). */
    unsigned numColors() const
    {
        return geom_.totalBanks()
            * (colorSubarrays_ ? geom_.subarraysPerBank : 1u);
    }

    /**
     * Subarray index of a row. The low row bits select the subarray,
     * so a frame's slot-contiguous rows stripe across subarrays and
     * the OS color arithmetic stays frame-granular (every byte of a
     * frame shares one row, hence one subarray).
     */
    unsigned subarrayOf(std::uint64_t row) const
    {
        return static_cast<unsigned>(row & (geom_.subarraysPerBank - 1));
    }

    /** True iff colors carry the subarray index. */
    bool subarrayColoring() const { return colorSubarrays_; }

    /** Geometry in use. */
    const DramGeometry &geometry() const { return geom_; }

    /** Scheme in use. */
    MapScheme scheme() const { return scheme_; }

    /** True iff the bank-XOR permutation is enabled. */
    bool bankXor() const { return bankXor_; }

    /**
     * True iff every byte of any OS frame maps to a single color, so
     * frame-granular bank partitioning is sound. Holds exactly for
     * PageInterleave without bank XOR.
     */
    bool supportsBankColoring() const;

    /** OS frames per color (PageInterleave only). */
    std::uint64_t framesPerColor() const;

    /**
     * Frame number of the @p index 'th frame of @p color
     * (PageInterleave only; index < framesPerColor()).
     */
    std::uint64_t frameOfColorIndex(unsigned color,
                                    std::uint64_t index) const;

    /** Color of a frame number (PageInterleave only). */
    unsigned colorOfFrame(std::uint64_t frame) const;

  private:
    DramGeometry geom_;
    MapScheme scheme_;
    bool bankXor_;
    bool colorSubarrays_;

    unsigned chanBits_;
    unsigned rankBits_;
    unsigned bankBits_;
    unsigned rowBits_;
    unsigned colBits_;
    unsigned lineBits_;
    unsigned pageLineBits_; ///< log2(pageBytes / lineBytes).
    unsigned slotBits_;     ///< log2(rowBytes / pageBytes).
    unsigned subBits_;      ///< log2(subarraysPerBank).
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_ADDR_MAP_HH
