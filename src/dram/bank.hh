/**
 * @file
 * Per-bank DRAM state: the open row and the earliest cycle at which
 * each command class may next be issued to this bank. The channel is
 * the only writer of these fields.
 */

#ifndef DBPSIM_DRAM_BANK_HH
#define DBPSIM_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"

namespace dbpsim {

/**
 * State of one DRAM bank.
 */
struct BankState
{
    /** True when a row is latched in the row buffer. */
    bool open = false;

    /** The open row (valid iff open). */
    std::uint64_t row = 0;

    /** Earliest cycle an ACTIVATE may issue (tRC, tRP, tRFC...). */
    Cycle nextActivate = 0;

    /** Earliest cycle a PRECHARGE may issue (tRAS, tRTP, write recovery). */
    Cycle nextPrecharge = 0;

    /** Earliest cycle a READ may issue (tRCD after ACT). */
    Cycle nextRead = 0;

    /** Earliest cycle a WRITE may issue (tRCD after ACT). */
    Cycle nextWrite = 0;

    /** End of an in-flight per-bank refresh (REFpb); the next* fields
     *  are pushed past it, this records it for introspection. */
    Cycle refreshUntil = 0;

    /** True while a per-bank refresh occupies this bank at @p now. */
    bool refreshing(Cycle now) const { return now < refreshUntil; }
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_BANK_HH
