#include "dram/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

const char *
dramCmdName(DramCmd cmd)
{
    switch (cmd) {
      case DramCmd::Activate: return "ACT";
      case DramCmd::Precharge: return "PRE";
      case DramCmd::Read: return "RD";
      case DramCmd::Write: return "WR";
      case DramCmd::ReadAp: return "RDA";
      case DramCmd::WriteAp: return "WRA";
      case DramCmd::Refresh: return "REF";
      case DramCmd::RefreshBank: return "REFpb";
    }
    DBP_PANIC("unreachable DramCmd");
}

DramChannel::DramChannel(const DramGeometry &geom, const DramTiming &timing,
                         unsigned channel_id)
    : timing_(timing), id_(channel_id), banksPerRank_(geom.banksPerRank)
{
    std::string err = timing.validate();
    if (!err.empty())
        fatal("invalid DRAM timing: ", err);

    ranks_.resize(geom.ranksPerChannel);
    banks_.resize(geom.ranksPerChannel);
    for (auto &rank_banks : banks_)
        rank_banks.resize(geom.banksPerRank);

    // Stagger initial refresh deadlines so ranks don't refresh in
    // lock-step (matches real controllers and avoids bus storms).
    for (unsigned r = 0; r < ranks_.size(); ++r)
        ranks_[r].refreshDueAt = timing_.tREFI * (r + 1)
            / ranks_.size();
}

const BankState &
DramChannel::bank(unsigned rank, unsigned bank_idx) const
{
    DBP_ASSERT(rank < ranks_.size(), "rank out of range");
    DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");
    return banks_[rank][bank_idx];
}

const RankState &
DramChannel::rank(unsigned rank_idx) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    return ranks_[rank_idx];
}

bool
DramChannel::rowOpen(unsigned rank, unsigned bank_idx,
                     std::uint64_t row) const
{
    const BankState &b = bank(rank, bank_idx);
    return b.open && b.row == row;
}

bool
DramChannel::fawBlocked(const RankState &r, Cycle now) const
{
    if (r.actWindowFill < 4)
        return false;
    // The oldest of the last four ACTs is at actWindowPtr (next to be
    // overwritten). A fifth ACT must wait tFAW after it.
    Cycle oldest = r.actWindow[r.actWindowPtr];
    return now < oldest + timing_.tFAW;
}

bool
DramChannel::dataBusOk(unsigned rank, bool is_write, Cycle now) const
{
    Cycle data_start = now + (is_write ? timing_.tCWL : timing_.tCL);
    Cycle required = dataBusFreeAt_;
    bool switch_penalty = lastDataRank_ >= 0 &&
        (static_cast<unsigned>(lastDataRank_) != rank ||
         lastDataWrite_ != is_write);
    if (switch_penalty)
        required += timing_.tRTRS;
    return data_start >= required;
}

void
DramChannel::occupyDataBus(unsigned rank, bool is_write, Cycle data_start,
                           Cycle data_end)
{
    (void)data_start;
    dataBusFreeAt_ = data_end;
    lastDataRank_ = static_cast<int>(rank);
    lastDataWrite_ = is_write;
}

bool
DramChannel::canIssue(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                      std::uint64_t row, Cycle now) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    const RankState &r = ranks_[rank_idx];

    if (cmd != DramCmd::Refresh)
        DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");

    // A refreshing rank accepts nothing until tRFC elapses. (Bank
    // nextActivate is also pushed out by refresh, but column commands
    // and precharges must be blocked explicitly.)
    if (r.refreshing(now))
        return false;

    switch (cmd) {
      case DramCmd::Activate: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (b.open)
            return false;
        return now >= b.nextActivate && now >= r.nextActivate &&
               !fawBlocked(r, now);
      }
      case DramCmd::Precharge: {
        const BankState &b = banks_[rank_idx][bank_idx];
        return now >= b.nextPrecharge;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (!b.open || b.row != row)
            return false;
        return now >= b.nextRead && now >= r.nextRead &&
               now >= nextColCmd_ && dataBusOk(rank_idx, false, now);
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (!b.open || b.row != row)
            return false;
        return now >= b.nextWrite && now >= nextColCmd_ &&
               dataBusOk(rank_idx, true, now);
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b) {
            const BankState &bs = banks_[rank_idx][b];
            if (bs.open)
                return false;
            // All banks must have completed precharge (tRP folded
            // into nextActivate by the PRE effect).
            if (now < bs.nextActivate)
                return false;
        }
        return true;
      }
      case DramCmd::RefreshBank: {
        // Like an ACT slot: the target bank must be closed and past
        // its precharge recovery; other banks are unaffected.
        const BankState &b = banks_[rank_idx][bank_idx];
        return !b.open && now >= b.nextActivate;
      }
    }
    DBP_PANIC("unreachable DramCmd");
}

Cycle
DramChannel::issue(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                   std::uint64_t row, Cycle now, ThreadId tid)
{
    DBP_ASSERT(canIssue(cmd, rank_idx, bank_idx, row, now),
               "illegal " << dramCmdName(cmd) << " to ch" << id_
               << " rank" << rank_idx << " bank" << bank_idx
               << " row" << row << " at cycle " << now);

    if (observer_) {
        CmdEvent ev;
        ev.channel = id_;
        ev.cmd = cmd;
        ev.rank = rank_idx;
        ev.bank = bank_idx;
        ev.row = row;
        ev.cycle = now;
        ev.tid = tid;
        observer_->onCommand(ev);
    }

    RankState &r = ranks_[rank_idx];

    switch (cmd) {
      case DramCmd::Activate: {
        BankState &b = banks_[rank_idx][bank_idx];
        b.open = true;
        b.row = row;
        b.nextRead = std::max(b.nextRead, now + timing_.tRCD);
        b.nextWrite = std::max(b.nextWrite, now + timing_.tRCD);
        b.nextPrecharge = std::max(b.nextPrecharge, now + timing_.tRAS);
        b.nextActivate = std::max(b.nextActivate, now + timing_.tRC);
        r.nextActivate = std::max(r.nextActivate, now + timing_.tRRD);
        r.actWindow[r.actWindowPtr] = now;
        r.actWindowPtr = (r.actWindowPtr + 1) % 4;
        if (r.actWindowFill < 4)
            ++r.actWindowFill;
        statActs.inc();
        return 0;
      }
      case DramCmd::Precharge: {
        BankState &b = banks_[rank_idx][bank_idx];
        b.open = false;
        b.nextActivate = std::max(b.nextActivate, now + timing_.tRP);
        statPrecharges.inc();
        return 0;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle data_start = now + timing_.tCL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, false, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        b.nextPrecharge = std::max(b.nextPrecharge, now + timing_.tRTP);
        if (cmd == DramCmd::ReadAp) {
            b.open = false;
            b.nextActivate = std::max(
                b.nextActivate, now + timing_.tRTP + timing_.tRP);
            statPrecharges.inc();
        }
        statReads.inc();
        return data_end;
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle data_start = now + timing_.tCWL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, true, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        b.nextPrecharge = std::max(b.nextPrecharge,
                                   data_end + timing_.tWR);
        r.nextRead = std::max(r.nextRead, data_end + timing_.tWTR);
        if (cmd == DramCmd::WriteAp) {
            b.open = false;
            b.nextActivate = std::max(
                b.nextActivate, data_end + timing_.tWR + timing_.tRP);
            statPrecharges.inc();
        }
        statWrites.inc();
        return data_end;
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b) {
            BankState &bs = banks_[rank_idx][b];
            bs.nextActivate = std::max(bs.nextActivate,
                                       now + timing_.tRFC);
        }
        r.refreshDoneAt = now + timing_.tRFC;
        r.refreshDueAt += timing_.tREFI;
        statRefreshes.inc();
        return 0;
      }
      case DramCmd::RefreshBank: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle until = now + timing_.tRFCpb;
        b.refreshUntil = until;
        b.nextActivate = std::max(b.nextActivate, until);
        b.nextPrecharge = std::max(b.nextPrecharge, until);
        b.nextRead = std::max(b.nextRead, until);
        b.nextWrite = std::max(b.nextWrite, until);
        statRefreshesPb.inc();
        return 0;
      }
    }
    DBP_PANIC("unreachable DramCmd");
}

bool
DramChannel::refreshPending(unsigned rank_idx, Cycle now) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    const RankState &r = ranks_[rank_idx];
    return !r.refreshing(now) && now >= r.refreshDueAt;
}

void
DramChannel::blockBank(unsigned rank_idx, unsigned bank_idx, Cycle now,
                       Cycle busy)
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");
    BankState &b = banks_[rank_idx][bank_idx];
    Cycle until = now + busy;
    b.nextActivate = std::max(b.nextActivate, until);
    b.nextPrecharge = std::max(b.nextPrecharge, until);
    b.nextRead = std::max(b.nextRead, until);
    b.nextWrite = std::max(b.nextWrite, until);
}

} // namespace dbpsim
