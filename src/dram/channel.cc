#include "dram/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

const char *
dramCmdName(DramCmd cmd)
{
    switch (cmd) {
      case DramCmd::Activate: return "ACT";
      case DramCmd::Precharge: return "PRE";
      case DramCmd::Read: return "RD";
      case DramCmd::Write: return "WR";
      case DramCmd::ReadAp: return "RDA";
      case DramCmd::WriteAp: return "WRA";
      case DramCmd::SaSel: return "SASEL";
      case DramCmd::Refresh: return "REF";
      case DramCmd::RefreshBank: return "REFpb";
    }
    DBP_PANIC("unreachable DramCmd");
}

DramChannel::DramChannel(const DramGeometry &geom, const DramTiming &timing,
                         unsigned channel_id, SalpMode salp)
    : timing_(timing), id_(channel_id), banksPerRank_(geom.banksPerRank),
      salp_(salp), subarraysPerBank_(geom.subarraysPerBank)
{
    std::string err = timing.validate();
    if (!err.empty())
        fatal("invalid DRAM timing: ", err);

    ranks_.resize(geom.ranksPerChannel);
    banks_.resize(geom.ranksPerChannel);
    for (auto &rank_banks : banks_)
        rank_banks.resize(geom.banksPerRank);

    if (salp_ != SalpMode::None) {
        subBanks_.resize(geom.ranksPerChannel);
        for (auto &rank_subs : subBanks_) {
            rank_subs.resize(geom.banksPerRank);
            for (auto &sb : rank_subs)
                sb.subs.resize(geom.subarraysPerBank);
        }
    }

    // Stagger initial refresh deadlines so ranks don't refresh in
    // lock-step (matches real controllers and avoids bus storms).
    for (unsigned r = 0; r < ranks_.size(); ++r)
        ranks_[r].refreshDueAt = timing_.tREFI * (r + 1)
            / ranks_.size();
}

const BankState &
DramChannel::bank(unsigned rank, unsigned bank_idx) const
{
    DBP_ASSERT(rank < ranks_.size(), "rank out of range");
    DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");
    return banks_[rank][bank_idx];
}

const RankState &
DramChannel::rank(unsigned rank_idx) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    return ranks_[rank_idx];
}

const SubarrayBankState &
DramChannel::subarrays(unsigned rank, unsigned bank_idx) const
{
    DBP_ASSERT(salp_ != SalpMode::None, "no subarray state with salp=none");
    DBP_ASSERT(rank < ranks_.size(), "rank out of range");
    DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");
    return subBanks_[rank][bank_idx];
}

bool
DramChannel::rowOpen(unsigned rank, unsigned bank_idx,
                     std::uint64_t row) const
{
    if (salp_ != SalpMode::None) {
        const SubarrayState &s =
            subBanks_[rank][bank_idx].subs[subarrayOf(row)];
        return s.open && s.row == row;
    }
    const BankState &b = bank(rank, bank_idx);
    return b.open && b.row == row;
}

bool
DramChannel::fawBlocked(const RankState &r, Cycle now) const
{
    if (r.actWindowFill < 4)
        return false;
    // The oldest of the last four ACTs is at actWindowPtr (next to be
    // overwritten). A fifth ACT must wait tFAW after it.
    Cycle oldest = r.actWindow[r.actWindowPtr];
    return now < oldest + timing_.tFAW;
}

bool
DramChannel::dataBusOk(unsigned rank, bool is_write, Cycle now) const
{
    Cycle data_start = now + (is_write ? timing_.tCWL : timing_.tCL);
    Cycle required = dataBusFreeAt_;
    bool switch_penalty = lastDataRank_ >= 0 &&
        (static_cast<unsigned>(lastDataRank_) != rank ||
         lastDataWrite_ != is_write);
    if (switch_penalty)
        required += timing_.tRTRS;
    return data_start >= required;
}

void
DramChannel::occupyDataBus(unsigned rank, bool is_write, Cycle data_start,
                           Cycle data_end)
{
    (void)data_start;
    dataBusFreeAt_ = data_end;
    lastDataRank_ = static_cast<int>(rank);
    lastDataWrite_ = is_write;
}

bool
DramChannel::canIssue(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                      std::uint64_t row, Cycle now) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    const RankState &r = ranks_[rank_idx];

    if (cmd != DramCmd::Refresh)
        DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");

    // A refreshing rank accepts nothing until tRFC elapses. (Bank
    // nextActivate is also pushed out by refresh, but column commands
    // and precharges must be blocked explicitly.)
    if (r.refreshing(now))
        return false;

    if (salp_ != SalpMode::None)
        return canIssueSalp(cmd, rank_idx, bank_idx, row, now);

    switch (cmd) {
      case DramCmd::Activate: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (b.open)
            return false;
        return now >= b.nextActivate && now >= r.nextActivate &&
               !fawBlocked(r, now);
      }
      case DramCmd::Precharge: {
        const BankState &b = banks_[rank_idx][bank_idx];
        return now >= b.nextPrecharge;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (!b.open || b.row != row)
            return false;
        return now >= b.nextRead && now >= r.nextRead &&
               now >= nextColCmd_ && dataBusOk(rank_idx, false, now);
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        const BankState &b = banks_[rank_idx][bank_idx];
        if (!b.open || b.row != row)
            return false;
        return now >= b.nextWrite && now >= nextColCmd_ &&
               dataBusOk(rank_idx, true, now);
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b) {
            const BankState &bs = banks_[rank_idx][b];
            if (bs.open)
                return false;
            // All banks must have completed precharge (tRP folded
            // into nextActivate by the PRE effect).
            if (now < bs.nextActivate)
                return false;
        }
        return true;
      }
      case DramCmd::RefreshBank: {
        // Like an ACT slot: the target bank must be closed and past
        // its precharge recovery; other banks are unaffected.
        const BankState &b = banks_[rank_idx][bank_idx];
        return !b.open && now >= b.nextActivate;
      }
      case DramCmd::SaSel:
        return false; // meaningful only under MASA.
    }
    DBP_PANIC("unreachable DramCmd");
}

bool
DramChannel::canIssueSalp(DramCmd cmd, unsigned rank_idx,
                          unsigned bank_idx, std::uint64_t row,
                          Cycle now) const
{
    const RankState &r = ranks_[rank_idx];

    switch (cmd) {
      case DramCmd::Activate: {
        const SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        const SubarrayState &s = sb.subs[subarrayOf(row)];
        if (s.open)
            return false;
        if (salp_ != SalpMode::Masa) {
            // SALP-1/2 keep the one-open-row-per-bank invariant: the
            // ACT may overlap another subarray's in-flight precharge
            // (its nextActivate is not consulted), but every subarray
            // must at least have been issued its PRE.
            for (const SubarrayState &o : sb.subs)
                if (o.open)
                    return false;
        }
        return now >= s.nextActivate && now >= r.nextActivate &&
               !fawBlocked(r, now);
      }
      case DramCmd::Precharge: {
        const SubarrayState &s =
            subBanks_[rank_idx][bank_idx].subs[subarrayOf(row)];
        return now >= s.nextPrecharge;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        const SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        unsigned si = subarrayOf(row);
        const SubarrayState &s = sb.subs[si];
        if (!s.open || s.row != row)
            return false;
        if (salp_ == SalpMode::Masa &&
            (sb.designated != si || now < sb.designateReadyAt))
            return false; // not linked to the global bitlines.
        return now >= s.nextRead && now >= r.nextRead &&
               now >= nextColCmd_ && dataBusOk(rank_idx, false, now);
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        const SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        unsigned si = subarrayOf(row);
        const SubarrayState &s = sb.subs[si];
        if (!s.open || s.row != row)
            return false;
        if (salp_ == SalpMode::Masa &&
            (sb.designated != si || now < sb.designateReadyAt))
            return false;
        return now >= s.nextWrite && now >= nextColCmd_ &&
               dataBusOk(rank_idx, true, now);
      }
      case DramCmd::SaSel: {
        if (salp_ != SalpMode::Masa)
            return false;
        const SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        const SubarrayState &s = sb.subs[subarrayOf(row)];
        if (!s.open || s.row != row)
            return false;
        return now >= sb.designateReadyAt; // relinks serialize.
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b)
            for (const SubarrayState &s : subBanks_[rank_idx][b].subs)
                if (s.open || now < s.nextActivate)
                    return false;
        return true;
      }
      case DramCmd::RefreshBank: {
        for (const SubarrayState &s : subBanks_[rank_idx][bank_idx].subs)
            if (s.open || now < s.nextActivate)
                return false;
        return true;
      }
    }
    DBP_PANIC("unreachable DramCmd");
}

Cycle
DramChannel::issue(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                   std::uint64_t row, Cycle now, ThreadId tid)
{
    DBP_ASSERT(canIssue(cmd, rank_idx, bank_idx, row, now),
               "illegal " << dramCmdName(cmd) << " to ch" << id_
               << " rank" << rank_idx << " bank" << bank_idx
               << " row" << row << " at cycle " << now);

    if (observer_) {
        CmdEvent ev;
        ev.channel = id_;
        ev.cmd = cmd;
        ev.rank = rank_idx;
        ev.bank = bank_idx;
        ev.row = row;
        ev.cycle = now;
        ev.tid = tid;
        observer_->onCommand(ev);
    }

    if (salp_ != SalpMode::None)
        return issueSalp(cmd, rank_idx, bank_idx, row, now);

    RankState &r = ranks_[rank_idx];

    switch (cmd) {
      case DramCmd::Activate: {
        BankState &b = banks_[rank_idx][bank_idx];
        b.open = true;
        b.row = row;
        b.nextRead = std::max(b.nextRead, now + timing_.tRCD);
        b.nextWrite = std::max(b.nextWrite, now + timing_.tRCD);
        b.nextPrecharge = std::max(b.nextPrecharge, now + timing_.tRAS);
        b.nextActivate = std::max(b.nextActivate, now + timing_.tRC);
        r.nextActivate = std::max(r.nextActivate, now + timing_.tRRD);
        r.actWindow[r.actWindowPtr] = now;
        r.actWindowPtr = (r.actWindowPtr + 1) % 4;
        if (r.actWindowFill < 4)
            ++r.actWindowFill;
        statActs.inc();
        return 0;
      }
      case DramCmd::Precharge: {
        BankState &b = banks_[rank_idx][bank_idx];
        b.open = false;
        b.nextActivate = std::max(b.nextActivate, now + timing_.tRP);
        statPrecharges.inc();
        return 0;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle data_start = now + timing_.tCL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, false, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        b.nextPrecharge = std::max(b.nextPrecharge, now + timing_.tRTP);
        if (cmd == DramCmd::ReadAp) {
            b.open = false;
            b.nextActivate = std::max(
                b.nextActivate, now + timing_.tRTP + timing_.tRP);
            statPrecharges.inc();
        }
        statReads.inc();
        return data_end;
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle data_start = now + timing_.tCWL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, true, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        b.nextPrecharge = std::max(b.nextPrecharge,
                                   data_end + timing_.tWR);
        r.nextRead = std::max(r.nextRead, data_end + timing_.tWTR);
        if (cmd == DramCmd::WriteAp) {
            b.open = false;
            b.nextActivate = std::max(
                b.nextActivate, data_end + timing_.tWR + timing_.tRP);
            statPrecharges.inc();
        }
        statWrites.inc();
        return data_end;
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b) {
            BankState &bs = banks_[rank_idx][b];
            bs.nextActivate = std::max(bs.nextActivate,
                                       now + timing_.tRFC);
        }
        r.refreshDoneAt = now + timing_.tRFC;
        r.refreshDueAt += timing_.tREFI;
        statRefreshes.inc();
        return 0;
      }
      case DramCmd::RefreshBank: {
        BankState &b = banks_[rank_idx][bank_idx];
        Cycle until = now + timing_.tRFCpb;
        b.refreshUntil = until;
        b.nextActivate = std::max(b.nextActivate, until);
        b.nextPrecharge = std::max(b.nextPrecharge, until);
        b.nextRead = std::max(b.nextRead, until);
        b.nextWrite = std::max(b.nextWrite, until);
        statRefreshesPb.inc();
        return 0;
      }
      case DramCmd::SaSel:
        DBP_PANIC("SASEL issued with salp=none");
    }
    DBP_PANIC("unreachable DramCmd");
}

Cycle
DramChannel::issueSalp(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                       std::uint64_t row, Cycle now)
{
    RankState &r = ranks_[rank_idx];

    switch (cmd) {
      case DramCmd::Activate: {
        SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        unsigned si = subarrayOf(row);
        SubarrayState &s = sb.subs[si];
        s.open = true;
        s.row = row;
        s.nextRead = std::max(s.nextRead, now + timing_.tRCD);
        s.nextWrite = std::max(s.nextWrite, now + timing_.tRCD);
        s.nextPrecharge = std::max(s.nextPrecharge, now + timing_.tRAS);
        s.nextActivate = std::max(s.nextActivate, now + timing_.tRC);
        // The freshest activation drives the global bitlines; under
        // MASA a later SA_SEL can hand them back to an older row.
        sb.designated = si;
        sb.designateReadyAt = now;
        r.nextActivate = std::max(r.nextActivate, now + timing_.tRRD);
        r.actWindow[r.actWindowPtr] = now;
        r.actWindowPtr = (r.actWindowPtr + 1) % 4;
        if (r.actWindowFill < 4)
            ++r.actWindowFill;
        statActs.inc();
        syncMirror(rank_idx, bank_idx);
        return 0;
      }
      case DramCmd::Precharge: {
        SubarrayState &s =
            subBanks_[rank_idx][bank_idx].subs[subarrayOf(row)];
        s.open = false;
        // SALP-2/MASA let the PRE issue during write recovery; its
        // internal completion (and hence the next ACT) still waits.
        Cycle done = now;
        if (salp_ != SalpMode::Salp1)
            done = std::max(done, s.wrRecoveryAt);
        s.nextActivate = std::max(s.nextActivate, done + timing_.tRP);
        statPrecharges.inc();
        syncMirror(rank_idx, bank_idx);
        return 0;
      }
      case DramCmd::Read:
      case DramCmd::ReadAp: {
        SubarrayState &s =
            subBanks_[rank_idx][bank_idx].subs[subarrayOf(row)];
        Cycle data_start = now + timing_.tCL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, false, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        s.nextPrecharge = std::max(s.nextPrecharge, now + timing_.tRTP);
        if (cmd == DramCmd::ReadAp) {
            s.open = false;
            s.nextActivate = std::max(
                s.nextActivate, now + timing_.tRTP + timing_.tRP);
            statPrecharges.inc();
        }
        statReads.inc();
        syncMirror(rank_idx, bank_idx);
        return data_end;
      }
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        SubarrayState &s =
            subBanks_[rank_idx][bank_idx].subs[subarrayOf(row)];
        Cycle data_start = now + timing_.tCWL;
        Cycle data_end = data_start + timing_.tBURST;
        occupyDataBus(rank_idx, true, data_start, data_end);
        nextColCmd_ = now + timing_.tCCD;
        if (salp_ == SalpMode::Salp1) {
            // Without the second row-address latch the PRE itself must
            // wait out the write recovery, exactly as in the seed.
            s.nextPrecharge = std::max(s.nextPrecharge,
                                       data_end + timing_.tWR);
        } else {
            s.nextPrecharge = std::max(s.nextPrecharge, data_end);
            s.wrRecoveryAt = std::max(s.wrRecoveryAt,
                                      data_end + timing_.tWR);
        }
        r.nextRead = std::max(r.nextRead, data_end + timing_.tWTR);
        if (cmd == DramCmd::WriteAp) {
            s.open = false;
            s.nextActivate = std::max(
                s.nextActivate, data_end + timing_.tWR + timing_.tRP);
            statPrecharges.inc();
        }
        statWrites.inc();
        syncMirror(rank_idx, bank_idx);
        return data_end;
      }
      case DramCmd::SaSel: {
        SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];
        sb.designated = subarrayOf(row);
        sb.designateReadyAt = now + timing_.tSA;
        statSaSels.inc();
        syncMirror(rank_idx, bank_idx);
        return 0;
      }
      case DramCmd::Refresh: {
        for (unsigned b = 0; b < banksPerRank_; ++b) {
            for (SubarrayState &s : subBanks_[rank_idx][b].subs)
                s.nextActivate = std::max(s.nextActivate,
                                          now + timing_.tRFC);
            syncMirror(rank_idx, b);
        }
        r.refreshDoneAt = now + timing_.tRFC;
        r.refreshDueAt += timing_.tREFI;
        statRefreshes.inc();
        return 0;
      }
      case DramCmd::RefreshBank: {
        Cycle until = now + timing_.tRFCpb;
        banks_[rank_idx][bank_idx].refreshUntil = until;
        for (SubarrayState &s : subBanks_[rank_idx][bank_idx].subs) {
            s.nextActivate = std::max(s.nextActivate, until);
            s.nextPrecharge = std::max(s.nextPrecharge, until);
            s.nextRead = std::max(s.nextRead, until);
            s.nextWrite = std::max(s.nextWrite, until);
        }
        statRefreshesPb.inc();
        syncMirror(rank_idx, bank_idx);
        return 0;
      }
    }
    DBP_PANIC("unreachable DramCmd");
}

void
DramChannel::syncMirror(unsigned rank_idx, unsigned bank_idx)
{
    BankState &b = banks_[rank_idx][bank_idx];
    const SubarrayBankState &sb = subBanks_[rank_idx][bank_idx];

    Cycle next_act = 0;
    for (const SubarrayState &s : sb.subs)
        next_act = std::max(next_act, s.nextActivate);
    b.nextActivate = next_act;

    const SubarrayState *vis = nullptr;
    if (sb.subs[sb.designated].open) {
        vis = &sb.subs[sb.designated];
    } else {
        for (const SubarrayState &s : sb.subs) {
            if (s.open) {
                vis = &s;
                break;
            }
        }
    }
    b.open = vis != nullptr;
    if (vis) {
        b.row = vis->row;
        b.nextPrecharge = vis->nextPrecharge;
        b.nextRead = vis->nextRead;
        b.nextWrite = vis->nextWrite;
    }
}

bool
DramChannel::refreshPending(unsigned rank_idx, Cycle now) const
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    const RankState &r = ranks_[rank_idx];
    return !r.refreshing(now) && now >= r.refreshDueAt;
}

void
DramChannel::blockBank(unsigned rank_idx, unsigned bank_idx, Cycle now,
                       Cycle busy)
{
    DBP_ASSERT(rank_idx < ranks_.size(), "rank out of range");
    DBP_ASSERT(bank_idx < banksPerRank_, "bank out of range");
    Cycle until = now + busy;
    if (salp_ != SalpMode::None) {
        for (SubarrayState &s : subBanks_[rank_idx][bank_idx].subs) {
            s.nextActivate = std::max(s.nextActivate, until);
            s.nextPrecharge = std::max(s.nextPrecharge, until);
            s.nextRead = std::max(s.nextRead, until);
            s.nextWrite = std::max(s.nextWrite, until);
        }
        syncMirror(rank_idx, bank_idx);
        return;
    }
    BankState &b = banks_[rank_idx][bank_idx];
    b.nextActivate = std::max(b.nextActivate, until);
    b.nextPrecharge = std::max(b.nextPrecharge, until);
    b.nextRead = std::max(b.nextRead, until);
    b.nextWrite = std::max(b.nextWrite, until);
}

} // namespace dbpsim
