/**
 * @file
 * Cycle-level model of one DRAM channel: ranks of banks, the shared
 * command and data buses, and the full DDR3 timing rule set.
 *
 * The memory controller drives this model: each memory-bus cycle it
 * may ask whether a command is legal (canIssue) and then issue it.
 * issue() updates all affected earliest-next-command times and, for
 * column commands, returns the cycle at which the data burst finishes
 * (when read data is available to the requester).
 */

#ifndef DBPSIM_DRAM_CHANNEL_HH
#define DBPSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "check/observer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/addr_map.hh"
#include "dram/bank.hh"
#include "dram/rank.hh"
#include "dram/subarray.hh"
#include "dram/timing.hh"

namespace dbpsim {

/** DRAM command types the controller can issue. */
enum class DramCmd
{
    Activate,
    Precharge,
    Read,
    Write,
    ReadAp,  ///< READ with auto-precharge (closed-page policy).
    WriteAp, ///< WRITE with auto-precharge.
    SaSel,   ///< MASA: relink the designated subarray latch (tSA).
    Refresh, ///< all-bank auto-refresh (rank granular).
    RefreshBank, ///< per-bank refresh (only the target bank blocked).
};

/** Printable command name. */
const char *dramCmdName(DramCmd cmd);

/**
 * One DRAM channel.
 */
class DramChannel
{
  public:
    /**
     * @param geom Machine geometry (rank/bank counts are read from it).
     * @param timing Timing rule set in bus cycles.
     * @param channel_id Identifier for diagnostics.
     * @param salp Subarray-level parallelism mode; None keeps the
     *        monolithic per-bank row buffer (seed behaviour).
     */
    DramChannel(const DramGeometry &geom, const DramTiming &timing,
                unsigned channel_id, SalpMode salp = SalpMode::None);

    /**
     * Is @p cmd legal at cycle @p now?
     *
     * For Read/Write/ReadAp/WriteAp, @p row must equal the open row.
     * For Refresh, @p bank is ignored. Commands to a refreshing rank
     * are illegal until the refresh completes. With SALP enabled,
     * @p row also selects the target subarray (Precharge and SaSel
     * included).
     */
    bool canIssue(DramCmd cmd, unsigned rank, unsigned bank,
                  std::uint64_t row, Cycle now) const;

    /**
     * Issue @p cmd at cycle @p now; must be legal (checked).
     *
     * @param tid Requesting thread (forwarded to the command
     * observer); kInvalidThread for controller-internal commands
     * (refresh management, idle row closes).
     *
     * @return For column commands, the cycle the data burst completes
     * (read data available / write retired); 0 for other commands.
     */
    Cycle issue(DramCmd cmd, unsigned rank, unsigned bank,
                std::uint64_t row, Cycle now,
                ThreadId tid = kInvalidThread);

    /**
     * Attach a command observer (protocol checker); every issued
     * command is reported to it. Pass nullptr to detach. Not owned.
     */
    void setObserver(CommandObserver *observer) { observer_ = observer; }

    /** True once rank @p rank's refresh deadline has passed. */
    bool refreshPending(unsigned rank, Cycle now) const;

    /** Read-only bank state (for schedulers and tests). */
    const BankState &bank(unsigned rank, unsigned bank_idx) const;

    /** Read-only rank state (for tests). */
    const RankState &rank(unsigned rank_idx) const;

    /** True iff row @p row is open in the given bank. */
    bool rowOpen(unsigned rank, unsigned bank_idx, std::uint64_t row) const;

    /** Channel id. */
    unsigned id() const { return id_; }

    /** Ranks in this channel. */
    unsigned numRanks() const { return static_cast<unsigned>(ranks_.size()); }

    /** Banks per rank. */
    unsigned numBanks() const { return banksPerRank_; }

    /** Timing in use. */
    const DramTiming &timing() const { return timing_; }

    /** Subarray-level parallelism mode. */
    SalpMode salpMode() const { return salp_; }

    /** Subarray index of a row (valid whatever the mode). */
    unsigned subarrayOf(std::uint64_t row) const
    {
        return static_cast<unsigned>(row & (subarraysPerBank_ - 1));
    }

    /** Read-only subarray state of one bank (SALP modes only). */
    const SubarrayBankState &subarrays(unsigned rank,
                                       unsigned bank_idx) const;

    /**
     * Artificially occupy a bank for @p busy cycles starting at @p now
     * (used by the page-migration cost model). Blocks ACT/PRE/column
     * commands to that bank until now + busy.
     */
    void blockBank(unsigned rank, unsigned bank_idx, Cycle now, Cycle busy);

    /** @name Command counters (for the energy model and tests). */
    /// @{
    StatScalar statActs;
    StatScalar statPrecharges;
    StatScalar statReads;
    StatScalar statWrites;
    StatScalar statRefreshes;
    StatScalar statRefreshesPb; ///< per-bank REFpb commands.
    StatScalar statSaSels;      ///< MASA SA_SEL relink commands.
    /// @}

  private:
    /** Data-bus availability for a column command issued at @p now. */
    bool dataBusOk(unsigned rank, bool is_write, Cycle now) const;

    /** canIssue() body for the SALP modes (subarray-granular rules). */
    bool canIssueSalp(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                      std::uint64_t row, Cycle now) const;

    /** issue() body for the SALP modes. */
    Cycle issueSalp(DramCmd cmd, unsigned rank_idx, unsigned bank_idx,
                    std::uint64_t row, Cycle now);

    /**
     * Re-derive the legacy BankState view of one bank from its
     * subarrays so mode-oblivious consumers (refresh engine,
     * schedulers) see a coherent aggregate: open iff any subarray is
     * open, the visible row is the designated (else lowest-indexed)
     * open subarray's, and nextActivate is the max over subarrays
     * (conservative, which is what refresh eligibility needs).
     */
    void syncMirror(unsigned rank_idx, unsigned bank_idx);

    /** Record a data burst occupying the bus. */
    void occupyDataBus(unsigned rank, bool is_write, Cycle data_start,
                       Cycle data_end);

    /** True iff a 5th ACT in the tFAW window would be premature. */
    bool fawBlocked(const RankState &r, Cycle now) const;

    DramTiming timing_;
    unsigned id_;
    unsigned banksPerRank_;
    SalpMode salp_;
    unsigned subarraysPerBank_;

    std::vector<RankState> ranks_;
    std::vector<std::vector<BankState>> banks_; ///< [rank][bank].
    /** [rank][bank] subarray state; empty when salp_ == None. */
    std::vector<std::vector<SubarrayBankState>> subBanks_;

    CommandObserver *observer_ = nullptr; ///< protocol checker hook.

    Cycle nextColCmd_ = 0;     ///< tCCD between column commands.
    Cycle dataBusFreeAt_ = 0;  ///< end of last data burst.
    int lastDataRank_ = -1;    ///< rank of last data burst.
    bool lastDataWrite_ = false; ///< direction of last data burst.
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_CHANNEL_HH
