#include "dram/energy.hh"

namespace dbpsim {

DramEnergyBreakdown
dramEnergy(const DramChannel &channel, Cycle cycles,
           const DramEnergyParams &params)
{
    DramEnergyBreakdown out;
    // Precharge energy is folded into the ACT+PRE pair constant; count
    // pairs by activates (every activate is eventually precharged).
    auto count = [](const StatScalar &s) {
        return static_cast<double>(s.value());
    };
    out.actPreNj = count(channel.statActs) * params.actPrePj * 1e-3;
    out.readNj = count(channel.statReads) * params.readPj * 1e-3;
    out.writeNj = count(channel.statWrites) * params.writePj * 1e-3;
    out.refreshNj =
        count(channel.statRefreshes) * params.refreshPj * 1e-3 +
        count(channel.statRefreshesPb) * params.refreshPerBankPj * 1e-3;

    double seconds = static_cast<double>(cycles) *
        static_cast<double>(channel.timing().tckPs) * 1e-12;
    out.backgroundNj = params.backgroundMwPerRank * 1e-3 *
        channel.numRanks() * seconds * 1e9;
    return out;
}

} // namespace dbpsim
