/**
 * @file
 * A coarse DRAM energy model: per-command energies plus background
 * power, in the style of the Micron DDR3 power calculator. Used for
 * reporting only; it does not feed back into timing.
 */

#ifndef DBPSIM_DRAM_ENERGY_HH
#define DBPSIM_DRAM_ENERGY_HH

#include <cstdint>

#include "dram/channel.hh"

namespace dbpsim {

/**
 * Per-operation energy constants (picojoules) for one DDR3 device
 * group (a rank's worth of x8 devices behind one channel).
 */
struct DramEnergyParams
{
    double actPrePj = 3200.0;    ///< one ACT+PRE pair.
    double readPj = 2100.0;      ///< one READ burst.
    double writePj = 2200.0;     ///< one WRITE burst.
    double refreshPj = 25000.0;  ///< one all-bank refresh.
    /** One per-bank refresh (REFpb). Slightly above refreshPj / 8:
     *  splitting a rank refresh into eight bank refreshes repeats the
     *  command/peripheral overhead per bank. */
    double refreshPerBankPj = 3400.0;
    double backgroundMwPerRank = 75.0; ///< standby power per rank.
};

/**
 * Energy summary for one channel over an interval.
 */
struct DramEnergyBreakdown
{
    double actPreNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    /** Total energy in nanojoules. */
    double totalNj() const
    {
        return actPreNj + readNj + writeNj + refreshNj + backgroundNj;
    }
};

/**
 * Compute the energy consumed by @p channel over @p cycles bus cycles.
 */
DramEnergyBreakdown dramEnergy(const DramChannel &channel, Cycle cycles,
                               const DramEnergyParams &params = {});

} // namespace dbpsim

#endif // DBPSIM_DRAM_ENERGY_HH
