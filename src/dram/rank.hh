/**
 * @file
 * Per-rank DRAM state: the tFAW activate window, rank-level command
 * separations, and refresh bookkeeping.
 */

#ifndef DBPSIM_DRAM_RANK_HH
#define DBPSIM_DRAM_RANK_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace dbpsim {

/**
 * State of one DRAM rank.
 */
struct RankState
{
    /** Issue times of the four most recent ACTIVATEs (ring buffer). */
    std::array<Cycle, 4> actWindow{0, 0, 0, 0};

    /** Next slot to overwrite in actWindow. */
    unsigned actWindowPtr = 0;

    /** Whether each actWindow slot holds a real ACT time yet. */
    unsigned actWindowFill = 0;

    /** Earliest cycle the next ACTIVATE may issue (tRRD). */
    Cycle nextActivate = 0;

    /** Earliest cycle the next READ may issue (tWTR after writes). */
    Cycle nextRead = 0;

    /** When the next auto-refresh becomes due. */
    Cycle refreshDueAt = 0;

    /** End of an in-flight refresh (banks blocked until then). */
    Cycle refreshDoneAt = 0;

    /** True while a REFRESH is in flight at @p now. */
    bool refreshing(Cycle now) const { return now < refreshDoneAt; }
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_RANK_HH
