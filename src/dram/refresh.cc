#include "dram/refresh.hh"

#include "common/log.hh"

namespace dbpsim {

const char *
refreshModeName(RefreshMode mode)
{
    switch (mode) {
      case RefreshMode::None: return "none";
      case RefreshMode::AllBank: return "allbank";
      case RefreshMode::PerBank: return "perbank";
    }
    DBP_PANIC("unreachable RefreshMode");
}

RefreshMode
refreshModeByName(const std::string &name)
{
    if (name == "none")
        return RefreshMode::None;
    if (name == "allbank" || name == "all-bank")
        return RefreshMode::AllBank;
    if (name == "perbank" || name == "per-bank")
        return RefreshMode::PerBank;
    fatal("unknown refresh mode '", name,
          "' (expected none|allbank|perbank)");
}

RefreshEngine::RefreshEngine(DramChannel &channel,
                             const RefreshDemandView *demand,
                             RefreshParams params)
    : channel_(channel), demand_(demand), params_(params),
      trefi_(channel.timing().tREFI),
      pullInWindow_(static_cast<Cycle>(params.postponeMax) *
                    channel.timing().tREFI)
{
    DBP_ASSERT(params_.postponeMax >= 1,
               "refresh postpone window must be >= 1");
    const unsigned ranks = channel_.numRanks();
    const unsigned banks = channel_.numBanks();
    bankDueAt_.resize(ranks);
    rankLastRefreshAt_.assign(ranks, 0);
    bankLastRefreshAt_.resize(ranks);
    blocked_.resize(ranks);
    boost_.resize(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
        bankDueAt_[r].resize(banks);
        bankLastRefreshAt_[r].assign(banks, 0);
        blocked_[r].assign(banks, 0);
        boost_[r].assign(banks, 0);
        // Stagger the REFpb slots evenly across the whole channel so
        // per-bank refreshes spread over tREFI instead of bursting
        // (the per-bank analogue of the channel's rank stagger).
        for (unsigned b = 0; b < banks; ++b)
            bankDueAt_[r][b] = trefi_ *
                (static_cast<Cycle>(r) * banks + b + 1) /
                (static_cast<Cycle>(ranks) * banks);
    }
}

bool
RefreshEngine::blocks(unsigned rank, unsigned bank) const
{
    return blocked_.at(rank).at(bank) != 0;
}

bool
RefreshEngine::drainBoost(unsigned rank, unsigned bank) const
{
    return boost_.at(rank).at(bank) != 0;
}

std::uint64_t
RefreshEngine::debt(unsigned rank, Cycle now) const
{
    const RankState &rs = channel_.rank(rank);
    if (now < rs.refreshDueAt)
        return 0;
    return (now - rs.refreshDueAt) / trefi_ + 1;
}

std::uint64_t
RefreshEngine::bankDebt(unsigned rank, unsigned bank, Cycle now) const
{
    Cycle due = bankDueAt_.at(rank).at(bank);
    if (now < due)
        return 0;
    return (now - due) / trefi_ + 1;
}

Cycle
RefreshEngine::bankDueAt(unsigned rank, unsigned bank) const
{
    return bankDueAt_.at(rank).at(bank);
}

Cycle
RefreshEngine::lastRefreshAt(unsigned rank) const
{
    return rankLastRefreshAt_.at(rank);
}

Cycle
RefreshEngine::lastRefreshAt(unsigned rank, unsigned bank) const
{
    return bankLastRefreshAt_.at(rank).at(bank);
}

bool
RefreshEngine::rankIdle(unsigned rank) const
{
    // Without a demand view the engine must assume demand everywhere:
    // no pull-in, postpone until forced.
    return demand_ && !demand_->hasRankDemand(rank);
}

bool
RefreshEngine::bankIdle(unsigned rank, unsigned bank) const
{
    return demand_ && !demand_->hasBankDemand(rank, bank);
}

bool
RefreshEngine::prechargeOne(unsigned rank, Cycle now)
{
    for (unsigned b = 0; b < channel_.numBanks(); ++b) {
        const BankState &bs = channel_.bank(rank, b);
        // PRE addressed to the open row so SALP modes close the right
        // subarray (the row argument is ignored with salp=none).
        if (bs.open &&
            channel_.canIssue(DramCmd::Precharge, rank, b, bs.row,
                              now)) {
            channel_.issue(DramCmd::Precharge, rank, b, bs.row, now);
            return true;
        }
    }
    return false;
}

bool
RefreshEngine::tick(Cycle now)
{
    if (trefi_ == 0)
        return false; // refresh disabled at the timing level.
    switch (params_.mode) {
      case RefreshMode::None:
        return false;
      case RefreshMode::AllBank:
        return params_.aware ? tickAllBankAware(now) : tickAllBank(now);
      case RefreshMode::PerBank:
        return tickPerBank(now);
    }
    DBP_PANIC("unreachable RefreshMode");
}

bool
RefreshEngine::tickAllBank(Cycle now)
{
    // The reference all-bank sequence: once a rank's deadline passes,
    // hold its requests back, close open banks, and issue REF as soon
    // as the rank is quiet. One command per cycle across all ranks.
    bool issued = false;
    for (unsigned r = 0; r < channel_.numRanks(); ++r) {
        blocked_[r].assign(blocked_[r].size(), 0);
        if (!channel_.refreshPending(r, now))
            continue;
        blocked_[r].assign(blocked_[r].size(), 1);
        if (issued)
            continue; // command bus already used this cycle.
        if (channel_.canIssue(DramCmd::Refresh, r, 0, 0, now)) {
            channel_.issue(DramCmd::Refresh, r, 0, 0, now);
            rankLastRefreshAt_[r] = now;
            blocked_[r].assign(blocked_[r].size(), 0);
            issued = true;
            continue;
        }
        if (prechargeOne(r, now))
            issued = true;
    }
    return issued;
}

bool
RefreshEngine::tickAllBankAware(Cycle now)
{
    bool issued = false;
    for (unsigned r = 0; r < channel_.numRanks(); ++r) {
        blocked_[r].assign(blocked_[r].size(), 0);
        boost_[r].assign(boost_[r].size(), 0);
        const RankState &rs = channel_.rank(r);
        if (rs.refreshing(now))
            continue;
        const std::uint64_t d = debt(r, now);
        // Two independent deadlines force a refresh: the schedule debt
        // exhausting the postpone window, and the device bound on the
        // issue-to-issue gap (after a pull-in burst the schedule is
        // ahead, but the gap clock keeps running).
        const Cycle gap = now - rankLastRefreshAt_[r];

        if (d >= params_.postponeMax || gap >= pullInWindow_) {
            // Postpone window exhausted: force, as the non-aware
            // engine would from the start.
            blocked_[r].assign(blocked_[r].size(), 1);
            if (issued)
                continue;
            if (channel_.canIssue(DramCmd::Refresh, r, 0, 0, now)) {
                channel_.issue(DramCmd::Refresh, r, 0, 0, now);
                rankLastRefreshAt_[r] = now;
                blocked_[r].assign(blocked_[r].size(), 0);
                issued = true;
                continue;
            }
            if (prechargeOne(r, now))
                issued = true;
            continue;
        }
        if (d + 1 >= params_.postponeMax || gap + trefi_ >= pullInWindow_)
            boost_[r].assign(boost_[r].size(), 1);
        if (issued)
            continue;
        // Pull refreshes into idle periods; catch up on owed ones.
        if (!rankIdle(r))
            continue;
        const bool owed = d > 0;
        if (!owed && rs.refreshDueAt - now >= pullInWindow_)
            continue; // 8-deep pull-in credit already banked.
        if (channel_.canIssue(DramCmd::Refresh, r, 0, 0, now)) {
            channel_.issue(DramCmd::Refresh, r, 0, 0, now);
            rankLastRefreshAt_[r] = now;
            issued = true;
        } else if (owed && prechargeOne(r, now)) {
            issued = true;
        }
    }
    return issued;
}

bool
RefreshEngine::tickPerBank(Cycle now)
{
    const unsigned banks = channel_.numBanks();
    bool issued = false;
    for (unsigned r = 0; r < channel_.numRanks(); ++r) {
        blocked_[r].assign(banks, 0);
        boost_[r].assign(banks, 0);
        const RankState &rs = channel_.rank(r);
        if (rs.refreshing(now))
            continue; // defensive: an all-bank REF is in flight.

        // Forced pass: the bank whose force deadline is furthest in
        // the past must refresh now. Non-aware engines force as soon
        // as the nominal deadline passes (strict round-robin by
        // stagger); aware engines once the postpone debt is exhausted
        // — or once the issue-to-issue gap nears the device bound,
        // whichever comes first (the gap clock matters after a
        // pull-in burst banked schedule credit).
        const std::uint64_t force_at = params_.aware
            ? static_cast<std::uint64_t>(params_.postponeMax) : 1;
        auto forceDeadline = [&](unsigned b) {
            Cycle by_debt = bankDueAt_[r][b] + (force_at - 1) * trefi_;
            if (!params_.aware)
                return by_debt;
            Cycle by_gap = bankLastRefreshAt_[r][b] + pullInWindow_;
            return by_debt < by_gap ? by_debt : by_gap;
        };
        unsigned forced = banks;
        for (unsigned b = 0; b < banks; ++b) {
            if (now < forceDeadline(b))
                continue;
            if (forced == banks ||
                forceDeadline(b) < forceDeadline(forced))
                forced = b;
        }
        if (params_.aware) {
            // One tREFI from the forced bound: drain with priority.
            for (unsigned b = 0; b < banks; ++b)
                if (now + trefi_ >= forceDeadline(b))
                    boost_[r][b] = 1;
        }
        if (forced != banks) {
            unsigned b = forced;
            blocked_[r][b] = 1;
            if (issued)
                continue;
            const BankState &bs = channel_.bank(r, b);
            if (bs.open) {
                if (channel_.canIssue(DramCmd::Precharge, r, b, bs.row,
                                      now)) {
                    channel_.issue(DramCmd::Precharge, r, b, bs.row,
                                   now);
                    issued = true;
                }
            } else if (channel_.canIssue(DramCmd::RefreshBank, r, b, 0,
                                         now)) {
                channel_.issue(DramCmd::RefreshBank, r, b, 0, now);
                bankDueAt_[r][b] += trefi_;
                bankLastRefreshAt_[r][b] = now;
                blocked_[r][b] = 0;
                issued = true;
            }
            continue;
        }
        if (!params_.aware || issued)
            continue;

        // Relaxed pass (aware only): refresh an idle bank — owed
        // first, then pull-ins within the credit window — reordering
        // away from banks with queued demand.
        unsigned pick = banks;
        unsigned open_pick = banks;
        for (unsigned b = 0; b < banks; ++b) {
            Cycle due = bankDueAt_[r][b];
            const bool owed = now >= due;
            if (!owed && due - now >= pullInWindow_)
                continue;
            if (!bankIdle(r, b))
                continue;
            const BankState &bs = channel_.bank(r, b);
            if (bs.refreshing(now))
                continue;
            if (!bs.open &&
                channel_.canIssue(DramCmd::RefreshBank, r, b, 0, now)) {
                if (pick == banks || due < bankDueAt_[r][pick])
                    pick = b;
            } else if (bs.open && owed &&
                       channel_.canIssue(DramCmd::Precharge, r, b,
                                         bs.row, now)) {
                if (open_pick == banks ||
                    due < bankDueAt_[r][open_pick])
                    open_pick = b;
            }
        }
        if (pick != banks) {
            channel_.issue(DramCmd::RefreshBank, r, pick, 0, now);
            bankDueAt_[r][pick] += trefi_;
            bankLastRefreshAt_[r][pick] = now;
            issued = true;
        } else if (open_pick != banks) {
            channel_.issue(DramCmd::Precharge, r, open_pick,
                           channel_.bank(r, open_pick).row, now);
            issued = true;
        }
    }
    return issued;
}

} // namespace dbpsim
