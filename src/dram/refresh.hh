/**
 * @file
 * Per-rank DRAM refresh engine.
 *
 * Owns the refresh *policy* for one channel; the DramChannel owns the
 * timing *mechanics* (what REF/REFpb do to bank and rank state). Three
 * modes:
 *
 *  - AllBank: DDR3 auto-refresh. When a rank's deadline passes, the
 *    rank is drained (its requests are held back, open banks are
 *    precharged) and an all-bank REF blocks the whole rank for tRFC.
 *    The non-aware variant replicates the controller behaviour the
 *    campaigns were calibrated against, decision for decision.
 *
 *  - PerBank: round-robin REFpb, one bank every tREFI / banksPerRank.
 *    Only the refreshing bank is blocked (for tRFCpb < tRFC); the
 *    other banks of the rank keep serving requests. With bank
 *    partitioning this means a thread only ever stalls on refreshes
 *    of its *own* banks — the refresh-access parallelism the DARP
 *    papers exploit.
 *
 *  - None: refresh disabled (idealized DRAM; the pre-refresh model).
 *
 * The refresh-aware option (DARP-style) changes *when* refreshes
 * issue, in both modes: refreshes are pulled into idle periods (up to
 * the JEDEC 8-deep pull-in credit), postponed while demand is pending
 * (up to the 8-deep postpone debt), and — per-bank mode — rotated
 * out of order, away from banks with queued requests. When the debt
 * reaches the postpone bound — or when the gap since the last issued
 * refresh approaches the (postponeMax + 1) * tREFI device bound, which
 * matters after a pull-in burst has banked credit — the refresh turns
 * urgent and is forced exactly like the non-aware variant, so the
 * JEDEC window is never exceeded.
 */

#ifndef DBPSIM_DRAM_REFRESH_HH
#define DBPSIM_DRAM_REFRESH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/channel.hh"

namespace dbpsim {

/** Refresh policy selector (config key "refresh"). */
enum class RefreshMode
{
    None,    ///< no refresh at all (idealized DRAM).
    AllBank, ///< DDR3 all-bank REF, rank blocked for tRFC.
    PerBank, ///< round-robin REFpb, one bank blocked for tRFCpb.
};

/** Stable config-facing name ("none" | "allbank" | "perbank"). */
const char *refreshModeName(RefreshMode mode);

/** Parse a mode name; "darp" is not a mode (it sets aware too), so
 *  callers handle it separately. fatal() on unknown names. */
RefreshMode refreshModeByName(const std::string &name);

/**
 * Refresh engine configuration.
 */
struct RefreshParams
{
    RefreshMode mode = RefreshMode::AllBank;

    /** DARP-style refresh-aware issue (pull-in / postpone / reorder). */
    bool aware = false;

    /**
     * Refreshes that may be postponed past (or pulled in ahead of)
     * their nominal deadline; JEDEC DDR3 allows 8. Per-bank mode
     * applies the bound to each bank's own tREFI cadence.
     */
    unsigned postponeMax = 8;
};

/**
 * Demand feedback for refresh-aware decisions: does the controller
 * hold queued requests for a rank / bank? Implemented by the
 * controller; only consulted when RefreshParams::aware is set.
 */
class RefreshDemandView
{
  public:
    virtual ~RefreshDemandView() = default;

    /** Any queued read or write targeting (rank, bank)? */
    virtual bool hasBankDemand(unsigned rank, unsigned bank) const = 0;

    /** Any queued read or write targeting the rank at all? */
    virtual bool hasRankDemand(unsigned rank) const = 0;
};

/**
 * The engine. One instance per channel, driven once per bus cycle
 * before the request path; it may consume the command-bus slot.
 */
class RefreshEngine
{
  public:
    /**
     * @param channel The channel to refresh (not owned).
     * @param demand Demand view for aware mode; may be null (treated
     *               as never-idle, i.e. no pull-in, demand everywhere).
     * @param params Mode and window configuration.
     */
    RefreshEngine(DramChannel &channel, const RefreshDemandView *demand,
                  RefreshParams params);

    /**
     * One cycle of refresh management at bus cycle @p now. May issue
     * at most one command (REF, REFpb, or a draining PRE) on the
     * channel; returns true iff it did (the command bus is consumed).
     */
    bool tick(Cycle now);

    /**
     * True when the request path must hold back requests to
     * (rank, bank) so a due refresh can start: the whole rank during
     * an all-bank drain, only the target bank in per-bank mode.
     * Valid for the cycle of the last tick().
     */
    bool blocks(unsigned rank, unsigned bank) const;

    /**
     * Aware mode: true when (rank, bank) should be *drained with
     * priority* because its refresh debt is one tREFI away from the
     * forced bound. The controller boosts such requests so the bank
     * goes idle before the refresh turns urgent. Always false when
     * not aware.
     */
    bool drainBoost(unsigned rank, unsigned bank) const;

    /** Outstanding all-bank refresh debt of @p rank at @p now
     *  (number of owed-but-unissued REFs; 0 when ahead of schedule). */
    std::uint64_t debt(unsigned rank, Cycle now) const;

    /** Per-bank refresh debt of (rank, bank) at @p now. */
    std::uint64_t bankDebt(unsigned rank, unsigned bank,
                           Cycle now) const;

    /** Next per-bank refresh deadline (PerBank mode bookkeeping). */
    Cycle bankDueAt(unsigned rank, unsigned bank) const;

    /** Cycle of the last REF issued to @p rank (0 before the first). */
    Cycle lastRefreshAt(unsigned rank) const;

    /** Cycle of the last REFpb issued to (rank, bank). */
    Cycle lastRefreshAt(unsigned rank, unsigned bank) const;

    /** Parameters in use. */
    const RefreshParams &params() const { return params_; }

  private:
    bool tickAllBank(Cycle now);
    bool tickAllBankAware(Cycle now);
    bool tickPerBank(Cycle now);

    /** Precharge one open bank of @p rank; true if a PRE issued. */
    bool prechargeOne(unsigned rank, Cycle now);

    bool rankIdle(unsigned rank) const;
    bool bankIdle(unsigned rank, unsigned bank) const;

    DramChannel &channel_;
    const RefreshDemandView *demand_;
    RefreshParams params_;

    Cycle trefi_;
    Cycle pullInWindow_; ///< postponeMax * tREFI.

    /** Per-bank REFpb deadlines, [rank][bank]; advance by tREFI. */
    std::vector<std::vector<Cycle>> bankDueAt_;

    /** Issue time of the last REF per rank / REFpb per bank. The
     *  device bounds the *issue-to-issue* gap, so aware engines force
     *  on elapsed time as well as on schedule debt. */
    std::vector<Cycle> rankLastRefreshAt_;
    std::vector<std::vector<Cycle>> bankLastRefreshAt_;

    /** Hold-back masks recomputed by tick(), [rank][bank]. */
    std::vector<std::vector<char>> blocked_;

    /** Aware-mode drain-priority masks, [rank][bank]. */
    std::vector<std::vector<char>> boost_;
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_REFRESH_HH
