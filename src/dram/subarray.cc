#include "dram/subarray.hh"

#include "common/log.hh"

namespace dbpsim {

SalpMode
salpModeByName(const std::string &name)
{
    if (name == "none")
        return SalpMode::None;
    if (name == "salp1")
        return SalpMode::Salp1;
    if (name == "salp2")
        return SalpMode::Salp2;
    if (name == "masa")
        return SalpMode::Masa;
    fatal("unknown SALP mode '", name,
          "' (expected none|salp1|salp2|masa)");
}

const char *
salpModeName(SalpMode mode)
{
    switch (mode) {
      case SalpMode::None: return "none";
      case SalpMode::Salp1: return "salp1";
      case SalpMode::Salp2: return "salp2";
      case SalpMode::Masa: return "masa";
    }
    DBP_PANIC("unreachable SalpMode");
}

} // namespace dbpsim
