/**
 * @file
 * Subarray-level parallelism (SALP/MASA) state.
 *
 * A DRAM bank is internally an array of subarrays, each with its own
 * local sense amplifiers (a local row buffer). Kim et al. ("Exploiting
 * the DRAM Microarchitecture to Increase Memory-Level Parallelism",
 * ISCA 2012) expose this to the controller in three steps:
 *
 *  - SALP-1: an ACTIVATE to one subarray may overlap another
 *    subarray's in-flight PRECHARGE (the other subarray's tRP is not
 *    consulted), but at most one subarray holds an open row.
 *  - SALP-2: a second row-address latch lets the PRECHARGE itself
 *    issue during a prior access's write recovery; its internal
 *    completion is deferred past the recovery, so the following
 *    ACTIVATE to another subarray overlaps the write recovery too.
 *  - MASA: every subarray may hold an open row simultaneously; an
 *    SA_SEL command relinks which subarray's row buffer drives the
 *    global bitlines (the "designated" subarray, tSA cycles), and
 *    column commands are legal only to the designated subarray.
 *
 * The channel keeps this state alongside the legacy per-bank view and
 * mirrors the aggregate into BankState so mode-oblivious consumers
 * (refresh engine, schedulers, stats) keep working. With salp=none the
 * subarray state is never allocated and the seed code path runs
 * unchanged.
 */

#ifndef DBPSIM_DRAM_SUBARRAY_HH
#define DBPSIM_DRAM_SUBARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dbpsim {

/** Subarray-level parallelism mode of a channel. */
enum class SalpMode
{
    None,  ///< seed behaviour: one monolithic row buffer per bank.
    Salp1, ///< overlap PRE of one subarray with ACT of another.
    Salp2, ///< additionally overlap ACT with prior write recovery.
    Masa,  ///< multiple open subarrays + SA_SEL designated relinking.
};

/** Parse "none" / "salp1" / "salp2" / "masa"; fatal() otherwise. */
SalpMode salpModeByName(const std::string &name);

/** Human-readable mode name. */
const char *salpModeName(SalpMode mode);

/**
 * State of one subarray: a local row buffer plus the earliest cycle
 * each command class may next be issued to it. The channel is the
 * only writer.
 */
struct SubarrayState
{
    /** True when a row is latched in the local row buffer. */
    bool open = false;

    /** The open row (valid iff open). */
    std::uint64_t row = 0;

    /** Earliest cycle an ACTIVATE may issue (tRC, deferred tRP...). */
    Cycle nextActivate = 0;

    /** Earliest cycle a PRECHARGE may issue (tRAS, tRTP, and under
     *  SALP-1 the write recovery). */
    Cycle nextPrecharge = 0;

    /** Earliest cycle a READ may issue (tRCD after own ACT). */
    Cycle nextRead = 0;

    /** Earliest cycle a WRITE may issue (tRCD after own ACT). */
    Cycle nextWrite = 0;

    /** End of the last write recovery (SALP-2/MASA): a PRECHARGE may
     *  issue before this, but completes internally only after it. */
    Cycle wrRecoveryAt = 0;
};

/**
 * Per-bank subarray aggregate: the subarrays plus the MASA designated
 * latch (which subarray's row buffer drives the global bitlines).
 */
struct SubarrayBankState
{
    std::vector<SubarrayState> subs;

    /** Subarray currently linked to the global bitlines (MASA). */
    unsigned designated = 0;

    /** Cycle the designated link becomes usable (SA_SEL takes tSA). */
    Cycle designateReadyAt = 0;
};

} // namespace dbpsim

#endif // DBPSIM_DRAM_SUBARRAY_HH
