#include "dram/timing.hh"

#include <sstream>

#include "common/log.hh"

namespace dbpsim {

std::string
DramTiming::validate() const
{
    std::ostringstream os;
    if (tRC < tRAS + tRP) {
        os << name << ": tRC (" << tRC << ") < tRAS + tRP ("
           << tRAS + tRP << ")";
        return os.str();
    }
    if (tFAW < tRRD) {
        os << name << ": tFAW (" << tFAW << ") < tRRD (" << tRRD << ")";
        return os.str();
    }
    if (tBURST == 0 || tCL == 0 || tCWL == 0 || tRCD == 0 || tRP == 0) {
        os << name << ": zero-valued core timing parameter";
        return os.str();
    }
    if (tWR == 0 || tWTR == 0 || tRTP == 0) {
        os << name << ": zero-valued write/read recovery parameter "
           << "(tWR/tWTR/tRTP)";
        return os.str();
    }
    if (tCCD < tBURST) {
        os << name << ": tCCD (" << tCCD << ") < tBURST (" << tBURST
           << ") — column commands would overlap data bursts";
        return os.str();
    }
    if (tRTRS > tCL) {
        os << name << ": tRTRS (" << tRTRS << ") > tCL (" << tCL
           << ") — rank-to-rank switch is a bus turnaround of a few "
           << "cycles; a larger value is almost certainly a unit "
           << "mistake";
        return os.str();
    }
    if (tREFI <= tRFC) {
        os << name << ": tREFI (" << tREFI << ") <= tRFC (" << tRFC << ")";
        return os.str();
    }
    if (tREFI > 0 && tRFC == 0) {
        os << name << ": tREFI (" << tREFI << ") set but tRFC is zero";
        return os.str();
    }
    if (tRFCpb > tRFC) {
        os << name << ": tRFCpb (" << tRFCpb << ") > tRFC (" << tRFC
           << ")";
        return os.str();
    }
    if (tRFC > 0 && tRFCpb == 0) {
        os << name << ": tRFC (" << tRFC << ") set but tRFCpb is zero";
        return os.str();
    }
    if (tSA == 0) {
        os << name << ": tSA is zero — SA_SEL relinking the designated "
           << "subarray takes at least one cycle";
        return os.str();
    }
    if (tSA > tRCD) {
        os << name << ": tSA (" << tSA << ") > tRCD (" << tRCD
           << ") — relinking an already-activated subarray's latch "
           << "must be cheaper than a full activate";
        return os.str();
    }
    return std::string();
}

DramTiming
ddr3_1600()
{
    return DramTiming{};
}

DramTiming
ddr3_1333()
{
    DramTiming t;
    t.name = "DDR3-1333";
    t.tckPs = 1500;
    t.tRCD = 9;
    t.tRP = 9;
    t.tCL = 9;
    t.tCWL = 7;
    t.tRAS = 24;
    t.tRC = 33;
    t.tWR = 10;
    t.tWTR = 5;
    t.tRTP = 5;
    t.tCCD = 4;
    t.tRRD = 4;
    t.tFAW = 20;
    t.tBURST = 4;
    t.tRTRS = 2;
    // 7.8 us / 1.5 ns and 160 ns (2 Gb) / 1.5 ns, rounded.
    t.tREFI = 5200;
    t.tRFC = 107;
    t.tRFCpb = 54;
    return t;
}

DramTiming
ddr3_1066()
{
    DramTiming t;
    t.name = "DDR3-1066";
    t.tckPs = 1875;
    t.tRCD = 8;
    t.tRP = 8;
    t.tCL = 8;
    t.tCWL = 6;
    t.tRAS = 20;
    t.tRC = 28;
    t.tWR = 8;
    t.tWTR = 4;
    t.tRTP = 4;
    t.tCCD = 4;
    t.tRRD = 4;
    t.tFAW = 16;
    t.tBURST = 4;
    t.tRTRS = 2;
    // 7.8 us / 1.875 ns and 160 ns (2 Gb) / 1.875 ns, rounded.
    t.tREFI = 4160;
    t.tRFC = 86;
    t.tRFCpb = 43;
    return t;
}

DramTiming
dramTimingByName(const std::string &name)
{
    if (name == "ddr3-1600" || name == "DDR3-1600")
        return ddr3_1600();
    if (name == "ddr3-1333" || name == "DDR3-1333")
        return ddr3_1333();
    if (name == "ddr3-1066" || name == "DDR3-1066")
        return ddr3_1066();
    fatal("unknown DRAM timing preset '", name, "'");
}

} // namespace dbpsim
