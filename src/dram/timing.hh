/**
 * @file
 * DDR timing parameter sets.
 *
 * All values are in memory-bus clock cycles (the controller and the
 * DRAM device tick at the bus clock; the CPU ticks cpuRatio times per
 * bus cycle). Presets follow published DDR3 datasheet values rounded
 * up to whole cycles, as simulator configuration tables in the
 * memory-scheduling literature do.
 */

#ifndef DBPSIM_DRAM_TIMING_HH
#define DBPSIM_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dbpsim {

/**
 * One DDR speed grade's timing constraints, in bus cycles.
 */
struct DramTiming
{
    std::string name = "DDR3-1600";

    /** Bus clock period in picoseconds (for reporting/energy only). */
    std::uint64_t tckPs = 1250;

    Cycle tRCD = 11;   ///< ACT -> column command, same bank.
    Cycle tRP = 11;    ///< PRE -> ACT, same bank.
    Cycle tCL = 11;    ///< READ -> first data beat.
    Cycle tCWL = 8;    ///< WRITE -> first data beat.
    Cycle tRAS = 28;   ///< ACT -> PRE, same bank.
    Cycle tRC = 39;    ///< ACT -> ACT, same bank (tRAS + tRP).
    Cycle tWR = 12;    ///< end of write data -> PRE, same bank.
    Cycle tWTR = 6;    ///< end of write data -> READ, same rank.
    Cycle tRTP = 6;    ///< READ -> PRE, same bank.
    Cycle tCCD = 4;    ///< column command -> column command.
    Cycle tRRD = 5;    ///< ACT -> ACT, different banks, same rank.
    Cycle tFAW = 24;   ///< window for at most four ACTs per rank.
    Cycle tBURST = 4;  ///< data burst length on the bus (BL8 / 2).
    Cycle tRTRS = 2;   ///< rank-to-rank data-bus switch penalty.
    Cycle tREFI = 6240;///< average refresh interval (7.8 us).
    Cycle tRFC = 128;  ///< all-bank refresh cycle time (160 ns, 2 Gb).
    Cycle tRFCpb = 64; ///< per-bank refresh cycle time (REFpb).
    Cycle tSA = 2;     ///< SA_SEL: subarray designated-latch relink
                       ///< (MASA); a global-bitline mux switch, a few
                       ///< cycles at most.

    /**
     * Sanity-check internal consistency (e.g. tRC >= tRAS + tRP, the
     * refresh relations tRFC < tREFI and tRFCpb <= tRFC). Returns an
     * empty string when valid, else a description of the first
     * violated relation.
     */
    std::string validate() const;
};

/** DDR3-1600 (800 MHz bus) 11-11-11 preset; the evaluation default. */
DramTiming ddr3_1600();

/** DDR3-1333 (667 MHz bus) 9-9-9 preset. */
DramTiming ddr3_1333();

/** DDR3-1066 (533 MHz bus) 8-8-8 preset (sensitivity studies). */
DramTiming ddr3_1066();

/** Look up a preset by name ("ddr3-1600", ...); fatal() if unknown. */
DramTiming dramTimingByName(const std::string &name);

} // namespace dbpsim

#endif // DBPSIM_DRAM_TIMING_HH
