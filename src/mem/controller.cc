#include "mem/controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

MemoryController::MemoryController(unsigned channel_id,
                                   const AddressMap &map,
                                   const DramTiming &timing,
                                   ControllerParams params,
                                   Scheduler *scheduler,
                                   ThreadProfiler *profiler)
    : map_(map), params_(params),
      channel_(map.geometry(), timing, channel_id, params.salp),
      refresh_(channel_, this, params.refresh), scheduler_(scheduler),
      profiler_(profiler)
{
    DBP_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
    DBP_ASSERT(params_.numThreads > 0, "controller needs >= 1 thread");
    DBP_ASSERT(params_.writeLoWatermark < params_.writeHiWatermark,
               "write watermarks inverted");
    DBP_ASSERT(params_.writeHiWatermark <= params_.writeQueueSize,
               "write hi watermark exceeds queue size");
    threadStats_.resize(params_.numThreads);
    latencyHist_.assign(params_.numThreads, StatHistogram(128, 8.0));
    lastColumnUse_.assign(static_cast<std::size_t>(
        map.geometry().ranksPerChannel) * map.geometry().banksPerRank,
        0);
    readQ_.reserve(params_.readQueueSize);
    writeQ_.reserve(params_.writeQueueSize);
    scheduler_->attachQueueView(this);
}

unsigned
MemoryController::colorOf(const DramCoord &coord) const
{
    return map_.colorOf(coord);
}

const ControllerThreadStats &
MemoryController::threadStats(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 &&
               static_cast<unsigned>(tid) < params_.numThreads,
               "bad thread id " << tid);
    return threadStats_[static_cast<unsigned>(tid)];
}

const StatHistogram &
MemoryController::latencyHistogram(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 &&
               static_cast<unsigned>(tid) < params_.numThreads,
               "bad thread id " << tid);
    return latencyHist_[static_cast<unsigned>(tid)];
}

bool
MemoryController::enqueueRead(Addr paddr, ThreadId tid, MemClient *client,
                              std::uint64_t tag, Cycle now)
{
    // Write-to-read forwarding: a queued store to the same line
    // supplies the data without touching DRAM.
    for (const auto &w : writeQ_) {
        if (w.paddr == paddr) {
            forwarded_.push_back(Inflight{now + params_.forwardLatency,
                                          client, tag, tid, 0, 0, now});
            statWriteForwards.inc();
            return true;
        }
    }

    if (readQ_.size() >= params_.readQueueSize) {
        statReadQueueFull.inc();
        return false;
    }

    MemRequest req;
    req.paddr = paddr;
    req.coord = map_.decode(paddr);
    req.write = false;
    req.tid = tid;
    req.id = nextReqId_++;
    req.enqueueCycle = now;
    req.client = client;
    req.tag = tag;

    if (profiler_ && tid >= 0) {
        unsigned color = colorOf(req.coord);
        profiler_->onRequest(tid, color, req.coord.row);
        profiler_->onOutstandingInc(tid, color, req.coord.row);
    }
    scheduler_->onEnqueue(req);
    readQ_.push_back(req);
    statReadsEnqueued.inc();
    return true;
}

bool
MemoryController::enqueueWrite(Addr paddr, ThreadId tid, Cycle now)
{
    // Coalesce with an already-queued store to the same line.
    for (auto &w : writeQ_) {
        if (w.paddr == paddr) {
            statWriteCoalesced.inc();
            return true;
        }
    }

    if (writeQ_.size() >= params_.writeQueueSize) {
        statWriteQueueFull.inc();
        return false;
    }

    MemRequest req;
    req.paddr = paddr;
    req.coord = map_.decode(paddr);
    req.write = true;
    req.tid = tid;
    req.id = nextReqId_++;
    req.enqueueCycle = now;

    if (profiler_ && tid >= 0) {
        unsigned color = colorOf(req.coord);
        profiler_->onRequest(tid, color, req.coord.row);
        profiler_->onOutstandingInc(tid, color, req.coord.row, false);
    }
    writeQ_.push_back(req);
    statWritesEnqueued.inc();
    return true;
}

void
MemoryController::forEachPendingRead(
    const std::function<void(MemRequest &)> &fn)
{
    for (auto &req : readQ_)
        fn(req);
}

void
MemoryController::applyMigrationCost(unsigned rank, unsigned bank,
                                     Cycle now, Cycle busy_cycles)
{
    channel_.blockBank(rank, bank, now, busy_cycles);
}

void
MemoryController::completeReads(Cycle now)
{
    auto deliver = [&](std::vector<Inflight> &list, bool from_dram) {
        for (std::size_t i = 0; i < list.size();) {
            if (list[i].doneAt <= now) {
                Inflight f = list[i];
                list[i] = list.back();
                list.pop_back();

                if (f.tid >= 0 && static_cast<unsigned>(f.tid) <
                        params_.numThreads) {
                    auto &ts = threadStats_[static_cast<unsigned>(f.tid)];
                    ++ts.readsCompleted;
                    ts.readLatencySum += f.doneAt - f.enqueueCycle;
                    if (from_dram)
                        latencyHist_[static_cast<unsigned>(f.tid)]
                            .sample(static_cast<double>(
                                f.doneAt - f.enqueueCycle));
                }
                if (from_dram && profiler_ && f.tid >= 0)
                    profiler_->onOutstandingDec(f.tid, f.color, f.row);
                if (f.client)
                    f.client->readComplete(f.tag);
            } else {
                ++i;
            }
        }
    };
    deliver(forwarded_, false);
    deliver(inflight_, true);
}

bool
MemoryController::hasBankDemand(unsigned rank, unsigned bank) const
{
    for (const auto &req : readQ_)
        if (req.coord.rank == rank && req.coord.bank == bank)
            return true;
    for (const auto &req : writeQ_)
        if (req.coord.rank == rank && req.coord.bank == bank)
            return true;
    return false;
}

bool
MemoryController::hasRankDemand(unsigned rank) const
{
    for (const auto &req : readQ_)
        if (req.coord.rank == rank)
            return true;
    for (const auto &req : writeQ_)
        if (req.coord.rank == rank)
            return true;
    return false;
}

void
MemoryController::updateDrainMode()
{
    if (writeMode_) {
        if (writeQ_.size() <= params_.writeLoWatermark)
            writeMode_ = false;
    } else {
        if (writeQ_.size() >= params_.writeHiWatermark)
            writeMode_ = true;
        else if (readQ_.empty() && inflight_.empty() &&
                 writeQ_.size() >= params_.idleWriteThresh)
            writeMode_ = true;
    }
    if (writeMode_ && writeQ_.empty())
        writeMode_ = false;
}

MemoryController::NextCmd
MemoryController::nextCommandFor(const MemRequest &req,
                                 const std::vector<MemRequest> &queue) const
{
    NextCmd next;
    const BankState &bank = channel_.bank(req.coord.rank, req.coord.bank);

    bool need_act = !bank.open;
    bool hit = bank.open && bank.row == req.coord.row;
    std::uint64_t conflict_row = bank.row;

    if (channel_.salpMode() != SalpMode::None) {
        const SubarrayBankState &sb =
            channel_.subarrays(req.coord.rank, req.coord.bank);
        unsigned si = channel_.subarrayOf(req.coord.row);
        const SubarrayState &s = sb.subs[si];
        hit = s.open && s.row == req.coord.row;
        if (channel_.salpMode() == SalpMode::Masa) {
            // Other subarrays' open rows never conflict under MASA;
            // only the target subarray's state matters.
            need_act = !s.open;
            conflict_row = s.row;
            if (hit && sb.designated != si) {
                // Row already open locally: relink the global
                // bitlines instead of precharging.
                next.cmd = DramCmd::SaSel;
                next.row = req.coord.row;
                next.valid = true;
                return next;
            }
        }
        // SALP-1/2 keep one open row per bank, so the mirror view
        // (need_act / conflict_row from BankState) stays correct; the
        // win is in the channel overlapping PRE and ACT.
    }

    if (need_act) {
        next.cmd = DramCmd::Activate;
        next.row = req.coord.row;
        next.valid = true;
        return next;
    }
    if (hit) {
        bool auto_pre = false;
        if (params_.pagePolicy == PagePolicy::Closed) {
            // Auto-precharge unless another queued request still wants
            // this row.
            auto_pre = true;
            for (const auto &other : queue) {
                if (&other != &req &&
                    other.coord.rank == req.coord.rank &&
                    other.coord.bank == req.coord.bank &&
                    other.coord.row == req.coord.row) {
                    auto_pre = false;
                    break;
                }
            }
        }
        if (req.write)
            next.cmd = auto_pre ? DramCmd::WriteAp : DramCmd::Write;
        else
            next.cmd = auto_pre ? DramCmd::ReadAp : DramCmd::Read;
        next.row = req.coord.row;
        next.valid = true;
        return next;
    }
    // Conflict: the row buffer holds a different row.
    next.cmd = DramCmd::Precharge;
    next.row = conflict_row;
    next.valid = true;
    return next;
}

bool
MemoryController::issueFromQueue(std::vector<MemRequest> &queue,
                                 bool writes, Cycle now)
{
    if (queue.empty())
        return false;

    SchedContext ctx{channel_, now, &refresh_};

    // Pass 1: per (rank, bank), find the highest-priority queued
    // request that is a row hit — the precharge guard. A request may
    // close a row only if it outranks every queued hit on that row.
    const unsigned banks_total = channel_.numRanks() * channel_.numBanks();
    std::vector<const MemRequest *> best_hit(banks_total, nullptr);
    for (const auto &req : queue) {
        if (!ctx.rowHit(req))
            continue;
        unsigned slot = req.coord.rank * channel_.numBanks() +
            req.coord.bank;
        if (!best_hit[slot] ||
            scheduler_->higherPriority(req, *best_hit[slot], ctx))
            best_hit[slot] = &req;
    }

    // Pass 2: among requests whose next command is legal right now,
    // pick the highest-priority one.
    std::size_t best_idx = queue.size();
    NextCmd best_cmd;
    bool best_boost = false;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const MemRequest &req = queue[i];
        if (refresh_.blocks(req.coord.rank, req.coord.bank))
            continue;
        NextCmd nc = nextCommandFor(req, queue);
        if (nc.cmd == DramCmd::Precharge) {
            unsigned slot = req.coord.rank * channel_.numBanks() +
                req.coord.bank;
            const MemRequest *hit = best_hit[slot];
            if (hit && !scheduler_->higherPriority(req, *hit, ctx))
                continue; // would destroy a higher-priority row hit.
        }
        if (!channel_.canIssue(nc.cmd, req.coord.rank, req.coord.bank,
                               nc.row, now))
            continue;
        // Refresh-aware arbitration: requests on a bank whose refresh
        // debt is nearly exhausted drain first, so the bank goes idle
        // before the refresh turns urgent. drainBoost() is always
        // false outside aware mode, leaving the order untouched.
        const bool boost =
            refresh_.drainBoost(req.coord.rank, req.coord.bank);
        if (best_idx == queue.size() || (boost && !best_boost) ||
            (boost == best_boost &&
             scheduler_->higherPriority(req, queue[best_idx], ctx))) {
            best_idx = i;
            best_cmd = nc;
            best_boost = boost;
        }
    }
    if (best_idx == queue.size())
        return false;

    MemRequest &req = queue[best_idx];
    bool row_hit_service = false;
    switch (best_cmd.cmd) {
      case DramCmd::Activate:
        channel_.issue(best_cmd.cmd, req.coord.rank, req.coord.bank,
                       best_cmd.row, now, req.tid);
        req.triggeredAct = true;
        return true;
      case DramCmd::Precharge:
        channel_.issue(best_cmd.cmd, req.coord.rank, req.coord.bank,
                       best_cmd.row, now, req.tid);
        req.triggeredAct = true; // a conflict service, not a hit.
        return true;
      case DramCmd::SaSel:
        // Relink only; the row stays open, so the later column
        // command still counts as a row-hit service.
        channel_.issue(best_cmd.cmd, req.coord.rank, req.coord.bank,
                       best_cmd.row, now, req.tid);
        return true;
      case DramCmd::Read:
      case DramCmd::ReadAp:
      case DramCmd::Write:
      case DramCmd::WriteAp: {
        Cycle done = channel_.issue(best_cmd.cmd, req.coord.rank,
                                    req.coord.bank, best_cmd.row, now,
                                    req.tid);
        lastColumnUse_[req.coord.rank * channel_.numBanks() +
                       req.coord.bank] = now;
        row_hit_service = !req.triggeredAct;
        if (req.tid >= 0 &&
            static_cast<unsigned>(req.tid) < params_.numThreads) {
            auto &ts = threadStats_[static_cast<unsigned>(req.tid)];
            if (row_hit_service)
                ++ts.rowHits;
            else
                ++ts.rowMisses;
            if (writes)
                ++ts.writes;
            else
                ++ts.reads;
        }
        if (writes) {
            if (profiler_ && req.tid >= 0)
                profiler_->onOutstandingDec(req.tid, colorOf(req.coord),
                                            req.coord.row, false);
        } else {
            scheduler_->onDequeue(req);
            MemRequest completed = req; // copy before erase.
            inflight_.push_back(Inflight{done, completed.client,
                                         completed.tag, completed.tid,
                                         colorOf(completed.coord),
                                         completed.coord.row,
                                         completed.enqueueCycle});
            scheduler_->onComplete(completed, done);
        }
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(best_idx));
        return true;
      }
      case DramCmd::Refresh:
      case DramCmd::RefreshBank:
        DBP_PANIC("refresh cannot come from the request path");
    }
    return false;
}

bool
MemoryController::closeIdleRows(Cycle now)
{
    for (unsigned r = 0; r < channel_.numRanks(); ++r) {
        for (unsigned b = 0; b < channel_.numBanks(); ++b) {
            const BankState &bs = channel_.bank(r, b);
            if (!bs.open)
                continue;
            Cycle last = lastColumnUse_[r * channel_.numBanks() + b];
            if (now < last + params_.rowIdleTimeout)
                continue;
            // Keep the row open while anyone still wants it.
            bool wanted = false;
            for (const auto &req : readQ_) {
                if (req.coord.rank == r && req.coord.bank == b &&
                    req.coord.row == bs.row) {
                    wanted = true;
                    break;
                }
            }
            for (const auto &req : writeQ_) {
                if (wanted)
                    break;
                if (req.coord.rank == r && req.coord.bank == b &&
                    req.coord.row == bs.row)
                    wanted = true;
            }
            if (wanted)
                continue;
            // Address the PRE to the open row so SALP modes close the
            // right subarray (the row argument is ignored otherwise).
            if (channel_.canIssue(DramCmd::Precharge, r, b, bs.row,
                                  now)) {
                channel_.issue(DramCmd::Precharge, r, b, bs.row, now);
                statIdleRowCloses.inc();
                return true;
            }
        }
    }
    return false;
}

void
MemoryController::tick(Cycle now)
{
    completeReads(now);

    if (refresh_.tick(now))
        return; // command bus consumed by refresh management.

    updateDrainMode();

    bool issued;
    if (writeMode_)
        issued = issueFromQueue(writeQ_, true, now);
    else
        issued = issueFromQueue(readQ_, false, now);

    // OpenAdaptive: spend an otherwise idle command slot closing rows
    // nobody wants anymore, hiding tRP from the next conflict.
    if (!issued && params_.pagePolicy == PagePolicy::OpenAdaptive)
        closeIdleRows(now);
}

} // namespace dbpsim
