/**
 * @file
 * Per-channel memory controller.
 *
 * Owns the read/write request queues and a DramChannel, and turns the
 * scheduler's priority order into legal DDR command sequences:
 * precharge (guarded so no higher-priority row hit is destroyed),
 * activate, column command. Handles refresh with priority, write-drain
 * hysteresis with watermarks, write-to-read forwarding, and per-thread
 * service statistics. At most one command issues per bus cycle (the
 * command-bus constraint).
 */

#ifndef DBPSIM_MEM_CONTROLLER_HH
#define DBPSIM_MEM_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/addr_map.hh"
#include "dram/channel.hh"
#include "dram/refresh.hh"
#include "mem/profiler.hh"
#include "mem/request.hh"
#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * Row-buffer management policy.
 */
enum class PagePolicy
{
    Open,         ///< leave rows open; FR-FCFS exploits hits.
    Closed,       ///< auto-precharge when no queued request wants the row.
    OpenAdaptive, ///< keep rows open, but close a row idle beyond
                  ///< rowIdleTimeout with no queued requester —
                  ///< hides tRP for the next conflict while keeping
                  ///< hit streaks intact.
};

/**
 * Controller configuration.
 */
struct ControllerParams
{
    unsigned numThreads = 8;       ///< for per-thread stats sizing.
    unsigned readQueueSize = 64;   ///< read queue capacity.
    unsigned writeQueueSize = 64;  ///< write queue capacity.
    unsigned writeHiWatermark = 48;///< enter write-drain mode at/above.
    unsigned writeLoWatermark = 16;///< leave write-drain mode at/below.
    unsigned idleWriteThresh = 8;  ///< drain opportunistically when
                                   ///< reads are absent and this many
                                   ///< writes wait.
    // dbplint:allow(cycle-literal) reason=store-to-load forward latency is a controller design parameter (queue CAM lookup), not a DRAM datasheet value
    Cycle forwardLatency = 2;      ///< write-to-read forward latency.
    PagePolicy pagePolicy = PagePolicy::Open;
    // dbplint:allow(cycle-literal) reason=adaptive page-policy tuning default, overridden by config key row_idle_timeout (fig18 sweeps it)
    Cycle rowIdleTimeout = 100;    ///< OpenAdaptive idle-close bound.
    RefreshParams refresh;         ///< refresh mode / window / DARP.
    SalpMode salp = SalpMode::None; ///< subarray-level parallelism.
};

/**
 * Per-thread service counters kept by each controller.
 */
struct ControllerThreadStats
{
    std::uint64_t reads = 0;        ///< read column commands issued.
    std::uint64_t writes = 0;       ///< write column commands issued.
    std::uint64_t rowHits = 0;      ///< served without an ACTIVATE.
    std::uint64_t rowMisses = 0;    ///< needed an ACTIVATE (and maybe PRE).
    std::uint64_t readsCompleted = 0;
    std::uint64_t readLatencySum = 0; ///< bus cycles, enqueue -> data.
};

/**
 * The controller.
 */
class MemoryController : public QueueView, public RefreshDemandView
{
  public:
    /**
     * @param channel_id This controller's channel index.
     * @param map Shared address map (bank-color arithmetic).
     * @param timing DDR timing preset.
     * @param params Queue/drain configuration.
     * @param scheduler Shared scheduling policy (not owned).
     * @param profiler Shared run-time profiler; may be null.
     */
    MemoryController(unsigned channel_id, const AddressMap &map,
                     const DramTiming &timing, ControllerParams params,
                     Scheduler *scheduler, ThreadProfiler *profiler);

    /**
     * Enqueue a load. Returns false when the read queue is full
     * (backpressure: the core retries next cycle).
     */
    bool enqueueRead(Addr paddr, ThreadId tid, MemClient *client,
                     std::uint64_t tag, Cycle now);

    /**
     * Enqueue a store (posted; no completion callback). Returns false
     * when the write queue is full.
     */
    bool enqueueWrite(Addr paddr, ThreadId tid, Cycle now);

    /** Advance one memory-bus cycle: completions, refresh, one command. */
    void tick(Cycle now);

    /** QueueView: iterate queued (not yet issued) reads. */
    void forEachPendingRead(
        const std::function<void(MemRequest &)> &fn) override;

    /** RefreshDemandView: queued read/write for (rank, bank)? */
    bool hasBankDemand(unsigned rank, unsigned bank) const override;

    /** RefreshDemandView: queued read/write for the rank at all? */
    bool hasRankDemand(unsigned rank) const override;

    /** Charge page-migration traffic to a bank (cost model). */
    void applyMigrationCost(unsigned rank, unsigned bank, Cycle now,
                            Cycle busy_cycles);

    /** Queued reads. */
    std::size_t readQueueDepth() const { return readQ_.size(); }

    /** Queued writes. */
    std::size_t writeQueueDepth() const { return writeQ_.size(); }

    /** Reads issued to DRAM and awaiting data. */
    std::size_t inflightReads() const { return inflight_.size(); }

    /** True while draining writes. */
    bool inWriteMode() const { return writeMode_; }

    /** The DRAM channel (tests, energy reporting). */
    const DramChannel &channel() const { return channel_; }

    /** The refresh engine (tests, stats). */
    const RefreshEngine &refreshEngine() const { return refresh_; }

    /**
     * Attach a command observer (protocol checker) to this
     * controller's channel; every DRAM command issued on behalf of a
     * request carries the requesting thread id, controller-internal
     * commands carry kInvalidThread.
     */
    void setCommandObserver(CommandObserver *observer)
    {
        channel_.setObserver(observer);
    }

    /** Per-thread counters. */
    const ControllerThreadStats &threadStats(ThreadId tid) const;

    /**
     * Per-thread read-latency histogram (bus cycles, 8-cycle buckets,
     * overflow beyond 1024): the tail-latency view of interference.
     */
    const StatHistogram &latencyHistogram(ThreadId tid) const;

    /** Sum of all queued+inflight requests (drain checks). */
    std::size_t pendingRequests() const
    {
        return readQ_.size() + writeQ_.size() + inflight_.size();
    }

    /** @name Aggregate stats. */
    /// @{
    StatScalar statIdleRowCloses; ///< OpenAdaptive precharges issued.
    StatScalar statReadsEnqueued;
    StatScalar statWritesEnqueued;
    StatScalar statWriteForwards;  ///< reads served from the write queue.
    StatScalar statWriteCoalesced; ///< writes merged into queued writes.
    StatScalar statReadQueueFull;
    StatScalar statWriteQueueFull;
    /// @}

  private:
    /** The next DRAM command request @p req needs right now. */
    struct NextCmd
    {
        DramCmd cmd = DramCmd::Activate;
        std::uint64_t row = 0; ///< row argument for issue().
        bool valid = false;
    };

    /** Deliver finished reads at or before @p now. */
    void completeReads(Cycle now);

    /** Recompute write-drain mode from queue depths. */
    void updateDrainMode();

    /**
     * Pick and issue one command from @p queue (current mode).
     * Returns true if a command issued.
     */
    bool issueFromQueue(std::vector<MemRequest> &queue, bool writes,
                        Cycle now);

    /** Determine @p req's next command under the page policy. */
    NextCmd nextCommandFor(const MemRequest &req,
                           const std::vector<MemRequest> &queue) const;

    /** Machine-wide color of a coordinate (profiler indexing). */
    unsigned colorOf(const DramCoord &coord) const;

    const AddressMap &map_;
    ControllerParams params_;
    DramChannel channel_;
    RefreshEngine refresh_;
    Scheduler *scheduler_;
    ThreadProfiler *profiler_;

    std::vector<MemRequest> readQ_;
    std::vector<MemRequest> writeQ_;

    /** A read issued to DRAM, waiting for its data burst to finish. */
    struct Inflight
    {
        Cycle doneAt;
        MemClient *client;
        std::uint64_t tag;
        ThreadId tid;
        unsigned color;
        std::uint64_t row;
        Cycle enqueueCycle;
    };
    std::vector<Inflight> inflight_;

    /** Forwarded reads complete on a short fixed delay. */
    std::vector<Inflight> forwarded_;

    /** Close rows idle past the timeout (OpenAdaptive); true if a
     *  precharge was issued. */
    bool closeIdleRows(Cycle now);

    std::vector<ControllerThreadStats> threadStats_;
    std::vector<StatHistogram> latencyHist_;

    /** Last column-command cycle per (rank, bank) (OpenAdaptive). */
    std::vector<Cycle> lastColumnUse_;
    bool writeMode_ = false;
    std::uint64_t nextReqId_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_CONTROLLER_HH
