#include "mem/profiler.hh"

#include "common/log.hh"

namespace dbpsim {

namespace {
constexpr std::uint64_t kColdRow = ~0ULL;
} // namespace

ThreadProfiler::ThreadProfiler(unsigned num_threads, unsigned num_colors)
    : numThreads_(num_threads), numColors_(num_colors)
{
    DBP_ASSERT(num_threads > 0, "profiler needs >= 1 thread");
    DBP_ASSERT(num_colors > 0, "profiler needs >= 1 color");
    shadowRow_.assign(static_cast<std::size_t>(num_threads) * num_colors,
                      kColdRow);
    outstanding_.assign(shadowRow_.size(), 0);
    busyBanks_.assign(num_threads, 0);
    reqs_.assign(num_threads, 0);
    shadowHits_.assign(num_threads, 0);
    blpSum_.assign(num_threads, 0);
    blpCycles_.assign(num_threads, 0);
    totalOutstanding_.assign(num_threads, 0);
    rowsOutstanding_.resize(num_threads);
    busyRows_.assign(num_threads, 0);
    mlpSum_.assign(num_threads, 0);
    mlpCycles_.assign(num_threads, 0);
    drpSum_.assign(num_threads, 0);
    drpCycles_.assign(num_threads, 0);
}

std::size_t
ThreadProfiler::idx(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 && static_cast<unsigned>(tid) < numThreads_,
               "profiler: bad thread id " << tid);
    return static_cast<std::size_t>(tid);
}

void
ThreadProfiler::onRequest(ThreadId tid, unsigned color, std::uint64_t row)
{
    std::size_t t = idx(tid);
    DBP_ASSERT(color < numColors_, "profiler: color out of range");
    std::size_t slot = t * numColors_ + color;
    if (shadowRow_[slot] == row)
        ++shadowHits_[t];
    shadowRow_[slot] = row;
    ++reqs_[t];
}

namespace {

/** Pack a (color, row) pair into one map key. */
std::uint64_t
rowKey(unsigned color, std::uint64_t row)
{
    return (static_cast<std::uint64_t>(color) << 48) ^ row;
}

} // namespace

void
ThreadProfiler::onOutstandingInc(ThreadId tid, unsigned color,
                                 std::uint64_t row, bool count_rows)
{
    std::size_t t = idx(tid);
    DBP_ASSERT(color < numColors_, "profiler: color out of range");
    std::size_t slot = t * numColors_ + color;
    if (outstanding_[slot]++ == 0)
        ++busyBanks_[t];
    ++totalOutstanding_[t];
    if (count_rows && rowsOutstanding_[t][rowKey(color, row)]++ == 0)
        ++busyRows_[t];
}

void
ThreadProfiler::onOutstandingDec(ThreadId tid, unsigned color,
                                 std::uint64_t row, bool count_rows)
{
    std::size_t t = idx(tid);
    DBP_ASSERT(color < numColors_, "profiler: color out of range");
    std::size_t slot = t * numColors_ + color;
    DBP_ASSERT(outstanding_[slot] > 0,
               "profiler: outstanding underflow t" << tid << " c" << color);
    if (--outstanding_[slot] == 0) {
        DBP_ASSERT(busyBanks_[t] > 0, "profiler: busyBanks underflow");
        --busyBanks_[t];
    }
    DBP_ASSERT(totalOutstanding_[t] > 0,
               "profiler: total outstanding underflow");
    --totalOutstanding_[t];

    if (!count_rows)
        return;
    auto it = rowsOutstanding_[t].find(rowKey(color, row));
    DBP_ASSERT(it != rowsOutstanding_[t].end() && it->second > 0,
               "profiler: row-outstanding underflow");
    if (--it->second == 0) {
        rowsOutstanding_[t].erase(it);
        DBP_ASSERT(busyRows_[t] > 0, "profiler: busyRows underflow");
        --busyRows_[t];
    }
}

void
ThreadProfiler::tick()
{
    for (unsigned t = 0; t < numThreads_; ++t) {
        if (busyBanks_[t] > 0) {
            blpSum_[t] += busyBanks_[t];
            ++blpCycles_[t];
        }
        if (totalOutstanding_[t] > 0) {
            mlpSum_[t] += totalOutstanding_[t];
            ++mlpCycles_[t];
        }
        if (busyRows_[t] > 0) {
            drpSum_[t] += busyRows_[t];
            ++drpCycles_[t];
        }
    }
}

unsigned
ThreadProfiler::busyBanks(ThreadId tid) const
{
    return busyBanks_[idx(tid)];
}

std::vector<ThreadMemProfile>
ThreadProfiler::closeInterval(
    const std::vector<std::uint64_t> &instructions,
    const std::vector<std::uint64_t> &footprint_pages)
{
    DBP_ASSERT(instructions.size() == numThreads_,
               "closeInterval: instruction vector size mismatch");
    DBP_ASSERT(footprint_pages.size() == numThreads_,
               "closeInterval: footprint vector size mismatch");

    std::vector<ThreadMemProfile> out(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        ThreadMemProfile &p = out[t];
        p.requests = reqs_[t];
        p.instructions = instructions[t];
        p.footprintPages = footprint_pages[t];
        p.mpki = instructions[t] == 0
            ? 0.0
            : 1000.0 * static_cast<double>(reqs_[t]) /
                  static_cast<double>(instructions[t]);
        p.rowBufferHitRate = reqs_[t] == 0
            ? 0.0
            : static_cast<double>(shadowHits_[t]) /
                  static_cast<double>(reqs_[t]);
        p.blp = blpCycles_[t] == 0
            ? 0.0
            : static_cast<double>(blpSum_[t]) /
                  static_cast<double>(blpCycles_[t]);
        p.mlp = mlpCycles_[t] == 0
            ? 0.0
            : static_cast<double>(mlpSum_[t]) /
                  static_cast<double>(mlpCycles_[t]);
        p.rowParallelism = drpCycles_[t] == 0
            ? 0.0
            : static_cast<double>(drpSum_[t]) /
                  static_cast<double>(drpCycles_[t]);

        reqs_[t] = 0;
        shadowHits_[t] = 0;
        blpSum_[t] = 0;
        blpCycles_[t] = 0;
        mlpSum_[t] = 0;
        mlpCycles_[t] = 0;
        drpSum_[t] = 0;
        drpCycles_[t] = 0;
    }
    return out;
}

} // namespace dbpsim
