/**
 * @file
 * Run-time per-thread memory profiler (DBP section "profiling threads'
 * memory characteristics at run-time").
 *
 * Collects, per profiling interval and per thread:
 *  - request count (-> MPKI once instruction counts are supplied),
 *  - intrinsic row-buffer locality via shadow row buffers: one
 *    remembered last-row per (thread, bank color), updated on every
 *    request, so the measured hit rate is interference-free,
 *  - bank-level parallelism, accumulated incrementally: controllers
 *    report outstanding-per-(thread,color) increments/decrements and
 *    the profiler samples the per-thread busy-bank count every memory
 *    cycle the thread has outstanding requests.
 *
 * One profiler instance serves all channels (BLP spans channels).
 */

#ifndef DBPSIM_MEM_PROFILER_HH
#define DBPSIM_MEM_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/thread_profile.hh"

namespace dbpsim {

/**
 * The profiler.
 */
class ThreadProfiler
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param num_colors Machine-wide bank count.
     */
    ThreadProfiler(unsigned num_threads, unsigned num_colors);

    /**
     * A request entered a controller: update shadow row buffer and
     * request count. @p row is the DRAM row within the color.
     */
    void onRequest(ThreadId tid, unsigned color, std::uint64_t row);

    /**
     * A request of @p tid became outstanding at (@p color, @p row).
     * @p count_rows selects whether the request participates in the
     * distinct-row-parallelism estimate: loads do, posted stores do
     * not (they linger in deep write queues and would smear the
     * estimate across every row the thread visited recently).
     */
    void onOutstandingInc(ThreadId tid, unsigned color,
                          std::uint64_t row, bool count_rows = true);

    /** A request of @p tid left (@p color, @p row) (serviced). */
    void onOutstandingDec(ThreadId tid, unsigned color,
                          std::uint64_t row, bool count_rows = true);

    /** Sample BLP; call exactly once per memory-bus cycle. */
    void tick();

    /**
     * Close the interval: combine with per-thread instruction and
     * footprint counts (collected by the system from cores / OS) and
     * reset interval counters. Shadow row buffers persist across
     * intervals (locality is a stream property).
     */
    std::vector<ThreadMemProfile>
    closeInterval(const std::vector<std::uint64_t> &instructions,
                  const std::vector<std::uint64_t> &footprint_pages);

    /** Threads being profiled. */
    unsigned numThreads() const { return numThreads_; }

    /** Current outstanding busy-bank count of a thread (tests). */
    unsigned busyBanks(ThreadId tid) const;

  private:
    std::size_t idx(ThreadId tid) const;

    unsigned numThreads_;
    unsigned numColors_;

    /** Shadow row buffers: last row per (thread, color); kNever = cold. */
    std::vector<std::uint64_t> shadowRow_; ///< [thread * colors + color].

    /** Outstanding requests per (thread, color). */
    std::vector<std::uint32_t> outstanding_;

    /** Banks with outstanding_ > 0, per thread (incremental). */
    std::vector<std::uint32_t> busyBanks_;

    /** Outstanding requests per thread (all banks). */
    std::vector<std::uint32_t> totalOutstanding_;

    /** Outstanding per (color, row) key, per thread. */
    // dbplint:allow(unordered-decl) reason=never iterated; only point find/insert/erase with the busyRows_ counter maintained incrementally, so hash order cannot reach results
    std::vector<std::unordered_map<std::uint64_t, std::uint32_t>>
        rowsOutstanding_;

    /** Distinct (color, row) targets outstanding, per thread. */
    std::vector<std::uint32_t> busyRows_;

    /** Interval accumulators. */
    std::vector<std::uint64_t> reqs_;
    std::vector<std::uint64_t> shadowHits_;
    std::vector<std::uint64_t> blpSum_;
    std::vector<std::uint64_t> blpCycles_;
    std::vector<std::uint64_t> mlpSum_;
    std::vector<std::uint64_t> mlpCycles_;
    std::vector<std::uint64_t> drpSum_;
    std::vector<std::uint64_t> drpCycles_;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_PROFILER_HH
