/**
 * @file
 * The memory request type exchanged between cores, the OS layer, and
 * the per-channel memory controllers, plus the completion-callback
 * interface cores implement.
 */

#ifndef DBPSIM_MEM_REQUEST_HH
#define DBPSIM_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/addr_map.hh"

namespace dbpsim {

/**
 * Receiver of read completions. Cores implement this; the controller
 * calls back with the tag the core attached to the request.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** Read data for request @p tag has returned from DRAM. */
    virtual void readComplete(std::uint64_t tag) = 0;
};

/**
 * One in-flight memory request (a full cache line).
 */
struct MemRequest
{
    /** Physical byte address (line aligned). */
    Addr paddr = 0;

    /** Pre-decoded DRAM coordinates of paddr. */
    DramCoord coord;

    /** Store (true) or load (false). */
    bool write = false;

    /** Owning hardware thread. */
    ThreadId tid = kInvalidThread;

    /** Controller-local monotonically increasing id (age tiebreak). */
    std::uint64_t id = 0;

    /** Memory-bus cycle the request entered the controller. */
    Cycle enqueueCycle = 0;

    /** PAR-BS: request belongs to the current batch. */
    bool marked = false;

    /** An ACTIVATE has been issued on behalf of this request. */
    bool triggeredAct = false;

    /** Completion callback (loads only; may be null). */
    MemClient *client = nullptr;

    /** Opaque tag echoed to the client. */
    std::uint64_t tag = 0;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_REQUEST_HH
