#include "mem/sched_atlas.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

AtlasScheduler::AtlasScheduler(unsigned num_threads, Cycle burst_cycles,
                               AtlasParams params)
    : numThreads_(num_threads), burstCycles_(burst_cycles),
      params_(params), nextQuantumEnd_(params.quantum)
{
    DBP_ASSERT(num_threads > 0, "atlas needs >= 1 thread");
    DBP_ASSERT(params_.quantum > 0, "atlas quantum must be > 0");
    DBP_ASSERT(params_.alpha >= 0.0 && params_.alpha < 1.0,
               "atlas alpha out of [0,1)");
    attained_.assign(num_threads, 0.0);
    quantumService_.assign(num_threads, 0.0);
    rank_.assign(num_threads, 0);
}

int
AtlasScheduler::rankOf(ThreadId tid) const
{
    if (tid < 0 || static_cast<unsigned>(tid) >= numThreads_)
        return -1;
    return rank_[static_cast<unsigned>(tid)];
}

double
AtlasScheduler::attainedService(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 && static_cast<unsigned>(tid) < numThreads_,
               "atlas: bad thread id");
    return attained_[static_cast<unsigned>(tid)];
}

void
AtlasScheduler::onComplete(const MemRequest &req, Cycle now)
{
    (void)now;
    if (req.tid >= 0 && static_cast<unsigned>(req.tid) < numThreads_)
        quantumService_[static_cast<unsigned>(req.tid)] +=
            static_cast<double>(burstCycles_);
}

void
AtlasScheduler::tick(Cycle now)
{
    if (now < nextQuantumEnd_)
        return;
    nextQuantumEnd_ += params_.quantum;

    for (unsigned t = 0; t < numThreads_; ++t) {
        attained_[t] = params_.alpha * attained_[t] +
            (1.0 - params_.alpha) * quantumService_[t];
        quantumService_[t] = 0.0;
    }

    // Least attained service -> highest rank.
    std::vector<unsigned> order(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        order[t] = t;
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        if (attained_[a] != attained_[b])
            return attained_[a] < attained_[b];
        return a < b;
    });
    for (unsigned pos = 0; pos < order.size(); ++pos)
        rank_[order[pos]] = static_cast<int>(numThreads_ - pos);
}

bool
AtlasScheduler::higherPriority(const MemRequest &a, const MemRequest &b,
                               const SchedContext &ctx) const
{
    int ra = rankOf(a.tid);
    int rb = rankOf(b.tid);
    if (ra != rb)
        return ra > rb;
    bool ha = ctx.rowHit(a);
    bool hb = ctx.rowHit(b);
    if (ha != hb)
        return ha;
    return olderFirst(a, b);
}

} // namespace dbpsim
