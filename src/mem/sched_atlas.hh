/**
 * @file
 * ATLAS (Kim et al., HPCA 2010): adaptive per-thread least-attained-
 * service scheduling. Every long quantum, threads are ranked by their
 * exponentially smoothed attained DRAM service; the thread with the
 * least attained service is served first, which favours light threads
 * and maximizes system throughput (at a known cost in fairness for
 * heavy threads — the behaviour TCM later fixed).
 */

#ifndef DBPSIM_MEM_SCHED_ATLAS_HH
#define DBPSIM_MEM_SCHED_ATLAS_HH

#include <cstdint>
#include <vector>

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * ATLAS configuration.
 */
struct AtlasParams
{
    /** Quantum length in memory-bus cycles. */
    // dbplint:allow(cycle-literal) reason=ATLAS paper quantum, overridden by config key atlas_quantum
    Cycle quantum = 2'500'000;

    /** Exponential smoothing weight on history. */
    double alpha = 0.875;
};

/**
 * The ATLAS scheduler.
 */
class AtlasScheduler : public Scheduler
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param burst_cycles Data-burst length (service accounting unit).
     */
    AtlasScheduler(unsigned num_threads, Cycle burst_cycles,
                   AtlasParams params = {});

    std::string name() const override { return "atlas"; }

    bool higherPriority(const MemRequest &a, const MemRequest &b,
                        const SchedContext &ctx) const override;

    void tick(Cycle now) override;
    void onComplete(const MemRequest &req, Cycle now) override;

    /** Smoothed attained service of a thread (tests). */
    double attainedService(ThreadId tid) const;

  private:
    int rankOf(ThreadId tid) const;

    unsigned numThreads_;
    Cycle burstCycles_;
    AtlasParams params_;

    std::vector<double> attained_;   ///< smoothed service history.
    std::vector<double> quantumService_;
    std::vector<int> rank_;
    Cycle nextQuantumEnd_;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_ATLAS_HH
