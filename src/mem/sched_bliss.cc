#include "mem/sched_bliss.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

BlissScheduler::BlissScheduler(unsigned num_threads, BlissParams params)
    : numThreads_(num_threads), params_(params),
      nextClear_(params.clearInterval)
{
    DBP_ASSERT(num_threads > 0, "bliss needs >= 1 thread");
    DBP_ASSERT(params_.blacklistCap > 0, "bliss cap must be >= 1");
    DBP_ASSERT(params_.clearInterval > 0, "bliss interval must be > 0");
    blacklist_.assign(num_threads, false);
}

bool
BlissScheduler::blacklisted(ThreadId tid) const
{
    if (tid < 0 || static_cast<unsigned>(tid) >= numThreads_)
        return false;
    return blacklist_[static_cast<unsigned>(tid)];
}

void
BlissScheduler::onDequeue(const MemRequest &req)
{
    if (req.tid == lastServed_) {
        if (++streak_ >= params_.blacklistCap && req.tid >= 0 &&
            static_cast<unsigned>(req.tid) < numThreads_ &&
            !blacklist_[static_cast<unsigned>(req.tid)]) {
            blacklist_[static_cast<unsigned>(req.tid)] = true;
            ++events_;
        }
    } else {
        lastServed_ = req.tid;
        streak_ = 1;
    }
}

void
BlissScheduler::tick(Cycle now)
{
    if (now < nextClear_)
        return;
    nextClear_ += params_.clearInterval;
    std::fill(blacklist_.begin(), blacklist_.end(), false);
    streak_ = 0;
    lastServed_ = kInvalidThread;
}

bool
BlissScheduler::higherPriority(const MemRequest &a, const MemRequest &b,
                               const SchedContext &ctx) const
{
    bool ba = blacklisted(a.tid);
    bool bb = blacklisted(b.tid);
    if (ba != bb)
        return !ba; // non-blacklisted first.
    bool ha = ctx.rowHit(a);
    bool hb = ctx.rowHit(b);
    if (ha != hb)
        return ha;
    return olderFirst(a, b);
}

} // namespace dbpsim
