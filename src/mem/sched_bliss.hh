/**
 * @file
 * BLISS — the Blacklisting memory scheduler (Usui, Subramanian, Chang,
 * Mutlu; contemporaneous with the DBP paper). Included as an extension
 * baseline: it achieves much of TCM's benefit with almost no state.
 *
 * Mechanism: the controller observes streaks of consecutively served
 * requests from the same application; an application whose streak
 * reaches blacklistCap is *blacklisted*. Non-blacklisted requests beat
 * blacklisted ones; within a group the order is row-hit then age. The
 * blacklist is cleared every clearInterval cycles, so heavy threads
 * time-share the non-blacklisted (fast) lane.
 */

#ifndef DBPSIM_MEM_SCHED_BLISS_HH
#define DBPSIM_MEM_SCHED_BLISS_HH

#include <cstdint>
#include <vector>

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * BLISS configuration.
 */
struct BlissParams
{
    /** Consecutive services that trigger blacklisting. */
    unsigned blacklistCap = 4;

    /** Blacklist-clearing period in bus cycles. */
    // dbplint:allow(cycle-literal) reason=BLISS paper clearing interval, overridden by config key bliss_clear
    Cycle clearInterval = 10'000;
};

/**
 * The BLISS scheduler.
 */
class BlissScheduler : public Scheduler
{
  public:
    /** @param num_threads Hardware threads. */
    explicit BlissScheduler(unsigned num_threads,
                            BlissParams params = {});

    std::string name() const override { return "bliss"; }

    bool higherPriority(const MemRequest &a, const MemRequest &b,
                        const SchedContext &ctx) const override;

    void tick(Cycle now) override;
    void onDequeue(const MemRequest &req) override;

    /** Is a thread currently blacklisted? (tests) */
    bool blacklisted(ThreadId tid) const;

    /** Blacklist events so far (tests / reporting). */
    std::uint64_t blacklistEvents() const { return events_; }

  private:
    unsigned numThreads_;
    BlissParams params_;

    std::vector<bool> blacklist_;
    ThreadId lastServed_ = kInvalidThread;
    unsigned streak_ = 0;
    Cycle nextClear_;
    std::uint64_t events_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_BLISS_HH
