#include "mem/sched_factory.hh"

#include "common/log.hh"
#include "mem/sched_atlas.hh"
#include "mem/sched_bliss.hh"
#include "mem/sched_fcfs.hh"
#include "mem/sched_frfcfs.hh"
#include "mem/sched_parbs.hh"
#include "mem/sched_tcm.hh"

namespace dbpsim {

const std::vector<std::string> &
schedulerNames()
{
    static const std::vector<std::string> names = {
        "fcfs", "fr-fcfs", "par-bs", "atlas", "tcm", "bliss",
    };
    return names;
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string &name, const SchedulerInit &init)
{
    if (name == "fcfs")
        return std::make_unique<FcfsScheduler>();
    if (name == "fr-fcfs")
        return std::make_unique<FrFcfsScheduler>();
    if (name == "par-bs") {
        ParbsParams p;
        p.markingCap = init.parbsMarkingCap;
        return std::make_unique<ParbsScheduler>(init.numThreads,
                                                init.numColors, p);
    }
    if (name == "atlas") {
        AtlasParams p;
        p.quantum = init.atlasQuantum;
        return std::make_unique<AtlasScheduler>(init.numThreads,
                                                init.burstCycles, p);
    }
    if (name == "bliss") {
        BlissParams p;
        p.blacklistCap = init.blissCap;
        p.clearInterval = init.blissClearInterval;
        return std::make_unique<BlissScheduler>(init.numThreads, p);
    }
    if (name == "tcm") {
        TcmParams p;
        p.clusterThresh = init.tcmClusterThresh;
        p.shuffleInterval = init.tcmShuffleInterval;
        return std::make_unique<TcmScheduler>(init.numThreads, p);
    }
    fatal("unknown scheduler '", name, "' (expected fcfs|fr-fcfs|par-bs|",
          "atlas|tcm|bliss)");
}

} // namespace dbpsim
