/**
 * @file
 * Scheduler construction by name.
 */

#ifndef DBPSIM_MEM_SCHED_FACTORY_HH
#define DBPSIM_MEM_SCHED_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * Everything scheduler constructors might need.
 */
struct SchedulerInit
{
    unsigned numThreads = 8;   ///< hardware threads.
    unsigned numColors = 32;   ///< machine-wide banks (PAR-BS grouping).
    // dbplint:allow(cycle-literal) reason=placeholder mirroring DramTiming::tBURST; system assembly overwrites it from the timing preset in force
    Cycle burstCycles = 4;     ///< tBURST (ATLAS service unit).
    // dbplint:allow(cycle-literal) reason=TCM paper constant (800-cycle shuffle), overridden by config key tcm_shuffle
    Cycle tcmShuffleInterval = 800;
    double tcmClusterThresh = 0.10;
    // dbplint:allow(cycle-literal) reason=ATLAS paper quantum in bus cycles, overridden by config key atlas_quantum
    Cycle atlasQuantum = 2'500'000;
    unsigned parbsMarkingCap = 5;
    unsigned blissCap = 4;
    // dbplint:allow(cycle-literal) reason=BLISS paper clearing interval, overridden by config key bliss_clear
    Cycle blissClearInterval = 10'000;
};

/** Names accepted by makeScheduler, in a stable order. */
const std::vector<std::string> &schedulerNames();

/**
 * Build a scheduler: "fcfs", "fr-fcfs", "par-bs", "atlas", "tcm" or
 * "bliss". fatal()s on unknown names.
 */
std::unique_ptr<Scheduler> makeScheduler(const std::string &name,
                                         const SchedulerInit &init);

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_FACTORY_HH
