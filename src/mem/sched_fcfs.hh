/**
 * @file
 * FCFS: strictly oldest-first. The weakest baseline; ignores row
 * locality entirely.
 */

#ifndef DBPSIM_MEM_SCHED_FCFS_HH
#define DBPSIM_MEM_SCHED_FCFS_HH

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * First-come first-served scheduling.
 */
class FcfsScheduler : public Scheduler
{
  public:
    std::string name() const override { return "fcfs"; }

    bool
    higherPriority(const MemRequest &a, const MemRequest &b,
                   const SchedContext &ctx) const override
    {
        (void)ctx;
        return olderFirst(a, b);
    }
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_FCFS_HH
