/**
 * @file
 * FR-FCFS (Rixner et al., ISCA 2000): row-buffer hits first, then
 * oldest first. The standard throughput-oriented baseline; thread
 * oblivious, hence unfair under interference.
 */

#ifndef DBPSIM_MEM_SCHED_FRFCFS_HH
#define DBPSIM_MEM_SCHED_FRFCFS_HH

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * First-ready FCFS scheduling.
 */
class FrFcfsScheduler : public Scheduler
{
  public:
    std::string name() const override { return "fr-fcfs"; }

    bool
    higherPriority(const MemRequest &a, const MemRequest &b,
                   const SchedContext &ctx) const override
    {
        bool ha = ctx.rowHit(a);
        bool hb = ctx.rowHit(b);
        if (ha != hb)
            return ha;
        return olderFirst(a, b);
    }
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_FRFCFS_HH
