#include "mem/sched_parbs.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"

namespace dbpsim {

ParbsScheduler::ParbsScheduler(unsigned num_threads, unsigned num_colors,
                               ParbsParams params)
    : numThreads_(num_threads), numColors_(num_colors), params_(params)
{
    DBP_ASSERT(num_threads > 0, "par-bs needs >= 1 thread");
    DBP_ASSERT(params_.markingCap > 0, "par-bs marking cap must be >= 1");
    rank_.assign(num_threads, 0);
}

void
ParbsScheduler::attachQueueView(QueueView *view)
{
    DBP_ASSERT(view != nullptr, "null queue view");
    views_.push_back(view);
}

int
ParbsScheduler::rankOf(ThreadId tid) const
{
    if (tid < 0 || static_cast<unsigned>(tid) >= numThreads_)
        return -1;
    return rank_[static_cast<unsigned>(tid)];
}

void
ParbsScheduler::tick(Cycle now)
{
    (void)now;
    if (markedRemaining_ == 0)
        formBatch();
}

void
ParbsScheduler::onDequeue(const MemRequest &req)
{
    if (req.marked) {
        DBP_ASSERT(markedRemaining_ > 0, "marked counter underflow");
        --markedRemaining_;
    }
}

void
ParbsScheduler::formBatch()
{
    // Gather every pending read, grouped by (thread, machine bank).
    std::map<std::pair<ThreadId, unsigned>, std::vector<MemRequest *>>
        groups;
    for (QueueView *view : views_) {
        view->forEachPendingRead([&](MemRequest &req) {
            // Machine-wide bank id built from coordinate fields (map
            // agnostic; widths generous enough for any geometry).
            unsigned machine_bank = req.coord.channel;
            machine_bank = machine_bank * 65536 + req.coord.rank;
            machine_bank = machine_bank * 65536 + req.coord.bank;
            groups[{req.tid, machine_bank}].push_back(&req);
        });
    }
    if (groups.empty())
        return;

    // Mark up to cap oldest requests per group; accumulate per-thread
    // marked totals and per-bank maxima.
    std::vector<std::uint64_t> total(numThreads_, 0);
    std::vector<std::uint64_t> max_per_bank(numThreads_, 0);
    for (auto &[key, reqs] : groups) {
        std::sort(reqs.begin(), reqs.end(),
                  [](const MemRequest *a, const MemRequest *b) {
                      return olderFirst(*a, *b);
                  });
        std::uint64_t marked = 0;
        for (MemRequest *r : reqs) {
            if (marked >= params_.markingCap)
                break;
            r->marked = true;
            ++marked;
            ++markedRemaining_;
        }
        ThreadId tid = key.first;
        if (tid >= 0 && static_cast<unsigned>(tid) < numThreads_) {
            total[tid] += marked;
            max_per_bank[tid] = std::max(max_per_bank[tid], marked);
        }
    }
    ++batches_;

    // Shortest job first: threads with the smallest maximum per-bank
    // load (then smallest total) get the highest rank.
    std::vector<unsigned> order(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        order[t] = t;
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) {
                  if (max_per_bank[a] != max_per_bank[b])
                      return max_per_bank[a] < max_per_bank[b];
                  if (total[a] != total[b])
                      return total[a] < total[b];
                  return a < b;
              });
    for (unsigned pos = 0; pos < order.size(); ++pos)
        rank_[order[pos]] = static_cast<int>(numThreads_ - pos);
}

bool
ParbsScheduler::higherPriority(const MemRequest &a, const MemRequest &b,
                               const SchedContext &ctx) const
{
    if (a.marked != b.marked)
        return a.marked;
    int ra = rankOf(a.tid);
    int rb = rankOf(b.tid);
    if (ra != rb)
        return ra > rb;
    bool ha = ctx.rowHit(a);
    bool hb = ctx.rowHit(b);
    if (ha != hb)
        return ha;
    return olderFirst(a, b);
}

} // namespace dbpsim
