/**
 * @file
 * PAR-BS (Mutlu & Moscibroda, ISCA 2008): parallelism-aware batch
 * scheduling. Requests are grouped into batches (up to a cap per
 * thread per bank); batched requests strictly precede unbatched ones,
 * which bounds every thread's service delay (fairness). Within a
 * batch, threads are ranked shortest-job-first by their maximum
 * per-bank queued load, preserving each thread's bank-level
 * parallelism.
 */

#ifndef DBPSIM_MEM_SCHED_PARBS_HH
#define DBPSIM_MEM_SCHED_PARBS_HH

#include <cstdint>
#include <vector>

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * PAR-BS configuration.
 */
struct ParbsParams
{
    /** Max marked requests per (thread, bank) when a batch forms. */
    unsigned markingCap = 5;
};

/**
 * The PAR-BS scheduler.
 */
class ParbsScheduler : public Scheduler
{
  public:
    /**
     * @param num_threads Hardware threads (ranking vector size).
     * @param num_colors Machine-wide bank count (batch grouping).
     */
    ParbsScheduler(unsigned num_threads, unsigned num_colors,
                   ParbsParams params = {});

    std::string name() const override { return "par-bs"; }

    bool higherPriority(const MemRequest &a, const MemRequest &b,
                        const SchedContext &ctx) const override;

    void tick(Cycle now) override;
    void onDequeue(const MemRequest &req) override;
    void attachQueueView(QueueView *view) override;

    /** Batches formed so far (tests / reporting). */
    std::uint64_t batchesFormed() const { return batches_; }

    /** Marked requests still queued. */
    std::uint64_t markedRemaining() const { return markedRemaining_; }

  private:
    /** Mark a new batch and recompute thread ranks. */
    void formBatch();

    /** Rank of a thread (higher = served first); safe for any tid. */
    int rankOf(ThreadId tid) const;

    unsigned numThreads_;
    unsigned numColors_;
    ParbsParams params_;

    std::vector<QueueView *> views_;
    std::vector<int> rank_;
    std::uint64_t markedRemaining_ = 0;
    std::uint64_t batches_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_PARBS_HH
