#include "mem/sched_tcm.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

TcmScheduler::TcmScheduler(unsigned num_threads, TcmParams params)
    : numThreads_(num_threads), params_(params),
      nextShuffle_(params.shuffleInterval)
{
    DBP_ASSERT(num_threads > 0, "tcm needs >= 1 thread");
    DBP_ASSERT(params_.clusterThresh >= 0.0 && params_.clusterThresh <= 1.0,
               "tcm clusterThresh out of [0,1]");
    DBP_ASSERT(params_.shuffleInterval > 0, "tcm shuffleInterval == 0");
    latency_.assign(num_threads, false);
    rank_.assign(num_threads, 0);
}

bool
TcmScheduler::inLatencyCluster(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 && static_cast<unsigned>(tid) < numThreads_,
               "tcm: bad thread id");
    return latency_[static_cast<unsigned>(tid)];
}

int
TcmScheduler::rankOf(ThreadId tid) const
{
    if (tid < 0 || static_cast<unsigned>(tid) >= numThreads_)
        return -1;
    return rank_[static_cast<unsigned>(tid)];
}

void
TcmScheduler::onIntervalProfiles(
    const std::vector<ThreadMemProfile> &profiles)
{
    DBP_ASSERT(profiles.size() == numThreads_,
               "tcm: profile vector size mismatch");

    // --- Clustering: lowest-MPKI threads enter the latency cluster
    // while their cumulative bandwidth stays within clusterThresh of
    // the interval's total request count.
    std::uint64_t total_reqs = 0;
    for (const auto &p : profiles)
        total_reqs += p.requests;

    std::vector<unsigned> by_mpki(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        by_mpki[t] = t;
    std::sort(by_mpki.begin(), by_mpki.end(), [&](unsigned a, unsigned b) {
        if (profiles[a].mpki != profiles[b].mpki)
            return profiles[a].mpki < profiles[b].mpki;
        return a < b;
    });

    std::fill(latency_.begin(), latency_.end(), false);
    latOrder_.clear();
    double budget = params_.clusterThresh *
        static_cast<double>(total_reqs);
    double used = 0.0;
    std::vector<unsigned> bw_threads;
    for (unsigned t : by_mpki) {
        double r = static_cast<double>(profiles[t].requests);
        if (used + r <= budget || profiles[t].requests == 0) {
            latency_[t] = true;
            latOrder_.push_back(t); // ascending MPKI = best first.
            used += r;
        } else {
            bw_threads.push_back(t);
        }
    }

    // --- Bandwidth-cluster niceness: rank by BLP (high = nice) minus
    // rank by row-buffer locality (high = not nice).
    std::vector<unsigned> by_blp = bw_threads;
    std::sort(by_blp.begin(), by_blp.end(), [&](unsigned a, unsigned b) {
        if (profiles[a].blp != profiles[b].blp)
            return profiles[a].blp < profiles[b].blp;
        return a < b;
    });
    std::vector<unsigned> by_rbl = bw_threads;
    std::sort(by_rbl.begin(), by_rbl.end(), [&](unsigned a, unsigned b) {
        if (profiles[a].rowBufferHitRate != profiles[b].rowBufferHitRate)
            return profiles[a].rowBufferHitRate <
                profiles[b].rowBufferHitRate;
        return a < b;
    });
    std::vector<int> blp_rank(numThreads_, 0);
    std::vector<int> rbl_rank(numThreads_, 0);
    for (unsigned pos = 0; pos < by_blp.size(); ++pos)
        blp_rank[by_blp[pos]] = static_cast<int>(pos);
    for (unsigned pos = 0; pos < by_rbl.size(); ++pos)
        rbl_rank[by_rbl[pos]] = static_cast<int>(pos);

    bwOrder_ = bw_threads;
    std::sort(bwOrder_.begin(), bwOrder_.end(),
              [&](unsigned a, unsigned b) {
                  int na = blp_rank[a] - rbl_rank[a];
                  int nb = blp_rank[b] - rbl_rank[b];
                  if (na != nb)
                      return na > nb; // nicer first.
                  return a < b;
              });

    rebuildRanks();
}

void
TcmScheduler::rebuildRanks()
{
    // Ranks: latency-cluster threads occupy the top band (ascending
    // MPKI = higher rank), the bandwidth cluster fills the bottom band
    // in (shuffled) niceness order.
    int next_rank = static_cast<int>(numThreads_) * 2;
    for (unsigned t : latOrder_)
        rank_[t] = next_rank--;
    for (unsigned t : bwOrder_)
        rank_[t] = next_rank--;
}

void
TcmScheduler::tick(Cycle now)
{
    if (now < nextShuffle_)
        return;
    nextShuffle_ += params_.shuffleInterval;
    if (bwOrder_.size() > 1) {
        std::rotate(bwOrder_.begin(), bwOrder_.begin() + 1,
                    bwOrder_.end());
        rebuildRanks();
    }
}

bool
TcmScheduler::higherPriority(const MemRequest &a, const MemRequest &b,
                             const SchedContext &ctx) const
{
    int ra = rankOf(a.tid);
    int rb = rankOf(b.tid);
    if (ra != rb)
        return ra > rb;
    bool ha = ctx.rowHit(a);
    bool hb = ctx.rowHit(b);
    if (ha != hb)
        return ha;
    return olderFirst(a, b);
}

} // namespace dbpsim
