/**
 * @file
 * TCM — Thread Cluster Memory scheduling (Kim et al., MICRO 2010), the
 * scheduler DBP composes with (DBP-TCM).
 *
 * Every profiling interval, threads are split into a latency-sensitive
 * cluster (the lowest-MPKI threads whose combined bandwidth stays
 * under clusterThresh of the total) and a bandwidth-sensitive cluster.
 * The latency cluster is always served first — its threads rarely load
 * the memory system, so prioritizing them costs almost no bandwidth
 * while making them immune to interference. Within the latency
 * cluster, lower MPKI ranks higher. Within the bandwidth cluster,
 * threads are ranked by "niceness" (high bank-level parallelism =
 * vulnerable = nice; high row-buffer locality = bank-hogging = not
 * nice) and the ranking is rotated every shuffle interval so heavy
 * threads time-share the top slot (insertion shuffling in the paper;
 * rotation is the standard simplification and preserves the
 * time-sharing behaviour).
 */

#ifndef DBPSIM_MEM_SCHED_TCM_HH
#define DBPSIM_MEM_SCHED_TCM_HH

#include <cstdint>
#include <vector>

#include "mem/scheduler.hh"

namespace dbpsim {

/**
 * TCM configuration.
 */
struct TcmParams
{
    /**
     * Max fraction of total interval bandwidth the latency cluster
     * may consume.
     */
    double clusterThresh = 0.10;

    /** Bandwidth-cluster rank rotation period, in bus cycles. */
    // dbplint:allow(cycle-literal) reason=TCM paper shuffle period, overridden by config key tcm_shuffle
    Cycle shuffleInterval = 800;
};

/**
 * The TCM scheduler.
 */
class TcmScheduler : public Scheduler
{
  public:
    /** @param num_threads Hardware threads. */
    explicit TcmScheduler(unsigned num_threads, TcmParams params = {});

    std::string name() const override { return "tcm"; }

    bool higherPriority(const MemRequest &a, const MemRequest &b,
                        const SchedContext &ctx) const override;

    void tick(Cycle now) override;
    void onIntervalProfiles(
        const std::vector<ThreadMemProfile> &profiles) override;

    /** Is a thread currently in the latency-sensitive cluster? */
    bool inLatencyCluster(ThreadId tid) const;

    /** Current rank of a thread (higher = served first; tests). */
    int rankOf(ThreadId tid) const;

  private:
    /** Recompute ranks from cluster membership + bw-cluster order. */
    void rebuildRanks();

    unsigned numThreads_;
    TcmParams params_;

    std::vector<bool> latency_;
    std::vector<unsigned> latOrder_; ///< latency cluster, best first.
    std::vector<unsigned> bwOrder_; ///< bw-cluster threads, best first.
    std::vector<int> rank_;
    Cycle nextShuffle_;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHED_TCM_HH
