/**
 * @file
 * The memory-scheduler plug-in interface.
 *
 * Controllers own the mechanics (per-cycle command generation, timing
 * legality, write drain); a Scheduler supplies the *policy*: a strict
 * priority order over queued read requests, plus periodic state
 * updates (cluster/rank recomputation for TCM, batching for PAR-BS,
 * service accounting for ATLAS). One scheduler instance is shared by
 * all channel controllers, because ranking policies are machine-wide.
 */

#ifndef DBPSIM_MEM_SCHEDULER_HH
#define DBPSIM_MEM_SCHEDULER_HH

#include <functional>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/refresh.hh"
#include "mem/request.hh"
#include "mem/thread_profile.hh"

namespace dbpsim {

/**
 * Per-decision context handed to the comparator.
 */
struct SchedContext
{
    const DramChannel &channel; ///< channel the decision is for.
    Cycle now;                  ///< current memory-bus cycle.

    /** The channel's refresh engine; null in bare test harnesses.
     *  Policies may consult it to favour draining banks whose refresh
     *  debt is nearly exhausted (the controller already applies that
     *  boost above the policy order in refresh-aware mode). */
    const RefreshEngine *refresh = nullptr;

    /** Is @p req a row-buffer hit right now? */
    bool
    rowHit(const MemRequest &req) const
    {
        return channel.rowOpen(req.coord.rank, req.coord.bank,
                               req.coord.row);
    }

    /** Is @p req's bank close to a forced refresh (aware mode)? */
    bool
    refreshUrgent(const MemRequest &req) const
    {
        return refresh &&
               refresh->drainBoost(req.coord.rank, req.coord.bank);
    }
};

/**
 * Read access to a controller's pending read queue (PAR-BS batching).
 */
class QueueView
{
  public:
    virtual ~QueueView() = default;

    /** Visit every queued (not yet issued) read request. */
    virtual void
    forEachPendingRead(const std::function<void(MemRequest &)> &fn) = 0;
};

/**
 * Abstract scheduling policy.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Policy name ("fr-fcfs", "tcm", ...). */
    virtual std::string name() const = 0;

    /**
     * Strict "a before b" priority over read requests. Must be a
     * strict weak ordering; controllers use it both to pick the next
     * request and to guard precharges (a request may close a row only
     * if no higher-priority request wants it).
     */
    virtual bool higherPriority(const MemRequest &a, const MemRequest &b,
                                const SchedContext &ctx) const = 0;

    /** Called once per memory-bus cycle by the system. */
    virtual void tick(Cycle now) { (void)now; }

    /** A read entered some controller's queue. */
    virtual void onEnqueue(MemRequest &req) { (void)req; }

    /** A read left a queue (its column command issued). */
    virtual void onDequeue(const MemRequest &req) { (void)req; }

    /** A read's data returned. */
    virtual void
    onComplete(const MemRequest &req, Cycle now)
    {
        (void)req;
        (void)now;
    }

    /** New interval profiles are available (TCM clustering). */
    virtual void
    onIntervalProfiles(const std::vector<ThreadMemProfile> &profiles)
    {
        (void)profiles;
    }

    /** Give batch-forming schedulers access to all read queues. */
    virtual void attachQueueView(QueueView *view) { (void)view; }
};

/**
 * Age order shared by every policy as the final tiebreak: true when
 * @p a is strictly older than @p b.
 */
inline bool
olderFirst(const MemRequest &a, const MemRequest &b)
{
    if (a.enqueueCycle != b.enqueueCycle)
        return a.enqueueCycle < b.enqueueCycle;
    return a.id < b.id;
}

} // namespace dbpsim

#endif // DBPSIM_MEM_SCHEDULER_HH
