/**
 * @file
 * Per-thread memory-behaviour summary for one profiling interval.
 * Produced by the ThreadProfiler, consumed by partitioning policies
 * (DBP, MCP) and by profile-driven schedulers (TCM).
 */

#ifndef DBPSIM_MEM_THREAD_PROFILE_HH
#define DBPSIM_MEM_THREAD_PROFILE_HH

#include <cstdint>

namespace dbpsim {

/**
 * One thread's measured memory characteristics over an interval.
 */
struct ThreadMemProfile
{
    /** DRAM requests per kilo-instruction (memory intensity). */
    double mpki = 0.0;

    /**
     * Intrinsic row-buffer hit rate, measured on per-thread shadow row
     * buffers (i.e. the locality the thread would see without any
     * inter-thread interference).
     */
    double rowBufferHitRate = 0.0;

    /**
     * Bank-level parallelism: average number of banks holding at least
     * one of the thread's outstanding requests, averaged over cycles
     * in which the thread had any request outstanding. Note: censored
     * by the current partition (a thread confined to k banks cannot
     * exhibit BLP > k), so demand estimation must not rely on it.
     */
    double blp = 0.0;

    /**
     * Memory-level parallelism: average number of outstanding requests
     * over cycles with at least one outstanding. Determined by the
     * core's window/MSHRs and the program, not by the bank partition.
     */
    double mlp = 0.0;

    /**
     * Distinct-row parallelism: average number of distinct (bank, row)
     * targets among the thread's outstanding requests, over cycles
     * with at least one outstanding. The partition-invariant measure
     * of how many banks the thread could use concurrently: a single
     * sequential stream targets ~1 row at a time however many banks
     * it owns, while k concurrent streams target k distinct rows even
     * when squeezed into one bank.
     */
    double rowParallelism = 0.0;

    /** DRAM requests issued during the interval. */
    std::uint64_t requests = 0;

    /** Instructions retired during the interval. */
    std::uint64_t instructions = 0;

    /** Distinct OS pages touched so far (footprint, cumulative). */
    std::uint64_t footprintPages = 0;
};

} // namespace dbpsim

#endif // DBPSIM_MEM_THREAD_PROFILE_HH
