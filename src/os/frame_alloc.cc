#include "os/frame_alloc.hh"

#include "common/log.hh"

namespace dbpsim {

FrameAllocator::FrameAllocator(const AddressMap &map)
    : map_(map), colorAware_(map.supportsBankColoring())
{
    if (colorAware_) {
        framesPerColor_ = map.framesPerColor();
        bump_.assign(map.numColors(), 0);
        freeLists_.resize(map.numColors());
    } else {
        framesPerColor_ = map.geometry().totalFrames();
        bump_.assign(1, 0);
        freeLists_.resize(1);
    }
}

bool
FrameAllocator::allocateInColor(unsigned color, std::uint64_t &frame)
{
    DBP_ASSERT(color < bump_.size(), "color out of range");
    auto &fl = freeLists_[color];
    if (!fl.empty()) {
        frame = fl.back();
        fl.pop_back();
        statAllocs.inc();
        return true;
    }
    if (bump_[color] < framesPerColor_) {
        std::uint64_t idx = bump_[color]++;
        frame = colorAware_ ? map_.frameOfColorIndex(color, idx) : idx;
        statAllocs.inc();
        return true;
    }
    return false;
}

std::uint64_t
FrameAllocator::allocate(const std::vector<unsigned> &colors,
                         std::size_t &cursor, bool *fell_back)
{
    DBP_ASSERT(colorAware_, "colored allocation on a non-colorable map");
    DBP_ASSERT(!colors.empty(), "empty color set");
    for (std::size_t tries = 0; tries < colors.size(); ++tries) {
        unsigned color = colors[cursor % colors.size()];
        cursor = (cursor + 1) % colors.size();
        std::uint64_t frame;
        if (allocateInColor(color, frame))
            return frame;
    }
    // The allowed set is exhausted: fall back to any machine color so
    // the run degrades (nonconforming pages a later migrate() can fix)
    // instead of dying on what is usually a footprint/partition
    // mismatch, not a capacity bug.
    for (unsigned c = 0; c < numColors(); ++c) {
        std::uint64_t frame;
        if (allocateInColor(c, frame)) {
            statFallbackAllocs.inc();
            if (fell_back)
                *fell_back = true;
            return frame;
        }
    }
    fatal("out of physical memory: all ", numColors(),
          " bank colors exhausted machine-wide");
}

std::uint64_t
FrameAllocator::allocateAny()
{
    std::uint64_t frame;
    if (colorAware_) {
        for (unsigned c = 0; c < bump_.size(); ++c)
            if (allocateInColor(c, frame))
                return frame;
    } else {
        if (allocateInColor(0, frame))
            return frame;
    }
    fatal("out of physical memory");
}

void
FrameAllocator::release(std::uint64_t frame)
{
    unsigned color = colorAware_ ? map_.colorOfFrame(frame) : 0;
    freeLists_[color].push_back(frame);
    statReleases.inc();
}

std::uint64_t
FrameAllocator::freeInColor(unsigned color) const
{
    DBP_ASSERT(color < bump_.size(), "color out of range");
    return (framesPerColor_ - bump_[color]) + freeLists_[color].size();
}

std::uint64_t
FrameAllocator::totalFree() const
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < bump_.size(); ++c)
        total += freeInColor(c);
    return total;
}

} // namespace dbpsim
