/**
 * @file
 * Physical frame allocator with bank-color awareness.
 *
 * When the address map supports bank coloring (PageInterleave), free
 * frames are tracked per color so the OS can honour per-thread color
 * sets (the enforcement mechanism of every partitioning policy). Each
 * color uses a bump pointer over its virgin frames plus a LIFO free
 * list of released frames, so no frame list is ever materialized.
 */

#ifndef DBPSIM_OS_FRAME_ALLOC_HH
#define DBPSIM_OS_FRAME_ALLOC_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "dram/addr_map.hh"

namespace dbpsim {

/**
 * The frame allocator.
 */
class FrameAllocator
{
  public:
    /** @param map Address map; defines frame count and coloring. */
    explicit FrameAllocator(const AddressMap &map);

    /**
     * Allocate one frame from @p color. Returns the frame number, or
     * fails (returns false) when the color is exhausted.
     */
    bool allocateInColor(unsigned color, std::uint64_t &frame);

    /**
     * Allocate from the first non-exhausted color in @p colors,
     * starting at @p cursor (advanced round-robin, wrapping). Spreads
     * a thread's pages across its colors to preserve intra-thread
     * bank-level parallelism.
     *
     * When every allowed color is exhausted the allocator falls back
     * to any non-exhausted machine color (counted in
     * statFallbackAllocs; @p fell_back set when non-null) — the run
     * degrades with nonconforming pages instead of dying. fatal()s
     * only when the whole machine is out of frames.
     */
    std::uint64_t allocate(const std::vector<unsigned> &colors,
                           std::size_t &cursor,
                           bool *fell_back = nullptr);

    /**
     * Allocate ignoring colors (for non-colorable address maps).
     */
    std::uint64_t allocateAny();

    /** Return a frame to its color's free list. */
    void release(std::uint64_t frame);

    /** Free frames remaining in @p color. */
    std::uint64_t freeInColor(unsigned color) const;

    /** Free frames machine-wide. */
    std::uint64_t totalFree() const;

    /** True when per-color accounting is active. */
    bool colorAware() const { return colorAware_; }

    /** Number of colors (1 when not color-aware). */
    unsigned numColors() const
    {
        return static_cast<unsigned>(bump_.size());
    }

    /** Allocations performed (stat). */
    StatScalar statAllocs;

    /** Releases performed (stat). */
    StatScalar statReleases;

    /** Allocations that fell outside the allowed color set (stat). */
    StatScalar statFallbackAllocs;

  private:
    const AddressMap &map_;
    bool colorAware_;
    std::uint64_t framesPerColor_;

    /** Next virgin frame index per color. */
    std::vector<std::uint64_t> bump_;

    /** Released frames per color (LIFO). */
    std::vector<std::vector<std::uint64_t>> freeLists_;
};

} // namespace dbpsim

#endif // DBPSIM_OS_FRAME_ALLOC_HH
