#include "os/os_memory.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

OsMemory::OsMemory(const AddressMap &map, unsigned num_threads)
    : map_(map), allocator_(map), pageBytes_(map.geometry().pageBytes)
{
    DBP_ASSERT(num_threads > 0, "OsMemory needs >= 1 thread");
    tables_.resize(num_threads);
    cursors_.assign(num_threads, 0);

    // Default: every thread may use every color (unpartitioned).
    std::vector<unsigned> all;
    if (allocator_.colorAware()) {
        all.resize(map.numColors());
        for (unsigned c = 0; c < map.numColors(); ++c)
            all[c] = c;
    }
    colorSets_.assign(num_threads, all);
    fallbackWarned_.assign(num_threads, 0);
    lazyEnabled_.assign(num_threads, false);
    nonconformingCount_.assign(num_threads, 0);
    lazyTokens_.assign(num_threads, 0);

    // Stagger the initial round-robin cursors so co-running threads do
    // not allocate their first pages in the same bank sequence.
    for (unsigned t = 0; t < num_threads; ++t)
        cursors_[t] = all.empty() ? 0 : (t * 3) % all.size();
}

std::size_t
OsMemory::idx(ThreadId tid) const
{
    DBP_ASSERT(tid >= 0 && static_cast<std::size_t>(tid) < tables_.size(),
               "thread id " << tid << " out of range");
    return static_cast<std::size_t>(tid);
}

void
OsMemory::notifyFrame(ThreadId tid, std::uint64_t frame)
{
    if (partObserver_ && allocator_.colorAware())
        partObserver_->onFrameAllocated(tid, map_.colorOfFrame(frame));
}

std::uint64_t
OsMemory::allocateFor(ThreadId tid)
{
    std::size_t t = idx(tid);
    bool fell_back = false;
    std::uint64_t frame =
        allocator_.allocate(colorSets_[t], cursors_[t], &fell_back);
    if (fell_back && !fallbackWarned_[t]) {
        fallbackWarned_[t] = 1;
        warn("thread ", tid, ": color set (", colorSets_[t].size(),
             " colors) exhausted; allocating outside the partition "
             "(reported once per thread; see fallback_allocs)");
    }
    return frame;
}

Addr
OsMemory::translate(ThreadId tid, Addr vaddr)
{
    std::size_t t = idx(tid);
    std::uint64_t vpage = vaddr / pageBytes_;
    std::uint64_t offset = vaddr % pageBytes_;

    std::uint64_t frame;
    if (!tables_[t].lookup(vpage, frame)) {
        if (allocator_.colorAware())
            frame = allocateFor(tid);
        else
            frame = allocator_.allocateAny();
        tables_[t].map(vpage, frame);
        notifyFrame(tid, frame);
    } else if (lazyEnabled_[t] && nonconformingCount_[t] > 0 &&
               ++lazyTokens_[t] >= lazyPeriod_) {
        // Lazy migrate-on-touch: a re-accessed page outside the color
        // set is remapped into it, at most once per lazyPeriod_
        // translations (bounds copy traffic under random access).
        unsigned color = map_.colorOfFrame(frame);
        const auto &set = colorSets_[t];
        if (!std::binary_search(set.begin(), set.end(), color)) {
            std::uint64_t moved = allocateFor(tid);
            tables_[t].remap(vpage, moved);
            notifyFrame(tid, moved);
            allocator_.release(frame);
            pendingMoves_.emplace_back(color,
                                       map_.colorOfFrame(moved));
            --nonconformingCount_[t];
            lazyTokens_[t] = 0;
            statMigratedPages.inc();
            frame = moved;
        }
    }
    return frame * pageBytes_ + offset;
}

void
OsMemory::setLazyMigration(ThreadId tid, bool enabled)
{
    std::size_t t = idx(tid);
    if (!allocator_.colorAware()) {
        lazyEnabled_[t] = false;
        return;
    }
    lazyEnabled_[t] = enabled;
    if (enabled)
        nonconformingCount_[t] = nonconformingPages(tid);
}

std::vector<std::pair<unsigned, unsigned>>
OsMemory::drainLazyMoves()
{
    std::vector<std::pair<unsigned, unsigned>> out;
    out.swap(pendingMoves_);
    return out;
}

void
OsMemory::setLazyPeriod(std::uint32_t period)
{
    DBP_ASSERT(period > 0, "lazy period must be >= 1");
    lazyPeriod_ = period;
}

void
OsMemory::setColorSet(ThreadId tid, std::vector<unsigned> colors)
{
    std::size_t t = idx(tid);
    if (!allocator_.colorAware()) {
        warn("setColorSet ignored: address map cannot color frames");
        return;
    }
    DBP_ASSERT(!colors.empty(), "thread " << tid << " given empty colors");
    for (unsigned c : colors)
        DBP_ASSERT(c < map_.numColors(), "color " << c << " out of range");
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    colorSets_[t] = std::move(colors);
    cursors_[t] %= colorSets_[t].size();
    if (partObserver_)
        partObserver_->onColorSet(tid, colorSets_[t]);
    if (lazyEnabled_[t])
        nonconformingCount_[t] = nonconformingPages(tid);
}

const std::vector<unsigned> &
OsMemory::colorSet(ThreadId tid) const
{
    return colorSets_[idx(tid)];
}

std::size_t
OsMemory::mappedPages(ThreadId tid) const
{
    return tables_[idx(tid)].size();
}

std::uint64_t
OsMemory::nonconformingPages(ThreadId tid) const
{
    std::size_t t = idx(tid);
    if (!allocator_.colorAware())
        return 0;
    const auto &set = colorSets_[t];
    std::uint64_t count = 0;
    tables_[t].forEach([&](std::uint64_t, std::uint64_t frame) {
        unsigned color = map_.colorOfFrame(frame);
        if (!std::binary_search(set.begin(), set.end(), color))
            ++count;
    });
    return count;
}

MigrationResult
OsMemory::migrate(ThreadId tid, std::uint64_t max_pages)
{
    std::size_t t = idx(tid);
    MigrationResult result;
    if (!allocator_.colorAware())
        return result;

    const auto &set = colorSets_[t];

    // Collect nonconforming pages first (mutating inside forEach is
    // not allowed).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> victims;
    tables_[t].forEach([&](std::uint64_t vpage, std::uint64_t frame) {
        unsigned color = map_.colorOfFrame(frame);
        if (!std::binary_search(set.begin(), set.end(), color))
            victims.emplace_back(vpage, frame);
    });

    for (const auto &[vpage, old_frame] : victims) {
        if (max_pages != 0 && result.pages >= max_pages)
            break;
        std::uint64_t new_frame = allocateFor(tid);
        tables_[t].remap(vpage, new_frame);
        notifyFrame(tid, new_frame);
        allocator_.release(old_frame);
        result.moves.emplace_back(map_.colorOfFrame(old_frame),
                                  map_.colorOfFrame(new_frame));
        ++result.pages;
    }
    statMigratedPages.inc(result.pages);
    if (lazyEnabled_[t]) {
        DBP_ASSERT(nonconformingCount_[t] >= result.pages,
                   "lazy nonconforming count out of sync");
        nonconformingCount_[t] -= result.pages;
    }
    return result;
}

} // namespace dbpsim
