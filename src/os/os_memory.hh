/**
 * @file
 * The OS virtual-memory model: per-thread page tables over a shared
 * color-aware frame allocator. This is the enforcement point of every
 * partitioning policy — a thread's pages land only in its assigned
 * bank colors, and repartitioning migrates nonconforming pages.
 */

#ifndef DBPSIM_OS_OS_MEMORY_HH
#define DBPSIM_OS_OS_MEMORY_HH

#include <cstdint>
#include <vector>

#include "check/observer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/addr_map.hh"
#include "os/frame_alloc.hh"
#include "os/page_table.hh"

namespace dbpsim {

/**
 * Result of a migration pass: which colors exchanged pages, so the
 * caller can charge the DRAM-traffic cost to the affected banks.
 */
struct MigrationResult
{
    /** Number of pages moved. */
    std::uint64_t pages = 0;

    /** (source color, destination color) per moved page. */
    std::vector<std::pair<unsigned, unsigned>> moves;
};

/**
 * Per-thread virtual memory over shared physical frames.
 */
class OsMemory
{
  public:
    /**
     * @param map Address map (shared with the memory system).
     * @param num_threads Hardware threads; ids are [0, num_threads).
     */
    OsMemory(const AddressMap &map, unsigned num_threads);

    /**
     * Translate a virtual address, allocating a frame on first touch
     * from the thread's current color set.
     */
    Addr translate(ThreadId tid, Addr vaddr);

    /**
     * Set the colors thread @p tid may allocate from. Affects future
     * allocations only; call migrate() to move existing pages.
     * Ignored (with a warning) when the map cannot color frames.
     */
    void setColorSet(ThreadId tid, std::vector<unsigned> colors);

    /** Current color set of a thread. */
    const std::vector<unsigned> &colorSet(ThreadId tid) const;

    /**
     * Move pages of @p tid that live outside its color set into it,
     * up to @p max_pages (0 = unlimited). Returns what moved.
     */
    MigrationResult migrate(ThreadId tid, std::uint64_t max_pages);

    /**
     * Enable/disable lazy migrate-on-touch for @p tid: whenever the
     * thread accesses a page outside its color set (rate limited to
     * one move per @p lazyPeriod translations), the page is remapped
     * into the set and the move is queued for cost accounting.
     */
    void setLazyMigration(ThreadId tid, bool enabled);

    /** Moves performed lazily since the last drain (src, dst colors). */
    std::vector<std::pair<unsigned, unsigned>> drainLazyMoves();

    /** Translations between lazy moves (rate limit; default 8). */
    void setLazyPeriod(std::uint32_t period);

    /** Pages currently mapped for a thread. */
    std::size_t mappedPages(ThreadId tid) const;

    /** Count of @p tid's pages outside its current color set. */
    std::uint64_t nonconformingPages(ThreadId tid) const;

    /** The shared allocator (tests / capacity checks). */
    const FrameAllocator &allocator() const { return allocator_; }

    /** Number of threads. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(tables_.size());
    }

    /** OS page size in bytes. */
    std::uint64_t pageBytes() const { return pageBytes_; }

    /** Total pages migrated so far (stat). */
    StatScalar statMigratedPages;

    /**
     * Attach a partition observer (protocol checker): it is notified
     * of every color-set adoption and of the color of every frame
     * allocated or migrated into. Pass nullptr to detach. Not owned.
     */
    void setPartitionObserver(PartitionObserver *observer)
    {
        partObserver_ = observer;
    }

  private:
    /** Bounds-check a thread id. */
    std::size_t idx(ThreadId tid) const;

    /** Report a frame grant to the partition observer (if any). */
    void notifyFrame(ThreadId tid, std::uint64_t frame);

    /**
     * Allocate from @p tid's color set, warning once per thread when
     * the set is exhausted and the allocator falls back machine-wide.
     */
    std::uint64_t allocateFor(ThreadId tid);

    const AddressMap &map_;
    FrameAllocator allocator_;
    std::uint64_t pageBytes_;
    PartitionObserver *partObserver_ = nullptr;

    std::vector<PageTable> tables_;
    std::vector<std::vector<unsigned>> colorSets_;
    std::vector<std::size_t> cursors_; ///< round-robin color cursor.

    /** Per-thread one-shot color-exhaustion warning latch. */
    std::vector<char> fallbackWarned_;

    /** @name Lazy migrate-on-touch state. */
    /// @{
    std::vector<bool> lazyEnabled_;
    std::vector<std::uint64_t> nonconformingCount_;
    std::vector<std::uint32_t> lazyTokens_;
    std::uint32_t lazyPeriod_ = 8;
    std::vector<std::pair<unsigned, unsigned>> pendingMoves_;
    /// @}
};

} // namespace dbpsim

#endif // DBPSIM_OS_OS_MEMORY_HH
