#include "os/page_table.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace dbpsim {

bool
PageTable::lookup(std::uint64_t vpage, std::uint64_t &frame) const
{
    auto it = table_.find(vpage);
    if (it == table_.end())
        return false;
    frame = it->second;
    return true;
}

void
PageTable::map(std::uint64_t vpage, std::uint64_t frame)
{
    auto [it, inserted] = table_.emplace(vpage, frame);
    (void)it;
    DBP_ASSERT(inserted, "vpage " << vpage << " already mapped");
}

void
PageTable::remap(std::uint64_t vpage, std::uint64_t frame)
{
    auto it = table_.find(vpage);
    DBP_ASSERT(it != table_.end(), "remap of unmapped vpage " << vpage);
    it->second = frame;
}

void
PageTable::unmap(std::uint64_t vpage)
{
    std::size_t erased = table_.erase(vpage);
    DBP_ASSERT(erased == 1, "unmap of unmapped vpage " << vpage);
}

void
PageTable::forEach(
    const std::function<void(std::uint64_t, std::uint64_t)> &fn) const
{
    // Visit in ascending vpage order: callers pick migration victims
    // and build statistics during this walk, so hash order would leak
    // implementation-defined behaviour into results.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    entries.reserve(table_.size());
    // dbplint:allow(unordered-iter) reason=entries are collected then sorted by vpage before any caller-visible emission
    for (const auto &kv : table_)
        entries.emplace_back(kv.first, kv.second);
    std::sort(entries.begin(), entries.end());
    for (const auto &[vpage, frame] : entries)
        fn(vpage, frame);
}

} // namespace dbpsim
