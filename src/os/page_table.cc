#include "os/page_table.hh"

#include "common/log.hh"

namespace dbpsim {

bool
PageTable::lookup(std::uint64_t vpage, std::uint64_t &frame) const
{
    auto it = table_.find(vpage);
    if (it == table_.end())
        return false;
    frame = it->second;
    return true;
}

void
PageTable::map(std::uint64_t vpage, std::uint64_t frame)
{
    auto [it, inserted] = table_.emplace(vpage, frame);
    (void)it;
    DBP_ASSERT(inserted, "vpage " << vpage << " already mapped");
}

void
PageTable::remap(std::uint64_t vpage, std::uint64_t frame)
{
    auto it = table_.find(vpage);
    DBP_ASSERT(it != table_.end(), "remap of unmapped vpage " << vpage);
    it->second = frame;
}

void
PageTable::unmap(std::uint64_t vpage)
{
    std::size_t erased = table_.erase(vpage);
    DBP_ASSERT(erased == 1, "unmap of unmapped vpage " << vpage);
}

void
PageTable::forEach(
    const std::function<void(std::uint64_t, std::uint64_t)> &fn) const
{
    for (const auto &kv : table_)
        fn(kv.first, kv.second);
}

} // namespace dbpsim
