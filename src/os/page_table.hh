/**
 * @file
 * A per-thread virtual-page -> physical-frame table. Kept deliberately
 * simple: the OS model allocates on first touch and never swaps.
 */

#ifndef DBPSIM_OS_PAGE_TABLE_HH
#define DBPSIM_OS_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hh"

namespace dbpsim {

/**
 * Virtual page number -> physical frame number map for one thread.
 */
class PageTable
{
  public:
    PageTable() = default;

    /** Look up @p vpage; returns true and sets @p frame on a hit. */
    bool lookup(std::uint64_t vpage, std::uint64_t &frame) const;

    /** Install a mapping; @p vpage must not already be mapped. */
    void map(std::uint64_t vpage, std::uint64_t frame);

    /** Replace an existing mapping (page migration). */
    void remap(std::uint64_t vpage, std::uint64_t frame);

    /** Remove a mapping; @p vpage must be mapped. */
    void unmap(std::uint64_t vpage);

    /** Number of mapped pages. */
    std::size_t size() const { return table_.size(); }

    /**
     * Visit every (vpage, frame) pair in ascending vpage order (the
     * order is part of the determinism contract: migration victim
     * selection walks this). Mutation during visit is UB.
     */
    void forEach(
        const std::function<void(std::uint64_t, std::uint64_t)> &fn) const;

  private:
    // dbplint:allow(unordered-decl) reason=lookups are point queries; the only iteration is forEach which sorts by vpage before visiting
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

} // namespace dbpsim

#endif // DBPSIM_OS_PAGE_TABLE_HH
