#include "part/manager.hh"

#include <map>

#include "common/log.hh"

namespace dbpsim {

MigrationMode
migrationModeByName(const std::string &name)
{
    if (name == "none")
        return MigrationMode::None;
    if (name == "lazy")
        return MigrationMode::Lazy;
    if (name == "eager")
        return MigrationMode::Eager;
    if (name == "free")
        return MigrationMode::EagerFree;
    fatal("unknown migration mode '", name,
          "' (expected none|lazy|eager|free)");
}

PartitionManager::PartitionManager(
    std::unique_ptr<PartitionPolicy> policy, OsMemory &os,
    std::vector<MemoryController *> controllers, const AddressMap &map,
    PartitionManagerParams params)
    : policy_(std::move(policy)), os_(os),
      controllers_(std::move(controllers)), map_(map), params_(params)
{
    DBP_ASSERT(policy_ != nullptr, "manager needs a policy");
    DBP_ASSERT(controllers_.size() == map_.geometry().channels,
               "need one controller per channel");
    if (policy_->name() != "none" && !map_.supportsBankColoring())
        fatal("partition policy '", policy_->name(),
              "' requires the page-interleaved address map ",
              "(scheme=page, bank_xor=off)");

    // One page = pageBytes/lineBytes bursts of tBURST each, read at
    // the source and written at the destination.
    const auto &geom = map_.geometry();
    Cycle burst = controllers_.empty()
        ? 4
        : controllers_[0]->channel().timing().tBURST;
    pageMoveCost_ = (geom.pageBytes / geom.lineBytes) * burst;
}

void
PartitionManager::start()
{
    apply(policy_->initialAssignment());
}

void
PartitionManager::onInterval(const std::vector<ThreadMemProfile> &profiles,
                             Cycle mem_now)
{
    auto next = policy_->onInterval(profiles);
    if (next) {
        statRepartitions.inc();
        apply(*next);
    }
    // The background copy engine runs every interval, continuing any
    // migration the per-interval budget could not finish earlier.
    migrateStep(mem_now);
}

void
PartitionManager::apply(const PartitionAssignment &assignment)
{
    DBP_ASSERT(assignment.size() == os_.numThreads(),
               "assignment size != thread count");
    current_ = assignment;

    if (!map_.supportsBankColoring())
        return; // "none" policy on a non-colorable map: nothing to do.

    for (unsigned t = 0; t < assignment.size(); ++t) {
        auto tid = static_cast<ThreadId>(t);
        os_.setColorSet(tid, assignment[t]);
        os_.setLazyMigration(
            tid, params_.migration == MigrationMode::Lazy &&
                     policy_->shouldMigrate(t));
    }
}

void
PartitionManager::applyLazyMoves(
    const std::vector<std::pair<unsigned, unsigned>> &moves,
    Cycle mem_now)
{
    statPagesMigrated.inc(moves.size());
    std::map<unsigned, Cycle> bank_busy;
    for (const auto &[src, dst] : moves) {
        bank_busy[src] += pageMoveCost_;
        bank_busy[dst] += pageMoveCost_;
    }
    for (const auto &[color, busy] : bank_busy) {
        auto loc = map_.colorLocation(color);
        DBP_ASSERT(loc.channel < controllers_.size(),
                   "color channel out of range");
        controllers_[loc.channel]->applyMigrationCost(loc.rank, loc.bank,
                                                      mem_now, busy);
    }
}

void
PartitionManager::migrateStep(Cycle mem_now)
{
    if (params_.migration == MigrationMode::None ||
        params_.migration == MigrationMode::Lazy ||
        !map_.supportsBankColoring())
        return;

    // Budget shared across threads: round-robin so no thread hogs the
    // copy engine.
    std::uint64_t budget = params_.maxMigratePages;
    bool unlimited = budget == 0;
    std::map<unsigned, Cycle> bank_busy;
    for (unsigned t = 0; t < os_.numThreads(); ++t) {
        if (!unlimited && budget == 0)
            break;
        if (!policy_->shouldMigrate(t))
            continue;
        std::uint64_t share = unlimited
            ? 0
            : std::max<std::uint64_t>(1,
                  budget / (os_.numThreads() - t));
        MigrationResult moved =
            os_.migrate(static_cast<ThreadId>(t), share);
        if (!unlimited)
            budget -= std::min(budget, moved.pages);
        statPagesMigrated.inc(moved.pages);
        if (params_.migration == MigrationMode::EagerFree)
            continue;
        for (const auto &[src, dst] : moved.moves) {
            bank_busy[src] += pageMoveCost_;
            bank_busy[dst] += pageMoveCost_;
        }
    }
    for (const auto &[color, busy] : bank_busy) {
        auto loc = map_.colorLocation(color);
        DBP_ASSERT(loc.channel < controllers_.size(),
                   "color channel out of range");
        controllers_[loc.channel]->applyMigrationCost(loc.rank, loc.bank,
                                                      mem_now, busy);
    }
}

} // namespace dbpsim
