/**
 * @file
 * The PartitionManager connects a PartitionPolicy to the machine: it
 * pushes color sets into the OS allocator, migrates nonconforming
 * pages when a new partition is adopted, and charges the migration's
 * DRAM traffic to the involved banks (each migrated page costs one
 * page worth of read bursts at the source bank and write bursts at
 * the destination bank).
 */

#ifndef DBPSIM_PART_MANAGER_HH
#define DBPSIM_PART_MANAGER_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/controller.hh"
#include "os/os_memory.hh"
#include "part/policy.hh"

namespace dbpsim {

/** How adopted partitions treat already-allocated pages. */
enum class MigrationMode
{
    None,      ///< only future allocations follow the new partition.
    Lazy,      ///< migrate-on-touch, rate limited; cost charged.
    Eager,     ///< migrate now; DRAM cost charged to the banks.
    EagerFree, ///< migrate now at zero cost (idealized; ablations).
};

/** Parse "none" / "lazy" / "eager" / "free"; fatal() otherwise. */
MigrationMode migrationModeByName(const std::string &name);

/**
 * Manager configuration.
 */
struct PartitionManagerParams
{
    MigrationMode migration = MigrationMode::Lazy;

    /**
     * Global page-migration budget per profiling interval
     * (0 = unlimited). The copy engine works in the background: pages
     * left nonconforming by the budget are migrated in later
     * intervals. The budget bounds how long any single bank can be
     * occupied by copy traffic within one interval.
     */
    std::uint64_t maxMigratePages = 128;
};

/**
 * The manager.
 */
class PartitionManager
{
  public:
    /**
     * @param policy Decision logic (owned).
     * @param os OS memory model (enforcement point; not owned).
     * @param controllers One per channel, channel-indexed (not owned).
     * @param map Shared address map.
     */
    PartitionManager(std::unique_ptr<PartitionPolicy> policy,
                     OsMemory &os,
                     std::vector<MemoryController *> controllers,
                     const AddressMap &map,
                     PartitionManagerParams params = {});

    /** Apply the policy's initial assignment (call before running). */
    void start();

    /** Interval boundary: hand profiles to the policy, apply changes. */
    void onInterval(const std::vector<ThreadMemProfile> &profiles,
                    Cycle mem_now);

    /**
     * Charge lazily performed page moves (drained from the OS by the
     * system each memory cycle) to the involved banks.
     */
    void applyLazyMoves(
        const std::vector<std::pair<unsigned, unsigned>> &moves,
        Cycle mem_now);

    /** The current per-thread color sets. */
    const PartitionAssignment &assignment() const { return current_; }

    /** The decision policy. */
    PartitionPolicy &policy() { return *policy_; }
    const PartitionPolicy &policy() const { return *policy_; }

    /** @name Counters. */
    /// @{
    StatScalar statRepartitions;  ///< adopted partition changes.
    StatScalar statPagesMigrated; ///< pages physically moved.
    /// @}

  private:
    /** Push @p assignment into the OS. */
    void apply(const PartitionAssignment &assignment);

    /** One background-migration step within the global budget. */
    void migrateStep(Cycle mem_now);

    std::unique_ptr<PartitionPolicy> policy_;
    OsMemory &os_;
    std::vector<MemoryController *> controllers_;
    const AddressMap &map_;
    PartitionManagerParams params_;

    PartitionAssignment current_;
    Cycle pageMoveCost_; ///< bus cycles per page per side.
};

} // namespace dbpsim

#endif // DBPSIM_PART_MANAGER_HH
