#include "part/part_combined.hh"

#include "part/part_ubp.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.hh"

namespace dbpsim {

CombinedPolicy::CombinedPolicy(unsigned num_threads, unsigned channels,
                               unsigned ranks, unsigned banks,
                               DbpParams dbp, McpParams mcp,
                               unsigned subarrays)
    : numThreads_(num_threads), channels_(channels), ranks_(ranks),
      banks_(banks), subs_(subarrays), dbpParams_(dbp),
      mcp_(num_threads, channels, ranks, banks, mcp, subarrays)
{
    DBP_ASSERT(num_threads > 0, "dbp-mcp needs >= 1 thread");
    DBP_ASSERT(subarrays > 0, "dbp-mcp needs >= 1 subarray per bank");
    currentLight_.assign(num_threads, false);
}

PartitionAssignment
CombinedPolicy::initialAssignment()
{
    // Before any profile: the equal bank split over all channels
    // (same safe start as DBP).
    UbpPolicy equal(numThreads_, channels_, ranks_, banks_, subs_);
    current_ = equal.initialAssignment();
    currentLight_.assign(numThreads_, false);
    return current_;
}

std::vector<unsigned>
CombinedPolicy::groupColors(
    const std::vector<unsigned> &channel_list) const
{
    // Walk the machine-wide spreading order and keep the group's
    // channels, so slices inside the group still alternate across its
    // channels and ranks.
    auto order =
        channelSpreadColorOrder(channels_, ranks_, banks_, subs_);
    std::vector<unsigned> out;
    for (unsigned color : order) {
        unsigned chan = color / (ranks_ * banks_ * subs_);
        if (std::find(channel_list.begin(), channel_list.end(), chan) !=
            channel_list.end())
            out.push_back(color);
    }
    return out;
}

void
CombinedPolicy::splitGroup(const std::vector<unsigned> &members,
                           const std::vector<unsigned> &colors,
                           const std::vector<ThreadMemProfile> &profiles,
                           PartitionAssignment &out) const
{
    DBP_ASSERT(!members.empty() && !colors.empty(),
               "empty group in dbp-mcp split");

    // Separate light members (MCP can co-locate its low-intensity
    // group with an intensive group on the same channels): lights
    // share a small tail slice, heavies split the rest.
    std::vector<unsigned> lights, heavies;
    for (unsigned t : members) {
        if (profiles[t].mpki < dbpParams_.lightMpki)
            lights.push_back(t);
        else
            heavies.push_back(t);
    }
    if (heavies.empty() || colors.size() < members.size()) {
        for (unsigned t : members)
            out[t] = colors;
        return;
    }

    // Bank-unit knobs scale to subarray colors.
    const unsigned stream_colors = dbpParams_.streamBanks * subs_;

    std::vector<unsigned> heavy_colors = colors;
    if (!lights.empty()) {
        auto light_banks = static_cast<unsigned>(std::ceil(
            dbpParams_.lightBanksPerThread *
            static_cast<double>(lights.size()))) * subs_;
        unsigned cap = std::max(1u, static_cast<unsigned>(
            dbpParams_.lightShareCap *
            static_cast<double>(colors.size())));
        light_banks = std::clamp(light_banks, 1u, cap);
        while (light_banks > 1 &&
               colors.size() - light_banks < heavies.size())
            --light_banks;
        std::vector<unsigned> light_set(
            colors.end() - light_banks, colors.end());
        for (unsigned t : lights)
            out[t] = light_set;
        heavy_colors.resize(colors.size() - light_banks);
    }
    const std::vector<unsigned> &members_h = heavies;
    const std::vector<unsigned> &colors_h = heavy_colors;

    // Equal base among the heavy members.
    unsigned n = static_cast<unsigned>(members_h.size());
    unsigned eq = static_cast<unsigned>(colors_h.size()) / n;
    unsigned extra = static_cast<unsigned>(colors_h.size()) % n;
    std::vector<unsigned> base(members_h.size());
    for (std::size_t i = 0; i < members_h.size(); ++i)
        base[i] = eq + (i < extra ? 1 : 0);

    // Streaming donors keep streamBanks; surplus to receivers by
    // row-miss intensity (same rules as DbpPolicy).
    std::vector<bool> donor(members_h.size(), false);
    unsigned surplus = 0;
    for (std::size_t i = 0; i < members_h.size(); ++i) {
        const auto &p = profiles[members_h[i]];
        if (base[i] > stream_colors &&
            p.rowBufferHitRate >= dbpParams_.streamRbhr &&
            p.rowParallelism <= dbpParams_.maxDonorRows) {
            donor[i] = true;
            surplus += base[i] - stream_colors;
        }
    }
    std::vector<double> weight(members_h.size(), 0.0);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < members_h.size(); ++i) {
        if (donor[i])
            continue;
        const auto &p = profiles[members_h[i]];
        weight[i] = std::max(0.1,
                             p.mpki * (1.0 - p.rowBufferHitRate));
        weight_sum += weight[i];
    }
    std::vector<unsigned> share(members_h.size());
    if (weight_sum <= 0.0) {
        surplus = 0;
        std::fill(donor.begin(), donor.end(), false);
    }
    unsigned used = 0;
    std::vector<double> exact(members_h.size(), 0.0);
    for (std::size_t i = 0; i < members_h.size(); ++i) {
        if (donor[i]) {
            share[i] = stream_colors;
        } else {
            exact[i] = surplus * weight[i] /
                std::max(weight_sum, 1e-9);
            share[i] = base[i] + static_cast<unsigned>(exact[i]);
        }
        used += share[i];
    }
    std::size_t bump = 0;
    while (used < colors_h.size()) {
        // Leftover surplus: round-robin over receivers.
        std::size_t i = bump++ % members_h.size();
        if (donor[i])
            continue;
        ++share[i];
        ++used;
    }

    // Carve contiguous slices of the group's spread-ordered colors.
    std::size_t pos = 0;
    for (std::size_t i = 0; i < members_h.size(); ++i) {
        out[members_h[i]].clear();
        for (unsigned k = 0; k < share[i] && pos < colors_h.size(); ++k)
            out[members_h[i]].push_back(colors_h[pos++]);
        if (out[members_h[i]].empty()) // safety: never empty.
            out[members_h[i]].push_back(colors_h.back());
    }
}

std::optional<PartitionAssignment>
CombinedPolicy::onInterval(const std::vector<ThreadMemProfile> &profiles)
{
    DBP_ASSERT(profiles.size() == numThreads_,
               "dbp-mcp: profile vector size mismatch");

    if (intervalsSeen_ < dbpParams_.warmupIntervals) {
        ++intervalsSeen_;
        smoothed_ = profiles;
        return std::nullopt;
    }
    ++intervalsSeen_;

    if (smoothed_.empty()) {
        smoothed_ = profiles;
    } else {
        double a = dbpParams_.ewmaAlpha;
        for (unsigned t = 0; t < numThreads_; ++t) {
            ThreadMemProfile &s = smoothed_[t];
            const ThreadMemProfile &n = profiles[t];
            s.mpki = a * s.mpki + (1 - a) * n.mpki;
            s.rowBufferHitRate = a * s.rowBufferHitRate +
                (1 - a) * n.rowBufferHitRate;
            s.rowParallelism = a * s.rowParallelism +
                (1 - a) * n.rowParallelism;
            s.requests = n.requests;
        }
    }

    ++sinceRepartition_;
    if (sinceRepartition_ < dbpParams_.cooldownIntervals)
        return std::nullopt;

    // Channel groups from MCP's classification.
    auto chans = mcp_.channelAssignment(smoothed_);
    std::map<std::vector<unsigned>, std::vector<unsigned>> groups;
    for (unsigned t = 0; t < numThreads_; ++t)
        groups[chans[t]].push_back(t);

    PartitionAssignment next(numThreads_);
    for (const auto &[channel_list, members] : groups)
        splitGroup(members, groupColors(channel_list), smoothed_, next);

    if (next == current_)
        return std::nullopt;
    current_ = next;
    for (unsigned t = 0; t < numThreads_; ++t)
        currentLight_[t] =
            smoothed_[t].mpki < dbpParams_.lightMpki;
    ++repartitions_;
    sinceRepartition_ = 0;
    return next;
}

bool
CombinedPolicy::shouldMigrate(unsigned thread) const
{
    if (thread >= currentLight_.size())
        return true;
    return !currentLight_[thread];
}

} // namespace dbpsim
