/**
 * @file
 * DBP-MCP — the composition the paper's "comprehensive approach"
 * discussion points toward: first split channels among behaviour
 * groups (MCP's classification removes the worst cross-group
 * interference and channel contention), then apply DBP's
 * donor/receiver bank split *within* each channel group (removing the
 * intra-group bank conflicts MCP leaves behind). Implemented as an
 * extension beyond the paper's evaluated schemes.
 */

#ifndef DBPSIM_PART_PART_COMBINED_HH
#define DBPSIM_PART_PART_COMBINED_HH

#include "part/part_dbp.hh"
#include "part/part_mcp.hh"
#include "part/policy.hh"

namespace dbpsim {

/**
 * The combined channel+bank partitioning policy.
 */
class CombinedPolicy : public PartitionPolicy
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param channels / @p ranks / @p banks Machine geometry.
     * @param dbp DBP knobs (donor thresholds, smoothing, hysteresis).
     * @param mcp MCP knobs (grouping thresholds).
     * @param subarrays Colors per bank (subarray coloring). Bank-unit
     *        knobs (streamBanks, lightBanksPerThread) scale by this
     *        when group colors are carved.
     */
    CombinedPolicy(unsigned num_threads, unsigned channels,
                   unsigned ranks, unsigned banks, DbpParams dbp = {},
                   McpParams mcp = {}, unsigned subarrays = 1);

    std::string name() const override { return "dbp-mcp"; }

    PartitionAssignment initialAssignment() override;

    std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) override;

    /** Light threads' leftovers stay put (as in DBP/MCP). */
    bool shouldMigrate(unsigned thread) const override;

    /** Adopted repartitions so far. */
    std::uint64_t repartitions() const { return repartitions_; }

  private:
    /** Colors of @p channel_list, interleaved in spread order. */
    std::vector<unsigned>
    groupColors(const std::vector<unsigned> &channel_list) const;

    /**
     * DBP-style split of @p colors among @p members: equal base,
     * streaming donors keep streamBanks, surplus to receivers by
     * row-miss intensity. All-light groups share everything.
     */
    void splitGroup(const std::vector<unsigned> &members,
                    const std::vector<unsigned> &colors,
                    const std::vector<ThreadMemProfile> &profiles,
                    PartitionAssignment &out) const;

    unsigned numThreads_;
    unsigned channels_;
    unsigned ranks_;
    unsigned banks_;
    unsigned subs_;
    DbpParams dbpParams_;
    McpPolicy mcp_;

    std::vector<ThreadMemProfile> smoothed_;
    std::vector<bool> currentLight_;
    PartitionAssignment current_;
    unsigned intervalsSeen_ = 0;
    unsigned sinceRepartition_ = 0;
    std::uint64_t repartitions_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_PART_PART_COMBINED_HH
