#include "part/part_dbp.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"

namespace dbpsim {

DbpPolicy::DbpPolicy(unsigned num_threads, unsigned channels,
                     unsigned ranks, unsigned banks, DbpParams params,
                     unsigned subarrays)
    : numThreads_(num_threads), channels_(channels), ranks_(ranks),
      banks_(banks), subs_(subarrays),
      bankColors_(channels * ranks * banks),
      totalColors_(bankColors_ * subarrays), params_(params)
{
    DBP_ASSERT(num_threads > 0, "dbp needs >= 1 thread");
    DBP_ASSERT(totalColors_ > 0, "dbp needs >= 1 bank");
    DBP_ASSERT(subarrays > 0, "dbp needs >= 1 subarray per bank");
    if (params_.lightBanksPerThread <= 0.0)
        fatal("dbp: lightBanksPerThread must be > 0");
    if (params_.lightShareCap <= 0.0 || params_.lightShareCap > 1.0)
        fatal("dbp: lightShareCap out of (0,1]");
    spreadOrder_ =
        channelSpreadColorOrder(channels_, ranks_, banks_, subs_);
    spreadPos_.assign(totalColors_, 0);
    for (unsigned pos = 0; pos < totalColors_; ++pos)
        spreadPos_[spreadOrder_[pos]] = pos;
    owned_.resize(numThreads_);
}

void
DbpPolicy::clearOwnership()
{
    for (auto &o : owned_)
        o.clear();
    lightSet_.clear();
}

PartitionAssignment
DbpPolicy::initialAssignment()
{
    // No profile yet: start from the equal partition (what the paper
    // compares against, and a safe default until measurements exist).
    // Counts are in bank units (hysteresis compares against
    // bankShares); ownership is carved in colors, whole banks at a
    // time.
    std::vector<unsigned> counts(numThreads_, 0);
    if (bankColors_ >= numThreads_) {
        unsigned base = bankColors_ / numThreads_;
        unsigned extra = bankColors_ % numThreads_;
        for (unsigned t = 0; t < numThreads_; ++t)
            counts[t] = base + (t < extra ? 1 : 0);
    } else {
        std::fill(counts.begin(), counts.end(), 1u);
    }
    currentCounts_ = counts;
    currentLight_.assign(numThreads_, false);
    sharedAll_ = false;

    clearOwnership();
    if (bankColors_ >= numThreads_) {
        // Contiguous slices of the channel-spreading order.
        unsigned pos = 0;
        for (unsigned t = 0; t < numThreads_; ++t)
            for (unsigned i = 0; i < counts[t] * subs_; ++i)
                owned_[t].push_back(spreadOrder_[pos++]);
    } else {
        // Degenerate sharing: threads wrap around the banks.
        for (unsigned t = 0; t < numThreads_; ++t)
            for (unsigned s = 0; s < subs_; ++s)
                owned_[t].push_back(
                    spreadOrder_[(t % bankColors_) * subs_ + s]);
    }

    PartitionAssignment out(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        out[t] = owned_[t];
    return out;
}

std::vector<unsigned>
DbpPolicy::bankShares(const std::vector<ThreadMemProfile> &profiles) const
{
    DBP_ASSERT(profiles.size() == numThreads_,
               "dbp: profile vector size mismatch");

    std::vector<bool> light(numThreads_, false);
    unsigned light_count = 0;
    for (unsigned t = 0; t < numThreads_; ++t) {
        if (profiles[t].mpki < params_.lightMpki) {
            light[t] = true;
            ++light_count;
        }
    }

    std::vector<unsigned> shares(numThreads_, 0);

    // All threads light: no partitioning pressure — everyone shares
    // the whole machine.
    if (light_count == numThreads_) {
        std::fill(shares.begin(), shares.end(), bankColors_);
        return shares;
    }

    unsigned heavy_count = numThreads_ - light_count;

    // Light group size: proportional to membership, capped.
    unsigned light_banks = 0;
    if (light_count > 0) {
        light_banks = static_cast<unsigned>(std::ceil(
            params_.lightBanksPerThread * light_count));
        unsigned cap = std::max(1u, static_cast<unsigned>(
            params_.lightShareCap * bankColors_));
        light_banks = std::clamp(light_banks, 1u, cap);
    }
    // Every heavy thread needs at least one bank; shrink the light
    // group if necessary.
    while (light_banks > 1 && bankColors_ - light_banks < heavy_count)
        --light_banks;

    unsigned remaining = bankColors_ > light_banks
        ? bankColors_ - light_banks : 0;

    if (remaining < heavy_count) {
        // Pathological (more heavy threads than banks): every heavy
        // thread reports one bank; buildAssignment shares them.
        for (unsigned t = 0; t < numThreads_; ++t)
            shares[t] = light[t] ? std::max(1u, light_banks) : 1u;
        return shares;
    }

    // Base: the equal split of the heavy banks (remainder to the
    // lowest thread ids, like UBP). Bank utility is strongly concave
    // (fig2), so the equal share is close to throughput-optimal for
    // threads of comparable behaviour; the dynamic win comes from the
    // exceptions below, not from wholesale proportional dealing.
    std::vector<unsigned> base(numThreads_, 0);
    {
        unsigned eq = remaining / heavy_count;
        unsigned extra = remaining % heavy_count;
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (light[t])
                continue;
            base[t] = eq + (extra > 0 ? 1 : 0);
            if (extra > 0)
                --extra;
        }
    }

    // Donors: streaming threads (intrinsic RBHR >= streamRbhr) run
    // from the row buffer and need only streamBanks banks — measured
    // directly by the alone bank sweeps (fig2: libquantum saturates
    // by two banks). They donate the rest of their equal share.
    std::vector<bool> donor(numThreads_, false);
    unsigned surplus = 0;
    if (!params_.flatDemand) {
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (light[t] || base[t] <= params_.streamBanks)
                continue;
            // A donor must both run from the row buffer AND target
            // few rows concurrently; high-RBHR multi-stream apps
            // (bwaves-like) need a bank per stream and must not
            // donate. Row parallelism is partition invariant.
            if (profiles[t].rowBufferHitRate >= params_.streamRbhr &&
                profiles[t].rowParallelism <= params_.maxDonorRows) {
                donor[t] = true;
                surplus += base[t] - params_.streamBanks;
            }
        }
    }

    // Receivers: the remaining heavy threads, weighted by row-miss
    // intensity MPKI * (1 - RBHR) — the partition-invariant measure
    // of how much bank service each thread's misses demand (measured
    // BLP is censored by the current partition and useless here).
    std::vector<double> weight(numThreads_, 0.0);
    double weight_sum = 0.0;
    for (unsigned t = 0; t < numThreads_; ++t) {
        if (light[t] || donor[t])
            continue;
        weight[t] = std::max(0.1, profiles[t].mpki *
                             (1.0 - profiles[t].rowBufferHitRate));
        weight_sum += weight[t];
    }

    std::vector<unsigned> extra_share(numThreads_, 0);
    if (surplus > 0 && weight_sum > 0.0) {
        // Largest-remainder proportional split of the surplus.
        std::vector<double> exact(numThreads_, 0.0);
        unsigned used = 0;
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (light[t] || donor[t] || weight[t] <= 0.0)
                continue;
            exact[t] = surplus * weight[t] / weight_sum;
            extra_share[t] = static_cast<unsigned>(exact[t]);
            used += extra_share[t];
        }
        std::vector<unsigned> order;
        for (unsigned t = 0; t < numThreads_; ++t)
            if (!light[t] && !donor[t] && weight[t] > 0.0)
                order.push_back(t);
        std::sort(order.begin(), order.end(),
                  [&](unsigned a, unsigned b) {
                      double fa = exact[a] - std::floor(exact[a]);
                      double fb = exact[b] - std::floor(exact[b]);
                      if (fa != fb)
                          return fa > fb;
                      return a < b;
                  });
        std::size_t oi = 0;
        while (used < surplus && !order.empty()) {
            ++extra_share[order[oi % order.size()]];
            ++used;
            ++oi;
        }
    } else if (surplus > 0) {
        // Everyone heavy is a donor: nothing sensible to transfer.
        surplus = 0;
        std::fill(donor.begin(), donor.end(), false);
    }

    for (unsigned t = 0; t < numThreads_; ++t) {
        if (light[t])
            shares[t] = std::max(1u, light_banks);
        else if (donor[t])
            shares[t] = params_.streamBanks;
        else
            shares[t] = base[t] + extra_share[t];
    }
    return shares;
}

bool
DbpPolicy::shouldMigrate(unsigned thread) const
{
    if (thread >= currentLight_.size())
        return true; // before the first interval: no light info yet.
    return !currentLight_[thread];
}

std::optional<PartitionAssignment>
DbpPolicy::onInterval(const std::vector<ThreadMemProfile> &profiles)
{
    DBP_ASSERT(profiles.size() == numThreads_,
               "dbp: profile vector size mismatch");

    // Cold-start guard: the first intervals' profiles are dominated
    // by window fill and first-touch allocation; re-seed the smoother
    // and do not act on them.
    if (intervalsSeen_ < params_.warmupIntervals) {
        ++intervalsSeen_;
        smoothed_ = profiles;
        return std::nullopt;
    }
    ++intervalsSeen_;

    // Smooth the noisy per-interval estimates so one odd interval
    // cannot reshuffle banks (and trigger a page-migration wave).
    if (smoothed_.empty()) {
        smoothed_ = profiles;
    } else {
        double a = params_.ewmaAlpha;
        for (unsigned t = 0; t < numThreads_; ++t) {
            ThreadMemProfile &s = smoothed_[t];
            const ThreadMemProfile &n = profiles[t];
            s.mpki = a * s.mpki + (1 - a) * n.mpki;
            s.mlp = a * s.mlp + (1 - a) * n.mlp;
            s.rowParallelism = a * s.rowParallelism +
                (1 - a) * n.rowParallelism;
            s.blp = a * s.blp + (1 - a) * n.blp;
            s.rowBufferHitRate = a * s.rowBufferHitRate +
                (1 - a) * n.rowBufferHitRate;
            s.requests = n.requests;
            s.instructions = n.instructions;
            s.footprintPages = n.footprintPages;
        }
    }

    // Cooldown: never repartition two adjacent intervals.
    ++sinceRepartition_;
    if (sinceRepartition_ < params_.cooldownIntervals)
        return std::nullopt;

    std::vector<bool> light(numThreads_, false);
    for (unsigned t = 0; t < numThreads_; ++t)
        light[t] = smoothed_[t].mpki < params_.lightMpki;

    std::vector<unsigned> shares = bankShares(smoothed_);

    // Hysteresis: adopt only if some thread's allocation moved enough
    // or its light/heavy classification flipped.
    DBP_ASSERT(currentCounts_.size() == numThreads_,
               "onInterval before initialAssignment");
    unsigned max_delta = 0;
    bool class_change = false;
    for (unsigned t = 0; t < numThreads_; ++t) {
        unsigned delta = shares[t] > currentCounts_[t]
            ? shares[t] - currentCounts_[t]
            : currentCounts_[t] - shares[t];
        max_delta = std::max(max_delta, delta);
        class_change = class_change || light[t] != currentLight_[t];
    }
    if (max_delta < params_.hysteresisBanks && !class_change)
        return std::nullopt;

    currentCounts_ = shares;
    currentLight_ = light;
    ++repartitions_;
    sinceRepartition_ = 0;
    if (envFlag("DBPSIM_DEBUG_DBP")) {
        std::ostringstream os;
        os << "dbp repartition #" << repartitions_ << ":";
        for (unsigned t = 0; t < numThreads_; ++t)
            os << " t" << t << "=" << shares[t]
               << (light[t] ? "L" : "")
               << "(rbhr=" << smoothed_[t].rowBufferHitRate
               << ",drp=" << smoothed_[t].rowParallelism
               << ",mpki=" << smoothed_[t].mpki << ")";
        inform(os.str());
    }
    if (subs_ > 1) {
        // bankShares thinks in banks; ownership is carved in subarray
        // colors, a whole bank's worth at a time.
        std::vector<unsigned> color_counts(shares);
        for (unsigned &c : color_counts)
            c *= subs_;
        return buildAssignment(color_counts, light);
    }
    return buildAssignment(shares, light);
}

PartitionAssignment
DbpPolicy::buildAssignment(const std::vector<unsigned> &counts,
                           const std::vector<bool> &light)
{
    // All-light case: everyone shares every bank; ownership dissolves.
    bool everyone_everything = true;
    for (unsigned t = 0; t < numThreads_; ++t)
        if (counts[t] != totalColors_)
            everyone_everything = false;
    if (everyone_everything) {
        clearOwnership();
        sharedAll_ = true;
        std::vector<unsigned> all(totalColors_);
        for (unsigned c = 0; c < totalColors_; ++c)
            all[c] = c;
        return PartitionAssignment(numThreads_, all);
    }

    unsigned light_banks = 0;
    unsigned heavy_sum = 0;
    for (unsigned t = 0; t < numThreads_; ++t) {
        if (light[t])
            light_banks = counts[t];
        else
            heavy_sum += counts[t];
    }

    // Pathological sharing case (more heavy threads than banks): a
    // stable incremental hand-off cannot represent shared ownership;
    // rebuild fresh with wrap-around sharing.
    if (heavy_sum + light_banks > totalColors_) {
        clearOwnership();
        sharedAll_ = false;
        PartitionAssignment out(numThreads_);
        std::size_t pos = 0;
        std::vector<unsigned> light_set;
        for (unsigned i = 0; i < light_banks; ++i)
            light_set.push_back(
                spreadOrder_[totalColors_ - 1 - i]);
        std::size_t head_span = totalColors_ - light_banks;
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (light[t]) {
                out[t] = light_set;
                continue;
            }
            for (unsigned i = 0; i < counts[t]; ++i)
                out[t].push_back(spreadOrder_[pos++ % head_span]);
        }
        return out;
    }

    // Leaving the shared-all state: nothing is owned; seed ownership
    // with fresh contiguous slices (one-time cost).
    if (sharedAll_) {
        clearOwnership();
        sharedAll_ = false;
    }

    // ---- Incremental hand-off: entities keep what they own; only
    // the delta changes hands, which is what keeps page migration
    // proportional to the *change* in the partition rather than to
    // the machine size.

    // Target per entity: heavy thread t -> counts[t]; threads now
    // light own nothing directly (the light set is a shared entity).
    std::vector<unsigned> free_pool;

    // Release phase.
    for (unsigned t = 0; t < numThreads_; ++t) {
        unsigned target = light[t] ? 0 : counts[t];
        while (owned_[t].size() > target) {
            free_pool.push_back(owned_[t].back());
            owned_[t].pop_back();
        }
    }
    while (lightSet_.size() > light_banks) {
        free_pool.push_back(lightSet_.back());
        lightSet_.pop_back();
    }

    // Any color neither owned nor already released (first incremental
    // call after a reset) also enters the pool.
    {
        std::vector<bool> accounted(totalColors_, false);
        for (const auto &o : owned_)
            for (unsigned c : o)
                accounted[c] = true;
        for (unsigned c : lightSet_)
            accounted[c] = true;
        for (unsigned c : free_pool)
            accounted[c] = true;
        for (unsigned c = 0; c < totalColors_; ++c)
            if (!accounted[c])
                free_pool.push_back(c);
    }

    // Sort the pool along the channel-spreading order so acquisitions
    // spread across channels/ranks.
    std::sort(free_pool.begin(), free_pool.end(),
              [&](unsigned a, unsigned b) {
                  return spreadPos_[a] < spreadPos_[b];
              });

    // Acquire phase: round-robin over needy entities so each gets a
    // spread slice of the pool. The light set acquires from the tail
    // (it historically lives at the end of the spread order).
    std::size_t pool_head = 0;
    std::size_t pool_tail = free_pool.size();
    while (lightSet_.size() < light_banks) {
        DBP_ASSERT(pool_head < pool_tail, "dbp: pool exhausted (light)");
        lightSet_.push_back(free_pool[--pool_tail]);
    }
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned t = 0; t < numThreads_; ++t) {
            if (light[t] || owned_[t].size() >= counts[t])
                continue;
            DBP_ASSERT(pool_head < pool_tail,
                       "dbp: pool exhausted (heavy)");
            owned_[t].push_back(free_pool[pool_head++]);
            progress = true;
        }
    }
    DBP_ASSERT(pool_head == pool_tail,
               "dbp: " << (pool_tail - pool_head)
               << " colors left unassigned");

    PartitionAssignment out(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        out[t] = light[t] ? lightSet_ : owned_[t];
    return out;
}

} // namespace dbpsim
