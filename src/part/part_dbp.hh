/**
 * @file
 * Dynamic Bank Partitioning (Xie et al., HPCA 2014) — the paper's
 * contribution.
 *
 * Every profiling interval the policy:
 *  1. classifies threads by memory intensity: light threads
 *     (MPKI < lightMpki) are grouped into one small shared color set —
 *     they access DRAM too rarely to interfere with each other, and
 *     giving each a private share would waste banks;
 *  2. starts heavy threads from the equal split (bank utility is
 *     concave — fig2 — so the equal share is near-optimal for threads
 *     of similar behaviour), then identifies streaming threads
 *     (intrinsic shadow RBHR >= streamRbhr): they run from the row
 *     buffer, keep only streamBanks banks, and donate the rest;
 *  3. redistributes the donated banks to the remaining heavy threads
 *     in proportion to row-miss intensity, MPKI * (1 - RBHR) — the
 *     partition-invariant measure of bank-service demand (measured
 *     BLP is censored by the current partition and useless here);
 *  4. applies hysteresis: a new assignment is adopted only when some
 *     thread's bank count moves by at least hysteresisBanks, keeping
 *     migration costs bounded.
 *
 * Color sets are carved as contiguous slices of the channel-spreading
 * color order, so every thread's banks span channels and ranks, and
 * small demand changes move few banks.
 */

#ifndef DBPSIM_PART_PART_DBP_HH
#define DBPSIM_PART_PART_DBP_HH

#include <cstdint>

#include "part/policy.hh"

namespace dbpsim {

/**
 * DBP tuning knobs.
 */
struct DbpParams
{
    /** Threads below this MPKI are "light" and share one color set. */
    double lightMpki = 1.0;

    /** Shared banks granted per light thread (ceil of sum, >= 1). */
    double lightBanksPerThread = 1.0;

    /**
     * Threads whose intrinsic row-buffer hit rate is at or above this
     * are streamers: they run from the row buffer and donate their
     * surplus banks.
     */
    double streamRbhr = 0.9;

    /** Banks a streaming donor keeps. */
    unsigned streamBanks = 2;

    /**
     * A donor's distinct-row parallelism must not exceed this: wide
     * multi-stream apps have high RBHR but need a bank per stream.
     */
    double maxDonorRows = 2.5;

    /**
     * Ablation switch: ignore the measured demand and treat every
     * heavy thread as equal (isolates the value of the estimator).
     */
    bool flatDemand = false;

    /** Adopt a new partition only when some thread's bank count
     *  changes by at least this many banks (absorbs one-bank jitter
     *  in the BLP estimate). */
    unsigned hysteresisBanks = 2;

    /** Cap on the light group size as a fraction of all banks. */
    double lightShareCap = 0.25;

    /**
     * EWMA weight on history when smoothing the per-thread MLP/RBHR
     * estimates across intervals (0 = use raw interval values).
     * Smoothing keeps one noisy interval from reshuffling banks.
     */
    double ewmaAlpha = 0.5;

    /** Minimum profiling intervals between adopted repartitions. */
    unsigned cooldownIntervals = 2;

    /**
     * Ignore this many initial profiling intervals: cold-start
     * profiles (window fill, first-touch allocation bursts) are not
     * representative, and acting on them scatters pages that later
     * have to be migrated back.
     */
    unsigned warmupIntervals = 2;
};

/**
 * The DBP policy.
 */
class DbpPolicy : public PartitionPolicy
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param channels / @p ranks / @p banks Machine geometry.
     * @param params Tuning knobs.
     * @param subarrays Colors per bank (subarray coloring). Demand
     *        estimation stays in bank units — the paper's estimator
     *        reasons about bank-level parallelism — and shares are
     *        scaled to whole banks' worth of subarray colors when the
     *        assignment is carved.
     */
    DbpPolicy(unsigned num_threads, unsigned channels, unsigned ranks,
              unsigned banks, DbpParams params = {},
              unsigned subarrays = 1);

    std::string name() const override { return "dbp"; }

    /** Starts from the equal partition (no profile yet). */
    PartitionAssignment initialAssignment() override;

    std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) override;

    /** Heavy threads migrate; light threads' leftovers stay put. */
    bool shouldMigrate(unsigned thread) const override;

    /**
     * Pure demand estimation (exposed for tests and the demand-
     * estimation figure): per-thread bank counts, summing to the
     * machine's bank total; light threads report their shared group's
     * size.
     */
    std::vector<unsigned>
    bankShares(const std::vector<ThreadMemProfile> &profiles) const;

    /** Repartitions actually adopted so far. */
    std::uint64_t repartitions() const { return repartitions_; }

    /** Parameters in use. */
    const DbpParams &params() const { return params_; }

  private:
    /**
     * Build color sets from per-thread counts + light membership,
     * incrementally: entities keep the colors they already own and
     * only the delta changes hands (bounds page migration by the
     * partition *change*, not the machine size).
     */
    PartitionAssignment
    buildAssignment(const std::vector<unsigned> &counts,
                    const std::vector<bool> &light);

    /** Drop all ownership state (fresh-assignment paths). */
    void clearOwnership();

    unsigned numThreads_;
    unsigned channels_;
    unsigned ranks_;
    unsigned banks_;
    unsigned subs_;        ///< colors per bank.
    unsigned bankColors_;  ///< machine-wide banks (demand units).
    unsigned totalColors_; ///< bankColors_ * subs_ (assignment units).
    DbpParams params_;

    /** Colors in channel-spreading order, and each color's position. */
    std::vector<unsigned> spreadOrder_;
    std::vector<unsigned> spreadPos_;

    /** Colors owned per heavy thread, in acquisition order. */
    std::vector<std::vector<unsigned>> owned_;

    /** Colors of the shared light set, in acquisition order. */
    std::vector<unsigned> lightSet_;

    /** Everyone currently shares all banks (all-light state). */
    bool sharedAll_ = false;

    /** Bank counts of the currently adopted partition (hysteresis). */
    std::vector<unsigned> currentCounts_;

    /** Light classification of the current partition. */
    std::vector<bool> currentLight_;
    std::uint64_t repartitions_ = 0;

    /** EWMA-smoothed per-thread estimates (empty until 1st interval). */
    std::vector<ThreadMemProfile> smoothed_;

    /** Intervals since the last adopted repartition. */
    unsigned sinceRepartition_ = 0;

    /** Total profiling intervals observed (cold-start guard). */
    unsigned intervalsSeen_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_PART_PART_DBP_HH
