#include "part/part_factory.hh"

#include "common/log.hh"
#include "part/part_combined.hh"
#include "part/part_none.hh"
#include "part/part_ubp.hh"

namespace dbpsim {

const std::vector<std::string> &
partitionPolicyNames()
{
    static const std::vector<std::string> names = {
        "none", "ubp", "dbp", "mcp", "dbp-mcp",
    };
    return names;
}

std::unique_ptr<PartitionPolicy>
makePartitionPolicy(const std::string &name, const PartitionInit &init)
{
    const DramGeometry &g = init.geometry;
    const unsigned subs = init.coloredSubarrays;
    if (name == "none")
        return std::make_unique<NonePolicy>(init.numThreads,
                                            g.totalBanks() * subs);
    if (name == "ubp")
        return std::make_unique<UbpPolicy>(init.numThreads, g.channels,
                                           g.ranksPerChannel,
                                           g.banksPerRank, subs);
    if (name == "dbp")
        return std::make_unique<DbpPolicy>(init.numThreads, g.channels,
                                           g.ranksPerChannel,
                                           g.banksPerRank, init.dbp,
                                           subs);
    if (name == "mcp")
        return std::make_unique<McpPolicy>(init.numThreads, g.channels,
                                           g.ranksPerChannel,
                                           g.banksPerRank, init.mcp,
                                           subs);
    if (name == "dbp-mcp")
        return std::make_unique<CombinedPolicy>(
            init.numThreads, g.channels, g.ranksPerChannel,
            g.banksPerRank, init.dbp, init.mcp, subs);
    fatal("unknown partition policy '", name,
          "' (expected none|ubp|dbp|mcp|dbp-mcp)");
}

} // namespace dbpsim
