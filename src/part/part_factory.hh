/**
 * @file
 * Partition-policy construction by name.
 */

#ifndef DBPSIM_PART_PART_FACTORY_HH
#define DBPSIM_PART_PART_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/addr_map.hh"
#include "part/part_dbp.hh"
#include "part/part_mcp.hh"
#include "part/policy.hh"

namespace dbpsim {

/**
 * Everything policy constructors might need.
 */
struct PartitionInit
{
    unsigned numThreads = 8;
    DramGeometry geometry;
    DbpParams dbp;
    McpParams mcp;

    /**
     * Colors per bank. 1 = bank-granular coloring (the paper's
     * machine); geometry.subarraysPerBank when the address map colors
     * by subarray (subarray_color=1 with a SALP mode).
     */
    unsigned coloredSubarrays = 1;
};

/** Names accepted by makePartitionPolicy, in a stable order. */
const std::vector<std::string> &partitionPolicyNames();

/**
 * Build a policy: "none", "ubp", "dbp" or "mcp". fatal()s on unknown
 * names.
 */
std::unique_ptr<PartitionPolicy>
makePartitionPolicy(const std::string &name, const PartitionInit &init);

} // namespace dbpsim

#endif // DBPSIM_PART_PART_FACTORY_HH
