#include "part/part_mcp.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dbpsim {

McpPolicy::McpPolicy(unsigned num_threads, unsigned channels,
                     unsigned ranks, unsigned banks, McpParams params,
                     unsigned subarrays)
    : numThreads_(num_threads), channels_(channels), ranks_(ranks),
      banks_(banks), subs_(subarrays), params_(params)
{
    DBP_ASSERT(num_threads > 0, "mcp needs >= 1 thread");
    DBP_ASSERT(channels > 0, "mcp needs >= 1 channel");
    DBP_ASSERT(subarrays > 0, "mcp needs >= 1 subarray per bank");
}

std::vector<unsigned>
McpPolicy::channelColors(unsigned channel) const
{
    std::vector<unsigned> out;
    out.reserve(static_cast<std::size_t>(ranks_) * banks_ * subs_);
    for (unsigned r = 0; r < ranks_; ++r)
        for (unsigned b = 0; b < banks_; ++b)
            for (unsigned s = 0; s < subs_; ++s)
                out.push_back(((channel * ranks_ + r) * banks_ + b) *
                                  subs_ + s);
    return out;
}

PartitionAssignment
McpPolicy::initialAssignment()
{
    std::vector<unsigned> all;
    for (unsigned c = 0; c < channels_; ++c) {
        auto cc = channelColors(c);
        all.insert(all.end(), cc.begin(), cc.end());
    }
    std::sort(all.begin(), all.end());
    current_.assign(numThreads_, {});
    return PartitionAssignment(numThreads_, all);
}

std::vector<std::vector<unsigned>>
McpPolicy::channelAssignment(
    const std::vector<ThreadMemProfile> &profiles) const
{
    DBP_ASSERT(profiles.size() == numThreads_,
               "mcp: profile vector size mismatch");

    enum Group { Low = 0, HiRbl = 1, LoRbl = 2 };
    std::vector<int> group(numThreads_);
    double demand[3] = {0.0, 0.0, 0.0};
    unsigned members[3] = {0, 0, 0};

    for (unsigned t = 0; t < numThreads_; ++t) {
        const auto &p = profiles[t];
        int g;
        if (p.mpki < params_.lowMpki)
            g = Low;
        else if (p.rowBufferHitRate >= params_.highRbl)
            g = HiRbl;
        else
            g = LoRbl;
        group[t] = g;
        demand[g] += static_cast<double>(p.requests);
        ++members[g];
    }

    // Channel counts per group: proportional to bandwidth demand, at
    // least one channel per non-empty group when that fits.
    std::vector<int> active;
    for (int g = 0; g < 3; ++g)
        if (members[g] > 0)
            active.push_back(g);

    std::vector<std::vector<unsigned>> group_channels(3);
    if (active.size() <= 1 || channels_ == 1) {
        // Nothing to separate: everyone gets every channel.
        std::vector<unsigned> all(channels_);
        for (unsigned c = 0; c < channels_; ++c)
            all[c] = c;
        for (int g = 0; g < 3; ++g)
            group_channels[g] = all;
    } else if (channels_ < active.size()) {
        // Two channels, three groups: separate the two intensive
        // groups (the point of MCP); the low group joins the side
        // with less demand.
        DBP_ASSERT(channels_ == 2 && active.size() == 3,
                   "unexpected channel/group combination");
        group_channels[HiRbl] = {0};
        group_channels[LoRbl] = {1};
        group_channels[Low] =
            demand[HiRbl] <= demand[LoRbl] ? std::vector<unsigned>{0}
                                           : std::vector<unsigned>{1};
    } else {
        // Proportional split with floor 1 (largest remainder).
        double total = demand[0] + demand[1] + demand[2];
        if (total <= 0.0)
            total = 1.0;
        std::vector<unsigned> share(3, 0);
        unsigned used = 0;
        std::vector<double> exact(3, 0.0);
        for (int g : active) {
            exact[g] = channels_ * demand[g] / total;
            share[g] = std::max(1u, static_cast<unsigned>(exact[g]));
            used += share[g];
        }
        while (used > channels_) {
            int victim = -1;
            for (int g : active)
                if (share[g] > 1 &&
                    (victim < 0 || share[g] > share[victim]))
                    victim = g;
            DBP_ASSERT(victim >= 0, "mcp: cannot fit groups");
            --share[victim];
            --used;
        }
        std::vector<int> rem_order(active);
        std::sort(rem_order.begin(), rem_order.end(), [&](int a, int b) {
            double fa = exact[a] - std::floor(exact[a]);
            double fb = exact[b] - std::floor(exact[b]);
            if (fa != fb)
                return fa > fb;
            return a < b;
        });
        std::size_t oi = 0;
        while (used < channels_) {
            ++share[rem_order[oi % rem_order.size()]];
            ++used;
            ++oi;
        }
        unsigned next = 0;
        for (int g : active) {
            for (unsigned i = 0; i < share[g]; ++i)
                group_channels[g].push_back(next++);
        }
    }

    std::vector<std::vector<unsigned>> out(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        out[t] = group_channels[group[t]];
    return out;
}

bool
McpPolicy::shouldMigrate(unsigned thread) const
{
    if (thread >= lowGroup_.size())
        return true;
    return !lowGroup_[thread];
}

std::optional<PartitionAssignment>
McpPolicy::onInterval(const std::vector<ThreadMemProfile> &profiles)
{
    lowGroup_.assign(numThreads_, false);
    for (unsigned t = 0; t < numThreads_; ++t)
        lowGroup_[t] = profiles[t].mpki < params_.lowMpki;

    auto chans = channelAssignment(profiles);
    if (chans == current_)
        return std::nullopt;
    current_ = chans;

    PartitionAssignment out(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        for (unsigned c : chans[t]) {
            auto cc = channelColors(c);
            out[t].insert(out[t].end(), cc.begin(), cc.end());
        }
        std::sort(out[t].begin(), out[t].end());
    }
    return out;
}

} // namespace dbpsim
