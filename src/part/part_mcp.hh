/**
 * @file
 * Memory Channel Partitioning (Muralidhara et al., MICRO 2011), the
 * comparison point DBP beats on fairness.
 *
 * Threads are grouped by profiled behaviour: low memory intensity
 * (MPKI < lowMpki), high intensity with high row-buffer locality
 * (RBHR >= highRbl), and high intensity with low locality. Channels
 * are then divided among the groups proportionally to each group's
 * measured bandwidth demand (at least one channel per non-empty
 * group), and every thread may use all banks of its group's channels.
 * Separating the two intensive groups removes their mutual row-buffer
 * interference, but packing all intensive threads of a group into a
 * channel subset physically concentrates their contention — the
 * unfairness the DBP paper calls out (claim C5).
 */

#ifndef DBPSIM_PART_PART_MCP_HH
#define DBPSIM_PART_PART_MCP_HH

#include "part/policy.hh"

namespace dbpsim {

/**
 * MCP tuning knobs.
 */
struct McpParams
{
    /** Below this MPKI a thread is in the low-intensity group. */
    double lowMpki = 1.5;

    /** At/above this shadow row-buffer hit rate -> high-RBL group. */
    double highRbl = 0.75;
};

/**
 * The MCP policy.
 */
class McpPolicy : public PartitionPolicy
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param channels / @p ranks / @p banks Machine geometry.
     * @param subarrays Colors per bank (subarray coloring). MCP
     *        partitions at channel granularity, so a channel simply
     *        contributes ranks*banks*subarrays colors.
     */
    McpPolicy(unsigned num_threads, unsigned channels, unsigned ranks,
              unsigned banks, McpParams params = {},
              unsigned subarrays = 1);

    std::string name() const override { return "mcp"; }

    /** Everyone everywhere until the first profile arrives. */
    PartitionAssignment initialAssignment() override;

    std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) override;

    /** Low-intensity threads' leftovers stay put. */
    bool shouldMigrate(unsigned thread) const override;

    /**
     * Pure channel-assignment logic (tests): per thread, the list of
     * channels it may allocate in.
     */
    std::vector<std::vector<unsigned>>
    channelAssignment(const std::vector<ThreadMemProfile> &profiles) const;

  private:
    /** All colors belonging to @p channel. */
    std::vector<unsigned> channelColors(unsigned channel) const;

    unsigned numThreads_;
    unsigned channels_;
    unsigned ranks_;
    unsigned banks_;
    unsigned subs_;
    McpParams params_;

    /** Last adopted per-thread channel sets (to skip no-op updates). */
    std::vector<std::vector<unsigned>> current_;

    /** Low-intensity classification of the current partition. */
    std::vector<bool> lowGroup_;
};

} // namespace dbpsim

#endif // DBPSIM_PART_PART_MCP_HH
