/**
 * @file
 * Unpartitioned baseline: every thread may allocate in every bank.
 * Interference is whatever the scheduler leaves.
 */

#ifndef DBPSIM_PART_PART_NONE_HH
#define DBPSIM_PART_PART_NONE_HH

#include "part/policy.hh"

namespace dbpsim {

/**
 * No partitioning.
 */
class NonePolicy : public PartitionPolicy
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param num_colors Machine-wide banks.
     */
    NonePolicy(unsigned num_threads, unsigned num_colors)
        : numThreads_(num_threads), numColors_(num_colors)
    {
    }

    std::string name() const override { return "none"; }

    PartitionAssignment
    initialAssignment() override
    {
        std::vector<unsigned> all(numColors_);
        for (unsigned c = 0; c < numColors_; ++c)
            all[c] = c;
        return PartitionAssignment(numThreads_, all);
    }

    std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) override
    {
        (void)profiles;
        return std::nullopt;
    }

  private:
    unsigned numThreads_;
    unsigned numColors_;
};

} // namespace dbpsim

#endif // DBPSIM_PART_PART_NONE_HH
