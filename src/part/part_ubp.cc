#include "part/part_ubp.hh"

#include "common/log.hh"

namespace dbpsim {

UbpPolicy::UbpPolicy(unsigned num_threads, unsigned channels,
                     unsigned ranks, unsigned banks, unsigned subarrays)
    : numThreads_(num_threads), channels_(channels), ranks_(ranks),
      banks_(banks), subs_(subarrays)
{
    DBP_ASSERT(num_threads > 0, "ubp needs >= 1 thread");
    DBP_ASSERT(subarrays > 0, "ubp needs >= 1 subarray per bank");
}

PartitionAssignment
UbpPolicy::initialAssignment()
{
    std::vector<unsigned> order =
        channelSpreadColorOrder(channels_, ranks_, banks_, subs_);
    unsigned total = static_cast<unsigned>(order.size());

    PartitionAssignment out(numThreads_);
    if (total >= numThreads_) {
        // Contiguous slices of the channel-spreading order: every
        // slice covers all (channel, rank) pairs before moving to the
        // next bank index, so each thread's share spans channels and
        // ranks. Remainder banks go to the first threads.
        unsigned base = total / numThreads_;
        unsigned extra = total % numThreads_;
        unsigned pos = 0;
        for (unsigned t = 0; t < numThreads_; ++t) {
            unsigned take = base + (t < extra ? 1 : 0);
            for (unsigned i = 0; i < take; ++i)
                out[t].push_back(order[pos++]);
        }
    } else {
        // More threads than banks: threads share banks round-robin.
        for (unsigned t = 0; t < numThreads_; ++t)
            out[t].push_back(order[t % total]);
    }
    return out;
}

} // namespace dbpsim
