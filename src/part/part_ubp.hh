/**
 * @file
 * Equal (uniform) static bank partitioning — the prior scheme DBP
 * improves on: banks are divided evenly among threads once, which
 * eliminates inter-thread row-buffer interference but caps every
 * thread's bank-level parallelism at banks/threads regardless of need.
 */

#ifndef DBPSIM_PART_PART_UBP_HH
#define DBPSIM_PART_PART_UBP_HH

#include "part/policy.hh"

namespace dbpsim {

/**
 * Uniform bank partitioning.
 */
class UbpPolicy : public PartitionPolicy
{
  public:
    /**
     * @param num_threads Hardware threads.
     * @param channels / @p ranks / @p banks Machine geometry, used to
     *        spread each thread's equal share across channels/ranks.
     * @param subarrays Colors per bank (1 = bank-granular coloring).
     */
    UbpPolicy(unsigned num_threads, unsigned channels, unsigned ranks,
              unsigned banks, unsigned subarrays = 1);

    std::string name() const override { return "ubp"; }

    PartitionAssignment initialAssignment() override;

    std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) override
    {
        (void)profiles;
        return std::nullopt;
    }

  private:
    unsigned numThreads_;
    unsigned channels_;
    unsigned ranks_;
    unsigned banks_;
    unsigned subs_;
};

} // namespace dbpsim

#endif // DBPSIM_PART_PART_UBP_HH
