#include "part/policy.hh"

#include "common/log.hh"

namespace dbpsim {

std::vector<unsigned>
channelSpreadColorOrder(unsigned channels, unsigned ranks, unsigned banks,
                        unsigned subarrays)
{
    DBP_ASSERT(channels > 0 && ranks > 0 && banks > 0 && subarrays > 0,
               "bad geometry for color order");
    std::vector<unsigned> order;
    order.reserve(static_cast<std::size_t>(channels) * ranks * banks *
                  subarrays);
    for (unsigned b = 0; b < banks; ++b)
        for (unsigned r = 0; r < ranks; ++r)
            for (unsigned c = 0; c < channels; ++c)
                for (unsigned s = 0; s < subarrays; ++s)
                    order.push_back(((c * ranks + r) * banks + b) *
                                        subarrays + s);
    return order;
}

} // namespace dbpsim
