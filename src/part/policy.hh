/**
 * @file
 * The partitioning-policy interface: a policy maps per-thread run-time
 * profiles to per-thread bank-color sets. The PartitionManager applies
 * assignments through the OS model (allocation constraints + page
 * migration); policies are pure decision logic, which keeps them unit
 * testable.
 */

#ifndef DBPSIM_PART_POLICY_HH
#define DBPSIM_PART_POLICY_HH

#include <optional>
#include <string>
#include <vector>

#include "mem/thread_profile.hh"

namespace dbpsim {

/** One color set per thread. */
using PartitionAssignment = std::vector<std::vector<unsigned>>;

/**
 * Abstract partitioning policy.
 */
class PartitionPolicy
{
  public:
    virtual ~PartitionPolicy() = default;

    /** Policy name ("none", "ubp", "dbp", "mcp"). */
    virtual std::string name() const = 0;

    /** Assignment to apply before any profile exists. */
    virtual PartitionAssignment initialAssignment() = 0;

    /**
     * New interval profiles are in. Return a fresh assignment to
     * apply, or nullopt to keep the current one (static policies
     * always return nullopt; DBP returns nullopt under hysteresis).
     */
    virtual std::optional<PartitionAssignment>
    onInterval(const std::vector<ThreadMemProfile> &profiles) = 0;

    /**
     * Should @p thread's already-allocated pages be migrated into its
     * color set? Policies return false for threads whose leftover
     * pages cause negligible interference (DBP/MCP: light threads),
     * sparing the DRAM the copy traffic.
     */
    virtual bool
    shouldMigrate(unsigned thread) const
    {
        (void)thread;
        return true;
    }
};

/**
 * Enumerate the machine colors in channel-spreading order: consecutive
 * positions alternate channel first, then rank, then bank index.
 * Slicing this sequence gives every slice the widest possible
 * channel/rank spread (preserves intra-thread parallelism).
 *
 * With subarray coloring (@p subarrays > 1) each bank contributes
 * @p subarrays consecutive colors, so positions [k*subarrays,
 * (k+1)*subarrays) are the subarrays of the k-th bank of the spread
 * sequence: slices at whole-bank multiples still own whole banks, and
 * policies that think in bank units scale their counts by
 * @p subarrays.
 */
std::vector<unsigned> channelSpreadColorOrder(unsigned channels,
                                              unsigned ranks,
                                              unsigned banks,
                                              unsigned subarrays = 1);

} // namespace dbpsim

#endif // DBPSIM_PART_POLICY_HH
