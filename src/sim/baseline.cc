#include "sim/baseline.hh"

#include <chrono>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "part/policy.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/spec_profiles.hh"

namespace dbpsim {

std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
aloneRunSignature(const RunConfig &rc)
{
    const SystemParams &p = rc.base;
    std::ostringstream os;
    os << "alone-v1"
       << ";cpuRatio=" << p.cpuRatio
       << ";core=" << p.core.windowSize << '/' << p.core.issueWidth
       << '/' << p.core.mshrs << '/' << p.core.storeBufferSize << '/'
       << p.core.lineBytes
       << ";geom=" << p.geometry.channels << 'x'
       << p.geometry.ranksPerChannel << 'x' << p.geometry.banksPerRank
       << '/' << p.geometry.rowsPerBank << '/' << p.geometry.rowBytes
       << '/' << p.geometry.lineBytes << '/' << p.geometry.pageBytes
       << ";timing=" << p.timingName
       << ";map=" << mapSchemeName(p.scheme)
       << ";xor=" << p.bankXor
       << ";ctrl=" << p.controller.readQueueSize << '/'
       << p.controller.writeQueueSize << '/'
       << p.controller.writeHiWatermark << '/'
       << p.controller.writeLoWatermark << '/'
       << p.controller.idleWriteThresh << '/'
       << p.controller.forwardLatency << '/'
       << static_cast<int>(p.controller.pagePolicy) << '/'
       << p.controller.rowIdleTimeout
       << ";refresh=" << refreshModeName(p.controller.refresh.mode)
       << '/' << p.controller.refresh.aware << '/'
       << p.controller.refresh.postponeMax << '/' << p.trefiOverride
       << '/' << p.trfcOverride << '/' << p.trfcPbOverride
       << ";cache=" << p.cacheEnabled;
    if (p.cacheEnabled)
        os << '/' << p.cache.sizeBytes << '/' << p.cache.associativity
           << '/' << p.cache.lineBytes << '/' << p.cache.hitLatency;
    os << ";warmup=" << rc.warmupCpu << ";measure=" << rc.measureCpu
       << ";seed=" << rc.seedBase;
    return os.str();
}

std::uint64_t
jobSeed(std::uint64_t seed_base, const std::string &mix,
        const std::string &scheme)
{
    // Mix SplitMix64-style so nearby seed bases stay uncorrelated.
    std::uint64_t z = seed_base + 0x9e3779b97f4a7c15ULL;
    z ^= hashString(mix);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z ^= hashString(scheme);
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

AloneBaseline
runAloneBaseline(const RunConfig &rc, const std::string &app)
{
    SystemParams params = rc.base;
    params.numCores = 1;
    params.scheduler = "fr-fcfs";
    params.partition = "none";
    // One profiling interval covering exactly the full run, closed
    // explicitly at the end, so the alone profile summarizes the whole
    // execution.
    params.profileIntervalCpu = rc.warmupCpu + rc.measureCpu +
        1'000'000'000ULL;

    auto source = makeSpecSource(app, rc.seedBase * 31 + 7);
    std::vector<TraceSource *> sources{source.get()};
    System system(params, sources);
    std::vector<double> ipc = system.runAndMeasure(rc.warmupCpu,
                                                   rc.measureCpu);
    system.closeIntervalNow();

    AloneBaseline out;
    out.ipc = ipc.at(0);
    out.profile = system.lastIntervalProfiles().at(0);
    return out;
}

double
aloneIpcWithBanks(const RunConfig &rc, const std::string &app,
                  unsigned banks)
{
    SystemParams params = rc.base;
    params.numCores = 1;
    params.scheduler = "fr-fcfs";
    params.partition = "none";

    auto source = makeSpecSource(app, rc.seedBase * 31 + 7);
    std::vector<TraceSource *> raw{source.get()};
    System sys(params, raw);

    auto order = channelSpreadColorOrder(params.geometry.channels,
                                         params.geometry.ranksPerChannel,
                                         params.geometry.banksPerRank);
    DBP_ASSERT(banks >= 1 && banks <= order.size(),
               "bank count out of range");
    std::vector<unsigned> colors(order.begin(), order.begin() + banks);
    sys.osMemory().setColorSet(0, colors);

    return sys.runAndMeasure(rc.warmupCpu, rc.measureCpu).at(0);
}

namespace {

std::string
cacheKey(const RunConfig &rc, const std::string &app)
{
    std::ostringstream os;
    os << app << '@' << std::hex << hashString(aloneRunSignature(rc));
    return os.str();
}

Json
profileToJson(const ThreadMemProfile &p)
{
    Json j = Json::object();
    j.set("mpki", p.mpki);
    j.set("row_hit_rate", p.rowBufferHitRate);
    j.set("blp", p.blp);
    j.set("mlp", p.mlp);
    j.set("row_parallelism", p.rowParallelism);
    j.set("requests", p.requests);
    j.set("instructions", p.instructions);
    j.set("footprint_pages", p.footprintPages);
    return j;
}

ThreadMemProfile
profileFromJson(const Json &j)
{
    ThreadMemProfile p;
    p.mpki = j.at("mpki").asDouble();
    p.rowBufferHitRate = j.at("row_hit_rate").asDouble();
    p.blp = j.at("blp").asDouble();
    p.mlp = j.at("mlp").asDouble();
    p.rowParallelism = j.at("row_parallelism").asDouble();
    p.requests = j.at("requests").asUInt();
    p.instructions = j.at("instructions").asUInt();
    p.footprintPages = j.at("footprint_pages").asUInt();
    return p;
}

constexpr const char *kCacheFormat = "dbpsim-alone-cache-v1";

} // namespace

AloneBaseline
AloneBaselineCache::get(const RunConfig &rc, const std::string &app)
{
    const std::string key = cacheKey(rc, app);

    std::shared_future<AloneBaseline> future;
    bool compute = false;
    std::promise<AloneBaseline> promise;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            ++computed_;
            compute = true;
        }
    }

    if (compute) {
        // Simulate outside the lock: other apps' baselines proceed in
        // parallel; same-key requests wait on the shared future.
        try {
            promise.set_value(runAloneBaseline(rc, app));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

bool
AloneBaselineCache::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();

    std::string error;
    Json root = Json::parse(buf.str(), &error);
    if (!error.empty() || root.type() != Json::Type::Object) {
        warn("alone cache ", path, " unreadable (", error,
             "); ignoring");
        return false;
    }
    const Json *format = root.find("format");
    if (!format || format->asString() != kCacheFormat) {
        warn("alone cache ", path, " has unknown format; ignoring");
        return false;
    }

    std::size_t merged = 0;
    for (const auto &m : root.at("entries").members()) {
        AloneBaseline b;
        b.ipc = m.second.at("ipc").asDouble();
        b.profile = profileFromJson(m.second.at("profile"));
        std::promise<AloneBaseline> p;
        p.set_value(b);
        std::lock_guard<std::mutex> lock(mutex_);
        if (entries_.emplace(m.first, p.get_future().share()).second)
            ++merged;
    }
    inform("alone cache: loaded ", merged, " baseline(s) from ", path);
    return true;
}

bool
AloneBaselineCache::save(const std::string &path) const
{
    Json entries = Json::object();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &e : entries_) {
            // Only persist completed computations; an in-flight entry
            // means save() raced a run, which the campaign driver
            // never does (it saves after all jobs join).
            if (e.second.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue;
            const AloneBaseline &b = e.second.get();
            Json j = Json::object();
            j.set("ipc", b.ipc);
            j.set("profile", profileToJson(b.profile));
            entries.set(e.first, std::move(j));
        }
    }
    Json root = Json::object();
    root.set("format", kCacheFormat);
    root.set("entries", std::move(entries));

    std::ofstream out(path);
    if (!out)
        return false;
    root.write(out, 2);
    out << '\n';
    return static_cast<bool>(out);
}

std::size_t
AloneBaselineCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
AloneBaselineCache::computeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return computed_;
}

} // namespace dbpsim
