/**
 * @file
 * Alone-run baselines as a shared, thread-safe, persistent cache.
 *
 * Every speedup the paper reports divides a shared-run IPC by the
 * application's alone-run IPC on the same hardware. Those alone runs
 * are pure functions of (application, hardware configuration, seed);
 * this module computes them once per process — whichever campaign job
 * asks first — and can persist them to results/alone_cache.json so
 * later bench invocations skip them entirely.
 *
 * Also home of the campaign seeding discipline: jobSeed() derives a
 * simulation seed from stable names only (seed base, mix, scheme), so
 * a sweep's results never depend on job submission or completion
 * order.
 */

#ifndef DBPSIM_SIM_BASELINE_HH
#define DBPSIM_SIM_BASELINE_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mem/thread_profile.hh"

namespace dbpsim {

struct RunConfig;

/** What one alone run produces: the IPC denominator and the profile. */
struct AloneBaseline
{
    double ipc = 0.0;
    ThreadMemProfile profile;
};

/**
 * FNV-1a 64-bit hash (stable across platforms/runs; used for config
 * signatures and seed derivation).
 */
std::uint64_t hashString(const std::string &s);

/**
 * Canonical signature of every parameter an alone run depends on:
 * core front-end, DRAM geometry/timing, controller, address map,
 * cache, measurement window and seed base. Two RunConfigs with equal
 * signatures produce bit-identical alone runs.
 */
std::string aloneRunSignature(const RunConfig &rc);

/**
 * Deterministic per-job seed: a function of the seed base and the
 * mix/scheme names — never of submission order. Distinct names give
 * (with overwhelming probability) distinct, uncorrelated seeds.
 */
std::uint64_t jobSeed(std::uint64_t seed_base, const std::string &mix,
                      const std::string &scheme);

/**
 * Run @p app alone on the configured hardware (single core, FR-FCFS,
 * unpartitioned) — a pure function of its arguments; thread-safe.
 */
AloneBaseline runAloneBaseline(const RunConfig &rc,
                               const std::string &app);

/**
 * Alone IPC of @p app with its footprint confined to the first @p
 * banks colors of the channel-spread order — the fig2/fig3
 * bank-sensitivity probe. Pure function; thread-safe.
 */
double aloneIpcWithBanks(const RunConfig &rc, const std::string &app,
                         unsigned banks);

/**
 * Thread-safe memoization of alone runs, keyed by
 * (application, alone-config hash). Concurrent requests for the same
 * key block on one computation instead of duplicating it; requests
 * for different keys compute in parallel. Optionally persisted as
 * JSON so a later process reloads instead of re-simulating.
 */
class AloneBaselineCache
{
  public:
    AloneBaselineCache() = default;

    /** Baseline for @p app under @p rc; computes at most once. */
    AloneBaseline get(const RunConfig &rc, const std::string &app);

    /**
     * Merge entries from a JSON cache file. Unknown or malformed
     * files are ignored (returns false) — the cache is an
     * optimization, never a correctness dependency.
     */
    bool load(const std::string &path);

    /** Write all (completed) entries to @p path. */
    bool save(const std::string &path) const;

    /** Entries resident (loaded + computed). */
    std::size_t size() const;

    /** Alone runs actually simulated by this process (not loaded). */
    std::uint64_t computeCount() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<AloneBaseline>> entries_;
    std::uint64_t computed_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_SIM_BASELINE_HH
