#include "sim/campaign.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/executor.hh"
#include "common/log.hh"
#include "common/table.hh"

namespace dbpsim {

// ---- context --------------------------------------------------------

CampaignContext::CampaignContext(
    RunConfig base, std::shared_ptr<AloneBaselineCache> baselines)
    : config_(std::move(base)), baselines_(std::move(baselines))
{
    DBP_ASSERT(baselines_ != nullptr, "campaign needs a baseline cache");
}

MixResult
CampaignContext::runMix(const WorkloadMix &mix, const Scheme &scheme)
{
    return runMixJob(config_, mix, scheme, *baselines_);
}

MixResult
CampaignContext::runMix(const RunConfig &rc, const WorkloadMix &mix,
                        const Scheme &scheme)
{
    return runMixJob(rc, mix, scheme, *baselines_);
}

// ---- plan -----------------------------------------------------------

void
CampaignPlan::add(std::string key,
                  std::function<Json(CampaignContext &)> fn)
{
    DBP_ASSERT(fn != nullptr, "campaign job needs a function");
    for (const auto &j : jobs_)
        if (j.key == key)
            fatal("campaign: duplicate job key '", key, "'");
    jobs_.push_back({std::move(key), std::move(fn)});
}

// ---- run ------------------------------------------------------------

CampaignRun::CampaignRun(
    RunConfig config, std::vector<std::pair<std::string, Json>> results)
    : config_(std::move(config)), results_(std::move(results))
{
}

const Json &
CampaignRun::job(const std::string &key) const
{
    for (const auto &r : results_)
        if (r.first == key)
            return r.second;
    fatal("campaign: no job result '", key, "'");
}

bool
CampaignRun::has(const std::string &key) const
{
    for (const auto &r : results_)
        if (r.first == key)
            return true;
    return false;
}

double
CampaignRun::num(const std::string &key, const std::string &field) const
{
    return job(key).at(field).asDouble();
}

std::vector<std::string>
CampaignRun::jobKeys() const
{
    std::vector<std::string> keys;
    keys.reserve(results_.size());
    for (const auto &r : results_)
        keys.push_back(r.first);
    return keys;
}

void
CampaignRun::summary(const std::string &name, double value)
{
    summary_.set(name, value);
}

void
CampaignRun::summary(const std::string &name, const std::string &value)
{
    summary_.set(name, value);
}

Json
CampaignRun::jobsJson() const
{
    Json jobs = Json::object();
    for (const auto &r : results_)
        jobs.set(r.first, r.second);
    return jobs;
}

// ---- registry -------------------------------------------------------

namespace {

std::vector<CampaignSpec> &
mutableRegistry()
{
    static std::vector<CampaignSpec> registry;
    return registry;
}

/** Natural comparison so fig2 sorts before fig10. */
bool
naturalLess(const std::string &a, const std::string &b)
{
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        bool da = std::isdigit(static_cast<unsigned char>(a[i])) != 0;
        bool db = std::isdigit(static_cast<unsigned char>(b[j])) != 0;
        if (da && db) {
            std::size_t ia = i, jb = j;
            while (ia < a.size() &&
                   std::isdigit(static_cast<unsigned char>(a[ia])))
                ++ia;
            while (jb < b.size() &&
                   std::isdigit(static_cast<unsigned char>(b[jb])))
                ++jb;
            unsigned long va = std::stoul(a.substr(i, ia - i));
            unsigned long vb = std::stoul(b.substr(j, jb - j));
            if (va != vb)
                return va < vb;
            i = ia;
            j = jb;
        } else {
            if (a[i] != b[j])
                return a[i] < b[j];
            ++i;
            ++j;
        }
    }
    return a.size() < b.size();
}

} // namespace

void
registerCampaign(CampaignSpec spec)
{
    DBP_ASSERT(!spec.name.empty(), "campaign needs a name");
    DBP_ASSERT(spec.plan && spec.render,
               "campaign needs plan and render");
    for (const auto &s : mutableRegistry())
        if (s.name == spec.name)
            fatal("campaign '", spec.name, "' registered twice");
    mutableRegistry().push_back(std::move(spec));
}

std::vector<const CampaignSpec *>
campaignRegistry()
{
    std::vector<const CampaignSpec *> out;
    for (const auto &s : mutableRegistry())
        out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const CampaignSpec *a, const CampaignSpec *b) {
                  return naturalLess(a->name, b->name);
              });
    return out;
}

const CampaignSpec *
findCampaign(const std::string &name)
{
    for (const auto &s : mutableRegistry())
        if (s.name == name)
            return &s;
    return nullptr;
}

// ---- signature / serialization --------------------------------------

std::string
runConfigSignature(const RunConfig &rc)
{
    const SystemParams &p = rc.base;
    std::ostringstream os;
    os << aloneRunSignature(rc)
       << ";cores=" << p.numCores
       << ";interval=" << p.profileIntervalCpu
       << ";sched=" << p.scheduler << ";part=" << p.partition
       << ";schedInit=" << p.sched.burstCycles << '/'
       << p.sched.tcmShuffleInterval << '/' << p.sched.tcmClusterThresh
       << '/' << p.sched.atlasQuantum << '/' << p.sched.parbsMarkingCap
       << '/' << p.sched.blissCap << '/' << p.sched.blissClearInterval
       << ";dbp=" << p.dbp.lightMpki << '/' << p.dbp.lightBanksPerThread
       << '/' << p.dbp.streamRbhr << '/' << p.dbp.streamBanks << '/'
       << p.dbp.maxDonorRows << '/' << p.dbp.flatDemand << '/'
       << p.dbp.hysteresisBanks << '/' << p.dbp.lightShareCap
       << ";mcp=" << p.mcp.lowMpki << '/' << p.mcp.highRbl
       << ";mig=" << static_cast<int>(p.partMgr.migration) << '/'
       << p.partMgr.maxMigratePages
       << ";check=" << p.protocolCheck;
    return os.str();
}

std::uint64_t
runConfigHash(const RunConfig &rc)
{
    return hashString(runConfigSignature(rc));
}

Json
mixResultToJson(const MixResult &r)
{
    Json j = Json::object();
    j.set("mix", r.mixName);
    j.set("scheme", r.schemeName);
    j.set("ws", r.metrics.weightedSpeedup);
    j.set("hs", r.metrics.harmonicSpeedup);
    j.set("ms", r.metrics.maxSlowdown);

    auto vec = [](const std::vector<double> &v) {
        Json a = Json::array();
        for (double x : v)
            a.push(x);
        return a;
    };
    j.set("speedups", vec(r.metrics.speedups));
    j.set("slowdowns", vec(r.metrics.slowdowns));
    j.set("alone_ipc", vec(r.aloneIpc));
    j.set("shared_ipc", vec(r.sharedIpc));
    j.set("row_hit_rate", vec(r.rowHitRate));
    j.set("read_latency_bus", vec(r.readLatency));
    j.set("pages_migrated", r.pagesMigrated);
    j.set("repartitions", r.repartitions);
    j.set("check_violations", r.checkViolations);
    return j;
}

// ---- execution ------------------------------------------------------

Json
runCampaign(const CampaignSpec &spec, const RunConfig &rc,
            std::shared_ptr<AloneBaselineCache> baselines,
            const CampaignOptions &opts, std::ostream &os)
{
    auto wall_start = std::chrono::steady_clock::now();

    CampaignContext ctx(rc, std::move(baselines));
    CampaignPlan plan;
    spec.plan(plan, ctx);

    const auto &jobs = plan.jobs();
    std::vector<std::pair<std::string, Json>> results(jobs.size());

    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([&, i] {
            LogJobScope tag(spec.name + ":" + jobs[i].key);
            // Each task owns slot i exclusively; the executor's join
            // publishes all slots before the render below reads them.
            results[i] = {jobs[i].key, jobs[i].fn(ctx)};
            if (opts.progress)
                std::fprintf(stderr, "  [%s %s]\n", spec.name.c_str(),
                             jobs[i].key.c_str());
        });
    }

    JobExecutor executor(opts.jobs);
    std::vector<double> job_seconds = executor.run(tasks);

    CampaignRun run(rc, std::move(results));
    spec.render(run, os);
    if (!spec.expect.empty())
        os << "\n" << spec.expect << "\n";

    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
    double job_total = 0.0;
    for (double s : job_seconds)
        job_total += s;

    Json config = Json::object();
    config.set("machine", rc.base.summary());
    config.set("warmup_cpu", rc.warmupCpu);
    config.set("measure_cpu", rc.measureCpu);
    config.set("seed_base", rc.seedBase);
    {
        std::ostringstream hex;
        hex << "0x" << std::hex << runConfigHash(rc);
        config.set("hash", hex.str());
    }

    Json doc = Json::object();
    doc.set("campaign", spec.name);
    doc.set("title", spec.title);
    doc.set("config", std::move(config));
    doc.set("jobs_count", static_cast<std::uint64_t>(jobs.size()));
    doc.set("parallelism", executor.threads());
    doc.set("jobs", run.jobsJson());
    doc.set("summary", run.summaryJson());
    doc.set("wall_seconds", wall);
    doc.set("job_seconds_total", job_total);
    return doc;
}

// ---- sweep helpers --------------------------------------------------

std::string
sweepKey(const std::string &prefix, const std::string &mix,
         const std::string &scheme)
{
    return prefix + mix + "/" + scheme;
}

void
planMixSweep(CampaignPlan &plan, const std::vector<WorkloadMix> &mixes,
             const std::vector<Scheme> &schemes)
{
    for (const auto &mix : mixes) {
        for (const auto &scheme : schemes) {
            plan.add(sweepKey("", mix.name, scheme.name),
                     [mix, scheme](CampaignContext &ctx) {
                         return mixResultToJson(
                             ctx.runMix(mix, scheme));
                     });
        }
    }
}

void
planMixSweep(CampaignPlan &plan, const RunConfig &rc,
             const std::string &prefix,
             const std::vector<WorkloadMix> &mixes,
             const std::vector<Scheme> &schemes)
{
    for (const auto &mix : mixes) {
        for (const auto &scheme : schemes) {
            plan.add(sweepKey(prefix, mix.name, scheme.name),
                     [rc, mix, scheme](CampaignContext &ctx) {
                         return mixResultToJson(
                             ctx.runMix(rc, mix, scheme));
                     });
        }
    }
}

std::vector<double>
sweepColumn(const CampaignRun &run, const std::string &prefix,
            const std::vector<WorkloadMix> &mixes,
            const std::string &scheme, const std::string &field)
{
    std::vector<double> out;
    out.reserve(mixes.size());
    for (const auto &mix : mixes)
        out.push_back(run.num(sweepKey(prefix, mix.name, scheme),
                              field));
    return out;
}

void
printSweepMetric(CampaignRun &run, const std::string &prefix,
                 const std::vector<WorkloadMix> &mixes,
                 const std::vector<Scheme> &schemes,
                 const std::string &field, const std::string &title,
                 std::ostream &os)
{
    std::vector<std::string> headers{"workload"};
    for (const auto &s : schemes)
        headers.push_back(s.name);
    TextTable table(headers);

    for (const auto &mix : mixes) {
        table.beginRow();
        table.cell(mix.name);
        for (const auto &s : schemes)
            table.cell(run.num(sweepKey(prefix, mix.name, s.name),
                               field),
                       3);
    }
    table.beginRow();
    table.cell("gmean");
    for (const auto &s : schemes) {
        double g = geomean(
            sweepColumn(run, prefix, mixes, s.name, field));
        table.cell(g, 3);
        run.summary("gmean_" + field + "_" + prefix + s.name, g);
    }

    os << title << ":\n";
    table.print(os);
    os << '\n';
}

} // namespace dbpsim
