/**
 * @file
 * The campaign layer: declarative, parallel experiment execution.
 *
 * A campaign is one of the paper's figures/tables expressed as data:
 * a name, a plan() that declares independent keyed jobs, and a
 * render() that reduces the finished job results into the printed
 * tables and summary metrics. The runner fans the jobs out over a
 * JobExecutor thread pool (see common/executor.hh), collects every
 * job's JSON result into its pre-assigned slot, and emits one result
 * document per campaign (per-run metrics + wall clock + config hash).
 *
 * Determinism contract: a job must be a pure function of the campaign
 * configuration and its own key — seeds via jobSeed(), baselines via
 * the shared AloneBaselineCache — so `--jobs=N` and `--serial`
 * produce byte-identical job results in any completion order.
 */

#ifndef DBPSIM_SIM_CAMPAIGN_HH
#define DBPSIM_SIM_CAMPAIGN_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"

namespace dbpsim {

class CampaignContext;

/**
 * Shared services for campaign jobs. Everything here is thread-safe;
 * a job receives the context and must not touch anything else that
 * mutates.
 */
class CampaignContext
{
  public:
    CampaignContext(RunConfig base,
                    std::shared_ptr<AloneBaselineCache> baselines);

    /** The campaign's base configuration. */
    const RunConfig &config() const { return config_; }

    /** The shared alone-run baseline cache. */
    AloneBaselineCache &baselines() { return *baselines_; }

    /** Run @p mix under @p scheme on the base configuration. */
    MixResult runMix(const WorkloadMix &mix, const Scheme &scheme);

    /** Run with an explicit (tweaked) configuration. */
    MixResult runMix(const RunConfig &rc, const WorkloadMix &mix,
                     const Scheme &scheme);

  private:
    RunConfig config_;
    std::shared_ptr<AloneBaselineCache> baselines_;
};

/** One schedulable unit: a key and a pure result-producing function. */
struct CampaignJob
{
    std::string key;
    std::function<Json(CampaignContext &)> fn;
};

/**
 * The ordered job list a campaign declares. Keys must be unique; they
 * name the result slots, so declaration order — not completion
 * order — fixes the output layout.
 */
class CampaignPlan
{
  public:
    /** Declare one job. fatal()s on duplicate keys. */
    void add(std::string key, std::function<Json(CampaignContext &)> fn);

    const std::vector<CampaignJob> &jobs() const { return jobs_; }

  private:
    std::vector<CampaignJob> jobs_;
};

/**
 * A finished campaign, as render() sees it: every job's JSON result,
 * accessible by key, plus the configuration and a sink for summary
 * metrics that go into the emitted result document.
 */
class CampaignRun
{
  public:
    CampaignRun(RunConfig config,
                std::vector<std::pair<std::string, Json>> results);

    /** The campaign's base configuration. */
    const RunConfig &config() const { return config_; }

    /** Job result by key; fatal() when absent. */
    const Json &job(const std::string &key) const;

    /** True when a job with @p key exists. */
    bool has(const std::string &key) const;

    /** Shorthand: numeric field @p field of job @p key. */
    double num(const std::string &key, const std::string &field) const;

    /** All job keys in declaration order. */
    std::vector<std::string> jobKeys() const;

    /** Record a summary metric (lands in the result JSON). */
    void summary(const std::string &name, double value);
    void summary(const std::string &name, const std::string &value);

    /** The accumulated summary object. */
    const Json &summaryJson() const { return summary_; }

    /** All job results as one JSON object (declaration order). */
    Json jobsJson() const;

  private:
    RunConfig config_;
    std::vector<std::pair<std::string, Json>> results_;
    Json summary_ = Json::object();
};

/**
 * One declarative figure/table campaign.
 */
struct CampaignSpec
{
    /** Registry key and result file stem ("fig4"). */
    std::string name;

    /** Human title, shown in the banner. */
    std::string title;

    /** Expected qualitative shape, printed after the tables. */
    std::string expect;

    /** Declare the jobs. */
    std::function<void(CampaignPlan &, CampaignContext &)> plan;

    /** Reduce finished results into tables + summary metrics. */
    std::function<void(CampaignRun &, std::ostream &)> render;
};

/** Execution options. */
struct CampaignOptions
{
    /** Worker threads; 1 = serial reference mode, 0 = hardware. */
    unsigned jobs = 1;

    /** Echo per-job completion lines (with job tags) to stderr. */
    bool progress = true;
};

/**
 * Execute @p spec: plan, fan out, render to @p os. Returns the full
 * result document (config hash, per-job results, summary metrics,
 * wall clock, parallelism).
 */
Json runCampaign(const CampaignSpec &spec, const RunConfig &rc,
                 std::shared_ptr<AloneBaselineCache> baselines,
                 const CampaignOptions &opts, std::ostream &os);

// ---- registry -------------------------------------------------------

/** Register a campaign (the bench TUs do this via CampaignRegistrar). */
void registerCampaign(CampaignSpec spec);

/** All registered campaigns, in natural name order (fig2 < fig10). */
std::vector<const CampaignSpec *> campaignRegistry();

/** Look up by name; nullptr when unknown. */
const CampaignSpec *findCampaign(const std::string &name);

/** Static registrar: `const CampaignRegistrar reg({...});` per TU. */
struct CampaignRegistrar
{
    explicit CampaignRegistrar(CampaignSpec spec)
    {
        registerCampaign(std::move(spec));
    }
};

// ---- shared building blocks for the figure campaigns ----------------

/**
 * Canonical signature/hash of a full run configuration (hardware +
 * policy tuning + measurement window), embedded into every result
 * document so trajectories compare like against like.
 */
std::string runConfigSignature(const RunConfig &rc);
std::uint64_t runConfigHash(const RunConfig &rc);

/** Serialize one MixResult (stable field order). */
Json mixResultToJson(const MixResult &r);

/** Job key for one (mix, scheme) point, optionally prefixed. */
std::string sweepKey(const std::string &prefix, const std::string &mix,
                     const std::string &scheme);

/**
 * Declare the standard sweep: one runMix job per (mix, scheme) on the
 * context's base configuration.
 */
void planMixSweep(CampaignPlan &plan,
                  const std::vector<WorkloadMix> &mixes,
                  const std::vector<Scheme> &schemes);

/**
 * Same, with an explicit (tweaked) configuration and a key prefix
 * ("16bk/") so several configurations coexist in one campaign.
 */
void planMixSweep(CampaignPlan &plan, const RunConfig &rc,
                  const std::string &prefix,
                  const std::vector<WorkloadMix> &mixes,
                  const std::vector<Scheme> &schemes);

/**
 * One metric ("ws" / "hs" / "ms" / "pages_migrated" / ...) of one
 * scheme across @p mixes, in mix order.
 */
std::vector<double> sweepColumn(const CampaignRun &run,
                                const std::string &prefix,
                                const std::vector<WorkloadMix> &mixes,
                                const std::string &scheme,
                                const std::string &field);

/**
 * Print one metric across a sweep: one row per mix, one column per
 * scheme, plus a geometric-mean summary row. Also records
 * "gmean_<field>_<scheme>" summary entries on @p run.
 */
void printSweepMetric(CampaignRun &run, const std::string &prefix,
                      const std::vector<WorkloadMix> &mixes,
                      const std::vector<Scheme> &schemes,
                      const std::string &field,
                      const std::string &title, std::ostream &os);

} // namespace dbpsim

#endif // DBPSIM_SIM_CAMPAIGN_HH
