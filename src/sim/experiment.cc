#include "sim/experiment.hh"

#include "common/log.hh"

namespace dbpsim {

MixResult
runMixJob(const RunConfig &rc, const WorkloadMix &mix,
          const Scheme &scheme, AloneBaselineCache &baselines)
{
    SystemParams params = applyScheme(rc.base, scheme);
    params.numCores = static_cast<unsigned>(mix.apps.size());

    // Seeding discipline: derive from stable names only, never from
    // the order jobs were submitted or completed in.
    auto owned = buildMixSources(
        mix, jobSeed(rc.seedBase, mix.name, scheme.name));
    std::vector<TraceSource *> sources;
    sources.reserve(owned.size());
    for (auto &s : owned)
        sources.push_back(s.get());

    System system(params, sources);
    std::vector<double> shared = system.runAndMeasure(rc.warmupCpu,
                                                      rc.measureCpu);

    MixResult result;
    result.mixName = mix.name;
    result.schemeName = scheme.name;
    result.sharedIpc = shared;
    for (const auto &app : mix.apps)
        result.aloneIpc.push_back(baselines.get(rc, app).ipc);
    result.metrics = computeMetrics(result.aloneIpc, result.sharedIpc);

    for (unsigned t = 0; t < params.numCores; ++t) {
        auto tid = static_cast<ThreadId>(t);
        result.rowHitRate.push_back(system.threadRowHitRate(tid));
        result.readLatency.push_back(system.threadAvgReadLatency(tid));
    }
    result.pagesMigrated =
        system.partitionManager().statPagesMigrated.value();
    result.repartitions =
        system.partitionManager().statRepartitions.value();
    if (ProtocolChecker *pc = system.protocolChecker()) {
        pc->finalize(system.memCycle());
        result.checkViolations =
            static_cast<std::int64_t>(pc->violations());
    }
    return result;
}

ExperimentRunner::ExperimentRunner(
    RunConfig config, std::shared_ptr<AloneBaselineCache> baselines)
    : config_(std::move(config)), baselines_(std::move(baselines))
{
    DBP_ASSERT(config_.measureCpu > 0, "measureCpu must be > 0");
    if (!baselines_)
        baselines_ = std::make_shared<AloneBaselineCache>();
}

double
ExperimentRunner::aloneIpc(const std::string &app) const
{
    return baselines_->get(config_, app).ipc;
}

ThreadMemProfile
ExperimentRunner::aloneProfile(const std::string &app) const
{
    return baselines_->get(config_, app).profile;
}

MixResult
ExperimentRunner::runMix(const WorkloadMix &mix,
                         const Scheme &scheme) const
{
    return runMixJob(config_, mix, scheme, *baselines_);
}

} // namespace dbpsim
