#include "sim/experiment.hh"

#include "common/log.hh"
#include "trace/spec_profiles.hh"

namespace dbpsim {

ExperimentRunner::ExperimentRunner(RunConfig config)
    : config_(std::move(config))
{
    DBP_ASSERT(config_.measureCpu > 0, "measureCpu must be > 0");
}

void
ExperimentRunner::runAlone(const std::string &app)
{
    SystemParams params = config_.base;
    params.numCores = 1;
    params.scheduler = "fr-fcfs";
    params.partition = "none";
    // One profiling interval covering exactly the full run, closed
    // explicitly at the end, so the alone profile summarizes the whole
    // execution.
    params.profileIntervalCpu = config_.warmupCpu + config_.measureCpu +
        1'000'000'000ULL;

    auto source = makeSpecSource(app, config_.seedBase * 31 + 7);
    std::vector<TraceSource *> sources{source.get()};
    System system(params, sources);
    std::vector<double> ipc = system.runAndMeasure(config_.warmupCpu,
                                                   config_.measureCpu);
    system.closeIntervalNow();

    aloneIpcCache_[app] = ipc.at(0);
    aloneProfileCache_[app] = system.lastIntervalProfiles().at(0);
}

double
ExperimentRunner::aloneIpc(const std::string &app)
{
    auto it = aloneIpcCache_.find(app);
    if (it == aloneIpcCache_.end()) {
        runAlone(app);
        it = aloneIpcCache_.find(app);
    }
    return it->second;
}

ThreadMemProfile
ExperimentRunner::aloneProfile(const std::string &app)
{
    auto it = aloneProfileCache_.find(app);
    if (it == aloneProfileCache_.end()) {
        runAlone(app);
        it = aloneProfileCache_.find(app);
    }
    return it->second;
}

MixResult
ExperimentRunner::runMix(const WorkloadMix &mix, const Scheme &scheme)
{
    SystemParams params = applyScheme(config_.base, scheme);
    params.numCores = static_cast<unsigned>(mix.apps.size());

    auto owned = buildMixSources(mix, config_.seedBase);
    std::vector<TraceSource *> sources;
    sources.reserve(owned.size());
    for (auto &s : owned)
        sources.push_back(s.get());

    System system(params, sources);
    std::vector<double> shared = system.runAndMeasure(config_.warmupCpu,
                                                      config_.measureCpu);

    MixResult result;
    result.mixName = mix.name;
    result.schemeName = scheme.name;
    result.sharedIpc = shared;
    for (const auto &app : mix.apps)
        result.aloneIpc.push_back(aloneIpc(app));
    result.metrics = computeMetrics(result.aloneIpc, result.sharedIpc);

    for (unsigned t = 0; t < params.numCores; ++t) {
        auto tid = static_cast<ThreadId>(t);
        result.rowHitRate.push_back(system.threadRowHitRate(tid));
        result.readLatency.push_back(system.threadAvgReadLatency(tid));
    }
    result.pagesMigrated =
        system.partitionManager().statPagesMigrated.value();
    result.repartitions =
        system.partitionManager().statRepartitions.value();
    return result;
}

} // namespace dbpsim
