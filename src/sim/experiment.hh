/**
 * @file
 * Experiment harness: runs workload mixes under schemes, computing
 * alone-run baselines once per (application, hardware) pair and the
 * paper's metrics per run. Every figure bench builds on this.
 */

#ifndef DBPSIM_SIM_EXPERIMENT_HH
#define DBPSIM_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/schemes.hh"
#include "sim/system.hh"
#include "trace/mix.hh"

namespace dbpsim {

/**
 * Harness configuration.
 */
struct RunConfig
{
    /** Hardware/system baseline; scheduler/partition come per scheme. */
    SystemParams base;

    /** Warm-up CPU cycles (excluded from measurement). */
    Cycle warmupCpu = 2'000'000;

    /** Measured CPU cycles. */
    Cycle measureCpu = 5'000'000;

    /** Base seed for trace-generator instantiation. */
    std::uint64_t seedBase = 42;
};

/**
 * Result of one mix under one scheme.
 */
struct MixResult
{
    std::string mixName;
    std::string schemeName;
    SystemMetrics metrics;
    std::vector<double> aloneIpc;
    std::vector<double> sharedIpc;
    std::vector<double> rowHitRate;   ///< per thread, shared run.
    std::vector<double> readLatency;  ///< per thread, bus cycles.
    std::uint64_t pagesMigrated = 0;
    std::uint64_t repartitions = 0;
};

/**
 * The harness. Alone-run IPCs are cached per application profile, so
 * sweeping many schemes over many mixes pays the baseline cost once.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunConfig config);

    /**
     * Alone IPC of @p app on the configured hardware (FR-FCFS,
     * unpartitioned, single core) — the denominator of every speedup.
     */
    double aloneIpc(const std::string &app);

    /** Run @p mix under @p scheme. */
    MixResult runMix(const WorkloadMix &mix, const Scheme &scheme);

    /**
     * Alone-run characteristics of an application (for the workload
     * table and motivation figures): measured MPKI, shadow row-buffer
     * hit rate, BLP, IPC, footprint.
     */
    ThreadMemProfile aloneProfile(const std::string &app);

    /** Configuration access. */
    const RunConfig &config() const { return config_; }

  private:
    /** Run an app alone; fills both caches. */
    void runAlone(const std::string &app);

    RunConfig config_;
    std::map<std::string, double> aloneIpcCache_;
    std::map<std::string, ThreadMemProfile> aloneProfileCache_;
};

} // namespace dbpsim

#endif // DBPSIM_SIM_EXPERIMENT_HH
