/**
 * @file
 * Experiment harness: runs workload mixes under schemes, computing
 * alone-run baselines once per (application, hardware) pair and the
 * paper's metrics per run. Every figure campaign builds on this.
 *
 * Thread-safety contract (the campaign layer depends on it): an
 * ExperimentRunner is stateless per run — runMix() and the alone
 * accessors are const and may be called concurrently from any number
 * of threads. The only shared mutable state is the alone-baseline
 * cache (see sim/baseline.hh), which synchronizes internally and may
 * be shared between runners so one process never repeats an alone run.
 */

#ifndef DBPSIM_SIM_EXPERIMENT_HH
#define DBPSIM_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/baseline.hh"
#include "sim/metrics.hh"
#include "sim/schemes.hh"
#include "sim/system.hh"
#include "trace/mix.hh"

namespace dbpsim {

/**
 * Harness configuration.
 */
struct RunConfig
{
    /** Hardware/system baseline; scheduler/partition come per scheme. */
    SystemParams base;

    /** Warm-up CPU cycles (excluded from measurement). */
    // dbplint:allow(cycle-literal) reason=scaled-down run-window default (see README "Notes on scale"), overridden by config key warmup
    Cycle warmupCpu = 2'000'000;

    /** Measured CPU cycles. */
    // dbplint:allow(cycle-literal) reason=scaled-down run-window default (see README "Notes on scale"), overridden by config key measure
    Cycle measureCpu = 5'000'000;

    /** Base seed for trace-generator instantiation. */
    std::uint64_t seedBase = 42;
};

/**
 * Result of one mix under one scheme.
 */
struct MixResult
{
    std::string mixName;
    std::string schemeName;
    SystemMetrics metrics;
    std::vector<double> aloneIpc;
    std::vector<double> sharedIpc;
    std::vector<double> rowHitRate;   ///< per thread, shared run.
    std::vector<double> readLatency;  ///< per thread, bus cycles.
    std::uint64_t pagesMigrated = 0;
    std::uint64_t repartitions = 0;

    /**
     * DRAM protocol checker violations during the shared run, or -1
     * when the checker was not enabled for this configuration.
     */
    std::int64_t checkViolations = -1;
};

/**
 * Run @p mix under @p scheme on @p rc's hardware: the stateless
 * per-job simulation the campaign executor fans out. Trace seeds
 * derive from (rc.seedBase, mix.name, scheme.name) via jobSeed(), so
 * the result is a pure function of its arguments. Alone-run IPCs come
 * from @p baselines, which memoizes them thread-safely.
 */
MixResult runMixJob(const RunConfig &rc, const WorkloadMix &mix,
                    const Scheme &scheme,
                    AloneBaselineCache &baselines);

/**
 * The harness. A thin, thread-safe facade over runMixJob() and the
 * alone-baseline cache; kept as the stable entry point for tests,
 * examples and ad-hoc experiments.
 */
class ExperimentRunner
{
  public:
    /**
     * @param config Harness configuration.
     * @param baselines Alone-run cache to share; a private one is
     *        created when omitted.
     */
    explicit ExperimentRunner(
        RunConfig config,
        std::shared_ptr<AloneBaselineCache> baselines = nullptr);

    /**
     * Alone IPC of @p app on the configured hardware (FR-FCFS,
     * unpartitioned, single core) — the denominator of every speedup.
     */
    double aloneIpc(const std::string &app) const;

    /** Run @p mix under @p scheme. Thread-safe. */
    MixResult runMix(const WorkloadMix &mix, const Scheme &scheme) const;

    /**
     * Alone-run characteristics of an application (for the workload
     * table and motivation figures): measured MPKI, shadow row-buffer
     * hit rate, BLP, IPC, footprint.
     */
    ThreadMemProfile aloneProfile(const std::string &app) const;

    /** Configuration access. */
    const RunConfig &config() const { return config_; }

    /** The shared alone-baseline cache. */
    const std::shared_ptr<AloneBaselineCache> &baselines() const
    {
        return baselines_;
    }

  private:
    RunConfig config_;
    std::shared_ptr<AloneBaselineCache> baselines_;
};

} // namespace dbpsim

#endif // DBPSIM_SIM_EXPERIMENT_HH
