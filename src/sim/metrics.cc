#include "sim/metrics.hh"

#include <algorithm>

#include "common/log.hh"

namespace dbpsim {

SystemMetrics
computeMetrics(const std::vector<double> &alone_ipc,
               const std::vector<double> &shared_ipc)
{
    DBP_ASSERT(alone_ipc.size() == shared_ipc.size(),
               "metric vectors differ in size");
    DBP_ASSERT(!alone_ipc.empty(), "metrics need >= 1 thread");

    SystemMetrics m;
    double inv_sum = 0.0;
    for (std::size_t i = 0; i < alone_ipc.size(); ++i) {
        DBP_ASSERT(alone_ipc[i] > 0.0,
                   "alone IPC of thread " << i << " not positive");
        DBP_ASSERT(shared_ipc[i] > 0.0,
                   "shared IPC of thread " << i << " not positive");
        double speedup = shared_ipc[i] / alone_ipc[i];
        double slowdown = alone_ipc[i] / shared_ipc[i];
        m.speedups.push_back(speedup);
        m.slowdowns.push_back(slowdown);
        m.weightedSpeedup += speedup;
        m.maxSlowdown = std::max(m.maxSlowdown, slowdown);
        inv_sum += slowdown;
    }
    m.harmonicSpeedup = static_cast<double>(alone_ipc.size()) / inv_sum;
    return m;
}

} // namespace dbpsim
