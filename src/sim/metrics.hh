/**
 * @file
 * The paper's evaluation metrics over per-thread alone/shared IPCs:
 * weighted speedup (system throughput), harmonic mean of speedups
 * (balanced throughput+fairness), and maximum slowdown (unfairness —
 * lower is fairer).
 */

#ifndef DBPSIM_SIM_METRICS_HH
#define DBPSIM_SIM_METRICS_HH

#include <vector>

namespace dbpsim {

/**
 * Metric bundle for one multiprogrammed run.
 */
struct SystemMetrics
{
    /** Sum over threads of IPC_shared / IPC_alone. */
    double weightedSpeedup = 0.0;

    /** N / sum of IPC_alone / IPC_shared. */
    double harmonicSpeedup = 0.0;

    /** max over threads of IPC_alone / IPC_shared (unfairness). */
    double maxSlowdown = 0.0;

    /** Per-thread IPC_shared / IPC_alone. */
    std::vector<double> speedups;

    /** Per-thread IPC_alone / IPC_shared. */
    std::vector<double> slowdowns;
};

/**
 * Compute the bundle. Vectors must be equal sized and IPCs positive.
 */
SystemMetrics computeMetrics(const std::vector<double> &alone_ipc,
                             const std::vector<double> &shared_ipc);

} // namespace dbpsim

#endif // DBPSIM_SIM_METRICS_HH
