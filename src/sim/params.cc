#include "sim/params.hh"

#include <sstream>

#include "common/log.hh"

namespace dbpsim {

SystemParams::SystemParams()
{
    geometry.channels = 2;
    geometry.ranksPerChannel = 2;
    geometry.banksPerRank = 8;
    geometry.rowsPerBank = 65536;
    geometry.rowBytes = 8192;
    geometry.lineBytes = 64;
    geometry.pageBytes = 4096;
}

void
SystemParams::applyConfig(const Config &config)
{
    numCores = static_cast<unsigned>(config.getUInt("cores", numCores));
    cpuRatio = static_cast<unsigned>(config.getUInt("cpu_ratio",
                                                    cpuRatio));

    core.windowSize = static_cast<unsigned>(
        config.getUInt("window", core.windowSize));
    core.issueWidth = static_cast<unsigned>(
        config.getUInt("issue_width", core.issueWidth));
    core.mshrs = static_cast<unsigned>(config.getUInt("mshrs",
                                                      core.mshrs));
    core.storeBufferSize = static_cast<unsigned>(
        config.getUInt("store_buffer", core.storeBufferSize));

    geometry.channels = static_cast<unsigned>(
        config.getUInt("channels", geometry.channels));
    geometry.ranksPerChannel = static_cast<unsigned>(
        config.getUInt("ranks", geometry.ranksPerChannel));
    geometry.banksPerRank = static_cast<unsigned>(
        config.getUInt("banks", geometry.banksPerRank));
    geometry.rowsPerBank = config.getUInt("rows", geometry.rowsPerBank);
    geometry.rowBytes = config.getUInt("row_bytes", geometry.rowBytes);
    geometry.subarraysPerBank = static_cast<unsigned>(
        config.getUInt("subarrays", geometry.subarraysPerBank));

    timingName = config.getString("timing", timingName);
    if (config.has("map"))
        scheme = mapSchemeByName(config.getString("map", "page"));
    bankXor = config.getBool("bank_xor", bankXor);

    controller.readQueueSize = static_cast<unsigned>(
        config.getUInt("read_queue", controller.readQueueSize));
    controller.writeQueueSize = static_cast<unsigned>(
        config.getUInt("write_queue", controller.writeQueueSize));
    if (config.has("page_policy")) {
        std::string p = config.getString("page_policy", "open");
        if (p == "open")
            controller.pagePolicy = PagePolicy::Open;
        else if (p == "closed")
            controller.pagePolicy = PagePolicy::Closed;
        else if (p == "adaptive")
            controller.pagePolicy = PagePolicy::OpenAdaptive;
        else
            fatal("unknown page_policy '", p,
                  "' (expected open|closed|adaptive)");
    }

    controller.rowIdleTimeout = config.getUInt(
        "row_idle_timeout", controller.rowIdleTimeout);

    if (config.has("refresh")) {
        std::string r = config.getString("refresh", "allbank");
        if (r == "darp") { // shorthand: per-bank + refresh-aware.
            controller.refresh.mode = RefreshMode::PerBank;
            controller.refresh.aware = true;
        } else {
            controller.refresh.mode = refreshModeByName(r);
        }
    }
    controller.refresh.aware = config.getBool("refresh_aware",
                                              controller.refresh.aware);
    controller.refresh.postponeMax = static_cast<unsigned>(
        config.getUInt("refresh_postpone",
                       controller.refresh.postponeMax));
    trefiOverride = config.getUInt("trefi", trefiOverride);
    trfcOverride = config.getUInt("trfc", trfcOverride);
    trfcPbOverride = config.getUInt("trfc_pb", trfcPbOverride);

    if (config.has("salp"))
        controller.salp =
            salpModeByName(config.getString("salp", "none"));
    tsaOverride = config.getUInt("tsa", tsaOverride);
    subarrayColoring = config.getBool("subarray_color",
                                      subarrayColoring);
    if (subarrayColoring && controller.salp == SalpMode::None)
        fatal("subarray_color=1 requires a salp mode: without "
              "subarray-level parallelism the finer colors only "
              "shrink each thread's usable row-buffer set");

    scheduler = config.getString("sched", scheduler);
    partition = config.getString("part", partition);

    sched.tcmClusterThresh = config.getDouble("tcm_cluster_thresh",
                                              sched.tcmClusterThresh);
    sched.tcmShuffleInterval = config.getUInt("tcm_shuffle",
                                              sched.tcmShuffleInterval);
    sched.atlasQuantum = config.getUInt("atlas_quantum",
                                        sched.atlasQuantum);
    sched.parbsMarkingCap = static_cast<unsigned>(
        config.getUInt("parbs_cap", sched.parbsMarkingCap));
    sched.blissCap = static_cast<unsigned>(
        config.getUInt("bliss_cap", sched.blissCap));
    sched.blissClearInterval = config.getUInt(
        "bliss_clear", sched.blissClearInterval);

    dbp.lightMpki = config.getDouble("dbp_light_mpki", dbp.lightMpki);
    dbp.lightBanksPerThread = config.getDouble(
        "dbp_light_banks_per_thread", dbp.lightBanksPerThread);
    dbp.flatDemand = config.getBool("dbp_flat_demand",
                                    dbp.flatDemand);
    dbp.hysteresisBanks = static_cast<unsigned>(
        config.getUInt("dbp_hysteresis", dbp.hysteresisBanks));

    mcp.lowMpki = config.getDouble("mcp_low_mpki", mcp.lowMpki);
    mcp.highRbl = config.getDouble("mcp_high_rbl", mcp.highRbl);

    if (config.has("migration"))
        partMgr.migration = migrationModeByName(
            config.getString("migration", "eager"));
    partMgr.maxMigratePages = config.getUInt("max_migrate_pages",
                                             partMgr.maxMigratePages);

    profileIntervalCpu = config.getUInt("interval", profileIntervalCpu);

    protocolCheck = config.getBool("check", protocolCheck);
    checkFailFast = config.getBool("check_failfast", checkFailFast);

    cacheEnabled = config.getBool("cache", cacheEnabled);
    cache.sizeBytes = config.getUInt("cache_size", cache.sizeBytes);
    cache.associativity = static_cast<unsigned>(
        config.getUInt("cache_assoc", cache.associativity));
    cache.hitLatency = config.getUInt("cache_hit_latency",
                                      cache.hitLatency);
}

std::string
SystemParams::summary() const
{
    std::ostringstream os;
    os << numCores << " cores, " << geometry.channels << "ch x "
       << geometry.ranksPerChannel << "rk x " << geometry.banksPerRank
       << "bk (" << geometry.totalBanks() << " banks), " << timingName
       << ", sched=" << scheduler << ", part=" << partition
       << ", map=" << mapSchemeName(scheme)
       << ", refresh=" << refreshModeName(controller.refresh.mode);
    if (controller.refresh.aware)
        os << "+aware";
    if (controller.salp != SalpMode::None) {
        os << ", salp=" << salpModeName(controller.salp) << " ("
           << geometry.subarraysPerBank << " subarrays)";
        if (subarrayColoring)
            os << "+color";
    }
    return os.str();
}

} // namespace dbpsim
