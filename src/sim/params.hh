/**
 * @file
 * Aggregated system configuration: everything needed to build a full
 * CMP + DRAM system, with the paper's evaluation defaults, plus
 * parsing from a Config (command-line key=value overrides).
 */

#ifndef DBPSIM_SIM_PARAMS_HH
#define DBPSIM_SIM_PARAMS_HH

#include <string>

#include "cache/cache.hh"
#include "common/config.hh"
#include "core/core.hh"
#include "dram/addr_map.hh"
#include "dram/timing.hh"
#include "mem/controller.hh"
#include "mem/sched_factory.hh"
#include "part/manager.hh"
#include "part/part_dbp.hh"
#include "part/part_mcp.hh"

namespace dbpsim {

/**
 * Full system parameterization.
 */
struct SystemParams
{
    /** Cores / hardware threads (one application each). */
    unsigned numCores = 8;

    /** CPU cycles per memory-bus cycle (3.2 GHz over 800 MHz). */
    unsigned cpuRatio = 4;

    /** Core front-end configuration. */
    CoreParams core;

    /** DRAM geometry. Default: 2 channels x 2 ranks x 8 banks
     *  (32 banks), 64 Ki rows x 8 KiB rows (16 GiB total). */
    DramGeometry geometry;

    /** DDR timing preset name. */
    std::string timingName = "ddr3-1600";

    /** @name Refresh timing overrides (0 = keep the preset value).
     *  Config keys "trefi", "trfc", "trfc_pb". */
    /// @{
    Cycle trefiOverride = 0;
    Cycle trfcOverride = 0;
    Cycle trfcPbOverride = 0;
    /// @}

    /** SA_SEL relink override (0 = preset; config key "tsa"). */
    Cycle tsaOverride = 0;

    /**
     * Color frames by {channel, rank, bank, subarray} instead of bank
     * (config key "subarray_color"): partitioning policies then carve
     * subarray-granular color sets. Meaningful with a SALP mode.
     */
    bool subarrayColoring = false;

    /** Address-mapping scheme (page interleave enables coloring). */
    MapScheme scheme = MapScheme::PageInterleave;

    /** Permutation-based bank XOR (ablations only). */
    bool bankXor = false;

    /** Controller queues and drain watermarks. */
    ControllerParams controller;

    /** Scheduler name: fcfs | fr-fcfs | par-bs | atlas | tcm. */
    std::string scheduler = "fr-fcfs";

    /** Scheduler tuning. */
    SchedulerInit sched;

    /** Partition policy name: none | ubp | dbp | mcp. */
    std::string partition = "none";

    /** DBP tuning. */
    DbpParams dbp;

    /** MCP tuning. */
    McpParams mcp;

    /** Migration behaviour. */
    PartitionManagerParams partMgr;

    /** Profiling / repartitioning interval in CPU cycles. */
    // dbplint:allow(cycle-literal) reason=paper interval scaled to the shortened run window, overridden by config key interval (fig11 sweeps it)
    Cycle profileIntervalCpu = 10'000'000;

    /** Private per-core cache in front of the memory system. */
    bool cacheEnabled = false;

    /** Private cache configuration (when enabled). */
    CacheParams cache;

    /**
     * Run the DRAM protocol checker alongside the simulation
     * (config key "check"). Compiled in always; the DBPSIM_CHECK
     * build option flips the default to on.
     */
    bool protocolCheck =
#ifdef DBPSIM_CHECK
        true;
#else
        false;
#endif

    /** Panic on the first protocol violation (config "check_failfast"). */
    bool checkFailFast = false;

    /** Construct the evaluation-default parameters. */
    SystemParams();

    /** Apply key=value overrides (see README for the key list). */
    void applyConfig(const Config &config);

    /** Resolve the timing preset (with any refresh overrides). */
    DramTiming timing() const
    {
        DramTiming t = dramTimingByName(timingName);
        if (trefiOverride)
            t.tREFI = trefiOverride;
        if (trfcOverride)
            t.tRFC = trfcOverride;
        if (trfcPbOverride)
            t.tRFCpb = trfcPbOverride;
        if (tsaOverride)
            t.tSA = tsaOverride;
        return t;
    }

    /** One-line summary for logs. */
    std::string summary() const;
};

} // namespace dbpsim

#endif // DBPSIM_SIM_PARAMS_HH
