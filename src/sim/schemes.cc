#include "sim/schemes.hh"

#include "common/log.hh"

namespace dbpsim {

const std::vector<Scheme> &
standardSchemes()
{
    static const std::vector<Scheme> schemes = {
        {"FR-FCFS", "fr-fcfs", "none"},
        {"UBP", "fr-fcfs", "ubp"},
        {"DBP", "fr-fcfs", "dbp"},
        {"TCM", "tcm", "none"},
        {"DBP-TCM", "tcm", "dbp"},
        {"MCP", "fr-fcfs", "mcp"},
        {"PAR-BS", "par-bs", "none"},
        {"ATLAS", "atlas", "none"},
        {"FCFS", "fcfs", "none"},
        {"UBP-TCM", "tcm", "ubp"},
        {"BLISS", "bliss", "none"},
        {"DBP-BLISS", "bliss", "dbp"},
        {"DBP-MCP", "fr-fcfs", "dbp-mcp"},
        {"DBP-MCP-TCM", "tcm", "dbp-mcp"},
    };
    return schemes;
}

const Scheme &
schemeByName(const std::string &name)
{
    for (const auto &s : standardSchemes())
        if (s.name == name)
            return s;
    fatal("unknown scheme '", name, "'");
}

SystemParams
applyScheme(const SystemParams &base, const Scheme &scheme)
{
    SystemParams out = base;
    out.scheduler = scheme.scheduler;
    out.partition = scheme.partition;
    return out;
}

} // namespace dbpsim
