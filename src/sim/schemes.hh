/**
 * @file
 * Named (scheduler, partition) combinations — the schemes the paper's
 * figures compare.
 */

#ifndef DBPSIM_SIM_SCHEMES_HH
#define DBPSIM_SIM_SCHEMES_HH

#include <string>
#include <vector>

#include "sim/params.hh"

namespace dbpsim {

/**
 * One evaluated scheme.
 */
struct Scheme
{
    std::string name;      ///< display name ("DBP-TCM").
    std::string scheduler; ///< scheduler factory name.
    std::string partition; ///< partition-policy factory name.
};

/**
 * The paper's scheme set:
 *   FR-FCFS (baseline), UBP, DBP, TCM, DBP-TCM, MCP,
 * plus PAR-BS and ATLAS for the scheduler-landscape figure.
 */
const std::vector<Scheme> &standardSchemes();

/** Look up by display name; fatal() if unknown. */
const Scheme &schemeByName(const std::string &name);

/** Copy @p base and install the scheme's scheduler + partition. */
SystemParams applyScheme(const SystemParams &base, const Scheme &scheme);

} // namespace dbpsim

#endif // DBPSIM_SIM_SCHEMES_HH
