#include "sim/system.hh"

#include <cmath>
#include <ostream>

#include "common/log.hh"
#include "part/part_factory.hh"

namespace dbpsim {

System::System(const SystemParams &params,
               const std::vector<TraceSource *> &sources)
    : params_(params),
      map_(params.geometry, params.scheme, params.bankXor,
           params.subarrayColoring)
{
    if (sources.size() != params_.numCores)
        fatal("system: ", params_.numCores, " cores but ",
              sources.size(), " trace sources");
    DBP_ASSERT(params_.cpuRatio > 0, "cpuRatio must be >= 1");

    DramTiming timing = params_.timing();

    if (params_.protocolCheck) {
        ProtocolCheckerParams cpp;
        cpp.failFast = params_.checkFailFast;
        cpp.refreshPostponeMax = params_.controller.refresh.postponeMax;
        cpp.expectRefresh =
            params_.controller.refresh.mode != RefreshMode::None;
        cpp.salp = params_.controller.salp;
        cpp.subarrayColoring = params_.subarrayColoring;
        checker_ = std::make_unique<ProtocolChecker>(
            params_.geometry, timing, params_.numCores, cpp);
    }

    os_ = std::make_unique<OsMemory>(map_, params_.numCores);
    if (checker_)
        os_->setPartitionObserver(checker_.get());
    profiler_ = std::make_unique<ThreadProfiler>(params_.numCores,
                                                 map_.numColors());

    SchedulerInit sinit = params_.sched;
    sinit.numThreads = params_.numCores;
    sinit.numColors = map_.numColors();
    sinit.burstCycles = timing.tBURST;
    scheduler_ = makeScheduler(params_.scheduler, sinit);

    ControllerParams cparams = params_.controller;
    cparams.numThreads = params_.numCores;
    std::vector<MemoryController *> raw_controllers;
    for (unsigned ch = 0; ch < params_.geometry.channels; ++ch) {
        controllers_.push_back(std::make_unique<MemoryController>(
            ch, map_, timing, cparams, scheduler_.get(),
            profiler_.get()));
        if (checker_)
            controllers_.back()->setCommandObserver(checker_.get());
        raw_controllers.push_back(controllers_.back().get());
    }

    PartitionInit pinit;
    pinit.numThreads = params_.numCores;
    pinit.geometry = params_.geometry;
    pinit.dbp = params_.dbp;
    pinit.mcp = params_.mcp;
    if (params_.subarrayColoring)
        pinit.coloredSubarrays = params_.geometry.subarraysPerBank;
    partMgr_ = std::make_unique<PartitionManager>(
        makePartitionPolicy(params_.partition, pinit), *os_,
        raw_controllers, map_, params_.partMgr);
    partMgr_->start();

    if (params_.cacheEnabled) {
        CacheParams cp = params_.cache;
        cp.lineBytes = params_.geometry.lineBytes;
        for (unsigned c = 0; c < params_.numCores; ++c)
            caches_.push_back(std::make_unique<SetAssocCache>(cp));
    }

    for (unsigned c = 0; c < params_.numCores; ++c) {
        cores_.push_back(std::make_unique<TraceCore>(
            static_cast<ThreadId>(c), params_.core, sources[c], this));
    }

    nextInterval_ = params_.profileIntervalCpu;
    intervalInstrBase_.assign(params_.numCores, 0);
}

bool
System::issueLoad(ThreadId tid, Addr vaddr, MemClient *client,
                  std::uint64_t tag)
{
    Addr paddr = os_->translate(tid, vaddr);

    if (params_.cacheEnabled) {
        SetAssocCache &cache = *caches_.at(static_cast<unsigned>(tid));
        if (cache.contains(paddr)) {
            cache.access(paddr, false);
            pendingHits_.push_back(PendingHit{
                cpuCycle_ + cache.params().hitLatency, client, tag});
            return true;
        }
        // Miss: reserve the controller slot first so a rejected
        // enqueue leaves the cache untouched.
        DramCoord coord = map_.decode(paddr);
        MemoryController &mc = *controllers_.at(coord.channel);
        if (!mc.enqueueRead(paddr, tid, client, tag, memCycle_))
            return false;
        CacheAccessResult res = cache.access(paddr, false);
        if (res.writeback)
            pendingWritebacks_.push_back(
                PendingWriteback{tid, res.writebackAddr});
        return true;
    }

    DramCoord coord = map_.decode(paddr);
    MemoryController &mc = *controllers_.at(coord.channel);
    return mc.enqueueRead(paddr, tid, client, tag, memCycle_);
}

bool
System::issueStore(ThreadId tid, Addr vaddr)
{
    Addr paddr = os_->translate(tid, vaddr);

    if (params_.cacheEnabled) {
        SetAssocCache &cache = *caches_.at(static_cast<unsigned>(tid));
        CacheAccessResult res = cache.access(paddr, true);
        if (res.writeback)
            pendingWritebacks_.push_back(
                PendingWriteback{tid, res.writebackAddr});
        return true; // stores absorbed by the write-back cache.
    }

    DramCoord coord = map_.decode(paddr);
    MemoryController &mc = *controllers_.at(coord.channel);
    return mc.enqueueWrite(paddr, tid, memCycle_);
}

void
System::intervalBoundary()
{
    std::vector<std::uint64_t> instrs(params_.numCores, 0);
    std::vector<std::uint64_t> footprint(params_.numCores, 0);
    for (unsigned c = 0; c < params_.numCores; ++c) {
        InstCount total = cores_[c]->instructionsRetired();
        instrs[c] = total - intervalInstrBase_[c];
        intervalInstrBase_[c] = total;
        footprint[c] = os_->mappedPages(static_cast<ThreadId>(c));
    }

    lastProfiles_ = profiler_->closeInterval(instrs, footprint);
    scheduler_->onIntervalProfiles(lastProfiles_);
    partMgr_->onInterval(lastProfiles_, memCycle_);
}

void
System::tickCpu()
{
    // Deliver due cache hits.
    while (!pendingHits_.empty() &&
           pendingHits_.front().dueCpu <= cpuCycle_) {
        PendingHit h = pendingHits_.front();
        pendingHits_.pop_front();
        if (h.client)
            h.client->readComplete(h.tag);
    }

    // Retry pending writebacks (one attempt per cycle).
    if (!pendingWritebacks_.empty()) {
        const PendingWriteback &wb = pendingWritebacks_.front();
        DramCoord coord = map_.decode(wb.paddr);
        if (controllers_.at(coord.channel)
                ->enqueueWrite(wb.paddr, wb.tid, memCycle_))
            pendingWritebacks_.pop_front();
    }

    for (auto &core : cores_)
        core->tick();

    // Memory domain ticks once per cpuRatio CPU cycles.
    if (cpuCycle_ % params_.cpuRatio == 0) {
        scheduler_->tick(memCycle_);
        for (auto &mc : controllers_)
            mc->tick(memCycle_);
        profiler_->tick();

        // Charge any lazily migrated pages to the involved banks.
        auto moves = os_->drainLazyMoves();
        if (!moves.empty())
            partMgr_->applyLazyMoves(moves, memCycle_);
        ++memCycle_;
    }

    ++cpuCycle_;
    if (cpuCycle_ >= nextInterval_) {
        intervalBoundary();
        nextInterval_ += params_.profileIntervalCpu;
    }
}

void
System::run(Cycle cpu_cycles)
{
    for (Cycle i = 0; i < cpu_cycles; ++i)
        tickCpu();
}

std::vector<InstCount>
System::instructionSnapshot() const
{
    std::vector<InstCount> out;
    out.reserve(cores_.size());
    for (const auto &core : cores_)
        out.push_back(core->instructionsRetired());
    return out;
}

std::vector<double>
System::runAndMeasure(Cycle warmup_cpu, Cycle measure_cpu)
{
    DBP_ASSERT(measure_cpu > 0, "measurement window must be > 0");
    run(warmup_cpu);
    std::vector<InstCount> before = instructionSnapshot();
    run(measure_cpu);
    std::vector<InstCount> after = instructionSnapshot();

    std::vector<double> ipc(cores_.size());
    for (std::size_t c = 0; c < cores_.size(); ++c)
        ipc[c] = static_cast<double>(after[c] - before[c]) /
            static_cast<double>(measure_cpu);
    return ipc;
}

void
System::dumpStats(std::ostream &os) const
{
    os << "sim.cpu_cycles                   " << cpuCycle_ << '\n';
    os << "sim.mem_cycles                   " << memCycle_ << '\n';

    for (unsigned c = 0; c < controllers_.size(); ++c) {
        const MemoryController &mc = *controllers_[c];
        std::string prefix = "mem" + std::to_string(c);
        StatGroup g(prefix);
        g.addScalar("reads_enqueued", &mc.statReadsEnqueued);
        g.addScalar("writes_enqueued", &mc.statWritesEnqueued);
        g.addScalar("write_forwards", &mc.statWriteForwards);
        g.addScalar("write_coalesced", &mc.statWriteCoalesced);
        g.addScalar("read_queue_full", &mc.statReadQueueFull);
        g.addScalar("write_queue_full", &mc.statWriteQueueFull);
        g.addScalar("dram_activates", &mc.channel().statActs);
        g.addScalar("dram_precharges", &mc.channel().statPrecharges);
        g.addScalar("dram_reads", &mc.channel().statReads);
        g.addScalar("dram_writes", &mc.channel().statWrites);
        g.addScalar("dram_refreshes", &mc.channel().statRefreshes);
        g.addScalar("dram_refreshes_pb", &mc.channel().statRefreshesPb);
        g.addScalar("dram_sasels", &mc.channel().statSaSels);
        g.dump(os);
    }

    for (unsigned t = 0; t < cores_.size(); ++t) {
        const TraceCore &core = *cores_[t];
        StatGroup g("core" + std::to_string(t));
        g.addScalar("loads", &core.statLoads);
        g.addScalar("stores", &core.statStores);
        g.addScalar("mshr_merges", &core.statMshrMerges);
        g.addScalar("head_stalls", &core.statHeadStalls);
        g.addScalar("mshr_stalls", &core.statMshrStalls);
        g.addScalar("store_stalls", &core.statStoreStalls);
        g.dump(os);
        os << "core" << t << ".instructions                    "
           << core.instructionsRetired() << '\n';
    }

    {
        StatGroup g("os");
        g.addScalar("frames_allocated", &os_->allocator().statAllocs);
        g.addScalar("frames_released", &os_->allocator().statReleases);
        g.addScalar("fallback_allocs",
                    &os_->allocator().statFallbackAllocs);
        g.addScalar("pages_migrated", &os_->statMigratedPages);
        g.dump(os);
    }
    {
        StatGroup g("part");
        g.addScalar("repartitions", &partMgr_->statRepartitions);
        g.addScalar("pages_migrated", &partMgr_->statPagesMigrated);
        g.dump(os);
    }
    if (checker_) {
        StatGroup g("check");
        checker_->addStats(g);
        g.dump(os);
    }
}

double
System::threadRowHitRate(ThreadId tid) const
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto &mc : controllers_) {
        const auto &ts = mc->threadStats(tid);
        hits += ts.rowHits;
        misses += ts.rowMisses;
    }
    std::uint64_t total = hits + misses;
    return total == 0
        ? 0.0
        : static_cast<double>(hits) / static_cast<double>(total);
}

double
System::threadReadLatencyPercentile(ThreadId tid, double p) const
{
    DBP_ASSERT(p > 0.0 && p <= 1.0, "percentile out of (0,1]");
    const StatHistogram &ref =
        controllers_.front()->latencyHistogram(tid);
    std::size_t buckets = ref.bucketCount();
    double width = ref.bucketWidth();

    std::vector<std::uint64_t> merged(buckets + 1, 0);
    std::uint64_t total = 0;
    for (const auto &mc : controllers_) {
        const StatHistogram &h = mc->latencyHistogram(tid);
        for (std::size_t b = 0; b < buckets; ++b)
            merged[b] += h.bucket(b);
        merged[buckets] += h.overflow();
        total += h.count();
    }
    if (total == 0)
        return 0.0;

    auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b <= buckets; ++b) {
        seen += merged[b];
        if (seen >= target)
            return (static_cast<double>(std::min(b, buckets - 1)) + 1) *
                width;
    }
    return static_cast<double>(buckets) * width;
}

double
System::threadAvgReadLatency(ThreadId tid) const
{
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
    for (const auto &mc : controllers_) {
        const auto &ts = mc->threadStats(tid);
        sum += ts.readLatencySum;
        count += ts.readsCompleted;
    }
    return count == 0
        ? 0.0
        : static_cast<double>(sum) / static_cast<double>(count);
}

} // namespace dbpsim
