/**
 * @file
 * The full simulated machine: trace-driven cores over an OS
 * virtual-memory model, optional private caches, and per-channel
 * memory controllers with a shared scheduler, profiler and partition
 * manager. Drives the two clock domains (CPU and memory bus) and the
 * profiling/repartitioning interval.
 */

#ifndef DBPSIM_SIM_SYSTEM_HH
#define DBPSIM_SIM_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "check/protocol_check.hh"
#include "core/core.hh"
#include "dram/addr_map.hh"
#include "mem/controller.hh"
#include "mem/profiler.hh"
#include "mem/scheduler.hh"
#include "os/os_memory.hh"
#include "part/manager.hh"
#include "sim/params.hh"
#include "trace/source.hh"

namespace dbpsim {

/**
 * The machine.
 */
class System : public CoreMemoryInterface
{
  public:
    /**
     * @param params Full configuration.
     * @param sources One trace source per core (not owned; must
     *        outlive the system).
     */
    System(const SystemParams &params,
           const std::vector<TraceSource *> &sources);

    /** Advance @p cpu_cycles CPU cycles. */
    void run(Cycle cpu_cycles);

    /**
     * Snapshot per-core retired-instruction counters; with a second
     * snapshot after run(), the caller derives interval IPCs.
     */
    std::vector<InstCount> instructionSnapshot() const;

    /** Convenience: run a warmup + measurement, return measured IPCs. */
    std::vector<double> runAndMeasure(Cycle warmup_cpu,
                                      Cycle measure_cpu);

    /** CoreMemoryInterface: translate, (cache), route, enqueue. */
    bool issueLoad(ThreadId tid, Addr vaddr, MemClient *client,
                   std::uint64_t tag) override;
    bool issueStore(ThreadId tid, Addr vaddr) override;

    /** @name Component access (examples, tests, benches). */
    /// @{
    const SystemParams &params() const { return params_; }
    const AddressMap &addressMap() const { return map_; }
    OsMemory &osMemory() { return *os_; }
    ThreadProfiler &profiler() { return *profiler_; }
    Scheduler &scheduler() { return *scheduler_; }
    PartitionManager &partitionManager() { return *partMgr_; }
    TraceCore &coreAt(unsigned i) { return *cores_.at(i); }
    MemoryController &controllerAt(unsigned i)
    {
        return *controllers_.at(i);
    }
    unsigned numControllers() const
    {
        return static_cast<unsigned>(controllers_.size());
    }

    /**
     * The DRAM protocol checker, or nullptr when params.protocolCheck
     * is off. Observes every channel and the OS partitioning events.
     */
    ProtocolChecker *protocolChecker() { return checker_.get(); }
    const ProtocolChecker *protocolChecker() const
    {
        return checker_.get();
    }
    Cycle cpuCycle() const { return cpuCycle_; }
    Cycle memCycle() const { return memCycle_; }
    /// @}

    /**
     * Force a profiling-interval boundary right now (used to close a
     * run-spanning interval at the end of an alone run).
     */
    void closeIntervalNow() { intervalBoundary(); }

    /** Profiles from the most recently closed interval (may be empty
     *  before the first boundary). */
    const std::vector<ThreadMemProfile> &lastIntervalProfiles() const
    {
        return lastProfiles_;
    }

    /**
     * Dump every component's statistics ("group.stat value" lines):
     * per-channel DRAM command counts and queue stats, per-core
     * retirement and stall counters, OS allocation/migration totals,
     * and partition-manager activity.
     */
    void dumpStats(std::ostream &os) const;

    /** Aggregate a thread's actual (interference-included) row-buffer
     *  hit rate across controllers. */
    double threadRowHitRate(ThreadId tid) const;

    /** Aggregate a thread's average read latency in bus cycles. */
    double threadAvgReadLatency(ThreadId tid) const;

    /**
     * A thread's read-latency percentile (0 < p <= 1) in bus cycles,
     * merged across channels from the controllers' histograms.
     * Overflow samples report the histogram's upper bound.
     */
    double threadReadLatencyPercentile(ThreadId tid, double p) const;

  private:
    /** One CPU cycle of work. */
    void tickCpu();

    /** Close the profiling interval and notify consumers. */
    void intervalBoundary();

    SystemParams params_;
    AddressMap map_;
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<OsMemory> os_;
    std::unique_ptr<ThreadProfiler> profiler_;
    std::unique_ptr<Scheduler> scheduler_;
    std::vector<std::unique_ptr<MemoryController>> controllers_;
    std::unique_ptr<PartitionManager> partMgr_;
    std::vector<std::unique_ptr<TraceCore>> cores_;
    std::vector<std::unique_ptr<SetAssocCache>> caches_;

    /** Cache-hit completions waiting for their due CPU cycle. */
    struct PendingHit
    {
        Cycle dueCpu;
        MemClient *client;
        std::uint64_t tag;
    };
    std::deque<PendingHit> pendingHits_;

    /** Writebacks that could not enter a write queue yet. */
    struct PendingWriteback
    {
        ThreadId tid;
        Addr paddr;
    };
    std::deque<PendingWriteback> pendingWritebacks_;

    Cycle cpuCycle_ = 0;
    Cycle memCycle_ = 0;
    Cycle nextInterval_;
    std::vector<InstCount> intervalInstrBase_;
    std::vector<ThreadMemProfile> lastProfiles_;
};

} // namespace dbpsim

#endif // DBPSIM_SIM_SYSTEM_HH
