#include "trace/mix.hh"

#include "common/log.hh"
#include "trace/spec_profiles.hh"

namespace dbpsim {

double
WorkloadMix::intensiveFraction() const
{
    if (apps.empty())
        return 0.0;
    unsigned intensive = 0;
    for (const auto &a : apps)
        if (specProfile(a).intensive)
            ++intensive;
    return static_cast<double>(intensive) /
        static_cast<double>(apps.size());
}

const std::vector<WorkloadMix> &
standardMixes()
{
    static const std::vector<WorkloadMix> mixes = {
        // 25 % intensive.
        {"W01", {"mcf", "lbm", "gcc", "bzip2", "hmmer", "h264ref",
                 "namd", "povray"}},
        {"W02", {"libquantum", "omnetpp", "gcc", "hmmer", "h264ref",
                 "calculix", "namd", "povray"}},
        {"W03", {"soplex", "sphinx3", "bzip2", "hmmer", "h264ref",
                 "namd", "povray", "calculix"}},
        // 50 % intensive.
        {"W04", {"mcf", "lbm", "libquantum", "omnetpp", "gcc",
                 "hmmer", "h264ref", "namd"}},
        {"W05", {"milc", "soplex", "gems", "astar", "namd", "povray",
                 "calculix", "gcc"}},
        {"W06", {"mcf", "libquantum", "leslie3d", "sphinx3", "hmmer",
                 "h264ref", "namd", "povray"}},
        // 75 % intensive.
        {"W07", {"mcf", "lbm", "libquantum", "milc", "soplex",
                 "omnetpp", "gcc", "hmmer"}},
        {"W08", {"gems", "leslie3d", "sphinx3", "astar", "bwaves",
                 "xalancbmk", "hmmer", "h264ref"}},
        {"W09", {"mcf", "omnetpp", "soplex", "bwaves", "libquantum",
                 "astar", "povray", "calculix"}},
        // 100 % intensive.
        {"W10", {"mcf", "lbm", "libquantum", "milc", "soplex",
                 "omnetpp", "gems", "leslie3d"}},
        {"W11", {"sphinx3", "astar", "bwaves", "xalancbmk", "mcf",
                 "lbm", "omnetpp", "soplex"}},
        {"W12", {"milc", "gems", "leslie3d", "bwaves", "xalancbmk",
                 "sphinx3", "astar", "mcf"}},
    };
    return mixes;
}

const WorkloadMix &
mixByName(const std::string &name)
{
    for (const auto &m : standardMixes())
        if (m.name == name)
            return m;
    fatal("unknown workload mix '", name, "'");
}

WorkloadMix
scaleMix(const WorkloadMix &mix, unsigned cores)
{
    DBP_ASSERT(!mix.apps.empty(), "cannot scale an empty mix");
    if (cores == mix.apps.size())
        return mix;
    WorkloadMix out;
    out.name = mix.name + "x" + std::to_string(cores);
    out.apps.reserve(cores);
    for (unsigned i = 0; i < cores; ++i)
        out.apps.push_back(mix.apps[i % mix.apps.size()]);
    return out;
}

std::vector<std::unique_ptr<TraceSource>>
buildMixSources(const WorkloadMix &mix, std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.reserve(mix.apps.size());
    for (std::size_t i = 0; i < mix.apps.size(); ++i) {
        std::uint64_t seed = seed_base * 1000003ULL + i * 7919ULL + 1;
        sources.push_back(makeSpecSource(mix.apps[i], seed));
    }
    return sources;
}

} // namespace dbpsim
