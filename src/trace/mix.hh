/**
 * @file
 * Multiprogrammed workload mixes.
 *
 * The standard evaluation set (W01..W12) mirrors the paper's
 * methodology: mixes graded by the fraction of memory-intensive
 * applications (25 % / 50 % / 75 % / 100 %), three mixes per grade,
 * eight applications each.
 */

#ifndef DBPSIM_TRACE_MIX_HH
#define DBPSIM_TRACE_MIX_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace dbpsim {

/**
 * A named list of application profiles, one per core.
 */
struct WorkloadMix
{
    std::string name;
    std::vector<std::string> apps;

    /** Fraction of apps classified memory-intensive. */
    double intensiveFraction() const;
};

/** The twelve standard eight-app mixes. */
const std::vector<WorkloadMix> &standardMixes();

/** Look up a standard mix by name; fatal() if unknown. */
const WorkloadMix &mixByName(const std::string &name);

/**
 * Adapt a mix to @p cores applications: truncates when cores is
 * smaller, repeats the app list round-robin when larger.
 */
WorkloadMix scaleMix(const WorkloadMix &mix, unsigned cores);

/**
 * Instantiate one TraceSource per app in the mix. Seeds derive from
 * @p seed_base and the core index, so two instances of the same
 * profile in one mix produce distinct (but reproducible) streams.
 */
std::vector<std::unique_ptr<TraceSource>>
buildMixSources(const WorkloadMix &mix, std::uint64_t seed_base);

} // namespace dbpsim

#endif // DBPSIM_TRACE_MIX_HH
