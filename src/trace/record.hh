/**
 * @file
 * The unit of work a core consumes: a run of non-memory instructions
 * followed by one memory access. This is the standard "filtered trace"
 * representation used by memory-scheduling studies: the stream already
 * reflects post-cache (DRAM-bound) accesses.
 */

#ifndef DBPSIM_TRACE_RECORD_HH
#define DBPSIM_TRACE_RECORD_HH

#include <cstdint>

#include "common/types.hh"

namespace dbpsim {

/**
 * One trace record.
 */
struct TraceRecord
{
    /** Non-memory instructions retired before the access. */
    std::uint32_t gap = 0;

    /** Line-aligned virtual address of the access. */
    Addr vaddr = 0;

    /** True for a store, false for a load. */
    bool write = false;

    bool operator==(const TraceRecord &o) const = default;
};

} // namespace dbpsim

#endif // DBPSIM_TRACE_RECORD_HH
