/**
 * @file
 * Abstract producer of trace records. Synthetic generators are
 * infinite; file-backed sources can wrap around to emulate steady
 * state.
 */

#ifndef DBPSIM_TRACE_SOURCE_HH
#define DBPSIM_TRACE_SOURCE_HH

#include <string>

#include "trace/record.hh"

namespace dbpsim {

/**
 * Interface for anything a core can fetch trace records from.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record. Sources never run dry (they wrap). */
    virtual TraceRecord next() = 0;

    /** Rewind to the initial state (deterministic replays). */
    virtual void reset() = 0;

    /** Human-readable name (profile or file name). */
    virtual std::string name() const = 0;
};

} // namespace dbpsim

#endif // DBPSIM_TRACE_SOURCE_HH
