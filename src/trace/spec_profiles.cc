#include "trace/spec_profiles.hh"

#include "common/log.hh"

namespace dbpsim {

namespace {

/** Build one single-phase profile. */
SpecProfileInfo
profile(const std::string &name, const std::string &desc, double mpki,
        unsigned streams, double seq_run, double random_frac,
        double write_frac, std::uint64_t footprint_pages)
{
    SpecProfileInfo info;
    info.name = name;
    info.description = desc;
    info.intensive = mpki >= 1.0;

    SyntheticPhase p;
    p.mpki = mpki;
    p.streams = streams;
    p.seqRunLines = seq_run;
    p.randomFrac = random_frac;
    p.writeFrac = write_frac;
    p.footprintPages = footprint_pages;

    info.params.name = name;
    info.params.phases = {p};
    return info;
}

std::vector<SpecProfileInfo>
buildProfiles()
{
    std::vector<SpecProfileInfo> v;

    // ---- Memory-intensive (MPKI >= 1) ------------------------------
    // Pointer-chasing, bank-parallel, row-buffer hostile.
    v.push_back(profile("mcf",
        "pointer chasing; very high BLP, low row locality",
        16.9, 8, 2.0, 0.60, 0.20, 98304));
    // Streaming stencil with many concurrent arrays; writes heavily.
    v.push_back(profile("lbm",
        "multi-array streaming stencil; high BLP, high row locality",
        31.9, 6, 64.0, 0.02, 0.45, 98304));
    // Single sequential sweep; the classic 1-bank-is-enough stream.
    v.push_back(profile("libquantum",
        "single-stream sequential sweep; BLP ~1, extreme row locality",
        25.4, 1, 128.0, 0.00, 0.25, 8192));
    v.push_back(profile("milc",
        "lattice QCD; streaming with moderate BLP",
        12.3, 3, 48.0, 0.10, 0.30, 65536));
    v.push_back(profile("soplex",
        "sparse LP solver; mixed streaming/irregular",
        21.2, 4, 24.0, 0.15, 0.25, 65536));
    v.push_back(profile("omnetpp",
        "discrete event simulation; irregular heap walks",
        7.1, 5, 3.0, 0.50, 0.30, 40960));
    v.push_back(profile("gems",
        "GemsFDTD; large streaming grids, moderate locality",
        9.8, 4, 40.0, 0.10, 0.30, 98304));
    v.push_back(profile("leslie3d",
        "CFD; streaming, good locality",
        7.5, 4, 56.0, 0.05, 0.30, 32768));
    v.push_back(profile("sphinx3",
        "speech recognition; read-dominated moderate locality",
        10.5, 2, 30.0, 0.15, 0.10, 24576));
    v.push_back(profile("astar",
        "path finding; irregular, low intensity among intensives",
        3.7, 3, 4.0, 0.40, 0.25, 24576));
    v.push_back(profile("bwaves",
        "blast-wave CFD; wide streaming, high BLP",
        15.0, 5, 80.0, 0.02, 0.20, 98304));

    // Phase-alternating application: streams sequentially for a while,
    // then switches to irregular parallel pointer chasing. Exercises
    // DBP's runtime re-estimation (no static partition suits both).
    {
        SpecProfileInfo info;
        info.name = "xalancbmk";
        info.description =
            "phase-alternating: sequential phase then irregular phase";
        info.intensive = true;
        SyntheticPhase seq;
        seq.mpki = 8.0;
        seq.streams = 1;
        seq.seqRunLines = 96.0;
        seq.randomFrac = 0.02;
        seq.writeFrac = 0.30;
        seq.footprintPages = 32768;
        seq.durationKiloInst = 12000;
        SyntheticPhase irr = seq;
        irr.streams = 6;
        irr.seqRunLines = 3.0;
        irr.randomFrac = 0.45;
        irr.durationKiloInst = 12000;
        info.params.name = info.name;
        info.params.phases = {seq, irr};
        v.push_back(info);
    }

    // ---- Non-intensive (MPKI < 1) ----------------------------------
    v.push_back(profile("gcc",
        "compiler; cache friendly, sporadic misses",
        0.40, 2, 8.0, 0.20, 0.30, 8192));
    v.push_back(profile("bzip2",
        "compression; bursty but mostly cached",
        0.90, 2, 16.0, 0.20, 0.30, 16384));
    v.push_back(profile("hmmer",
        "HMM search; tiny working set",
        0.80, 1, 32.0, 0.05, 0.35, 4096));
    v.push_back(profile("h264ref",
        "video encoding; cache resident",
        0.50, 2, 24.0, 0.10, 0.30, 4096));
    v.push_back(profile("namd",
        "molecular dynamics; compute bound",
        0.06, 1, 16.0, 0.10, 0.30, 4096));
    v.push_back(profile("povray",
        "ray tracing; nearly no DRAM traffic",
        0.01, 1, 8.0, 0.20, 0.30, 2048));
    v.push_back(profile("calculix",
        "FEM; compute bound",
        0.05, 1, 24.0, 0.10, 0.30, 4096));

    // Classification follows the MPKI >= 1 convention of the paper
    // (xalancbmk is intensive in both of its phases).
    for (auto &p : v)
        p.intensive = p.params.phases.front().mpki >= 1.0;
    return v;
}

} // namespace

const std::vector<SpecProfileInfo> &
specProfiles()
{
    static const std::vector<SpecProfileInfo> profiles = buildProfiles();
    return profiles;
}

bool
hasSpecProfile(const std::string &name)
{
    for (const auto &p : specProfiles())
        if (p.name == name)
            return true;
    return false;
}

const SpecProfileInfo &
specProfile(const std::string &name)
{
    for (const auto &p : specProfiles())
        if (p.name == name)
            return p;
    fatal("unknown application profile '", name, "'");
}

std::unique_ptr<TraceSource>
makeSpecSource(const std::string &name, std::uint64_t seed)
{
    SyntheticParams params = specProfile(name).params;
    params.seed = seed;
    return std::make_unique<SyntheticSource>(params);
}

} // namespace dbpsim
