/**
 * @file
 * A library of named synthetic application profiles calibrated to the
 * published memory characteristics (MPKI, row-buffer locality,
 * bank-level parallelism, footprint, write ratio) of the SPEC CPU2006
 * benchmarks used by the DBP / TCM / MCP papers. See DESIGN.md for the
 * substitution rationale: DBP's decisions depend only on these stream
 * statistics, which the generators reproduce.
 */

#ifndef DBPSIM_TRACE_SPEC_PROFILES_HH
#define DBPSIM_TRACE_SPEC_PROFILES_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace dbpsim {

/**
 * One named profile plus its headline characteristics.
 */
struct SpecProfileInfo
{
    std::string name;        ///< benchmark-like name (e.g. "mcf").
    std::string description; ///< one-line behavioural summary.
    SyntheticParams params;  ///< generator parameterization.
    bool intensive = false;  ///< memory-intensive (MPKI >= 1) class.
};

/** All profiles, in a stable order. */
const std::vector<SpecProfileInfo> &specProfiles();

/** Look up one profile by name; fatal() if unknown. */
const SpecProfileInfo &specProfile(const std::string &name);

/** True iff a profile with this name exists. */
bool hasSpecProfile(const std::string &name);

/**
 * Instantiate a generator for profile @p name with the given seed
 * (seeds differentiate multiple instances of the same profile).
 */
std::unique_ptr<TraceSource> makeSpecSource(const std::string &name,
                                            std::uint64_t seed);

} // namespace dbpsim

#endif // DBPSIM_TRACE_SPEC_PROFILES_HH
