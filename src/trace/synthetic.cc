#include "trace/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dbpsim {

SyntheticSource::SyntheticSource(SyntheticParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    if (params_.phases.empty())
        fatal("synthetic source '", params_.name, "' has no phases");
    for (const auto &p : params_.phases) {
        if (p.mpki <= 0.0)
            fatal(params_.name, ": mpki must be > 0 (got ", p.mpki, ")");
        if (p.streams == 0)
            fatal(params_.name, ": streams must be >= 1");
        if (p.seqRunLines < 1.0)
            fatal(params_.name, ": seqRunLines must be >= 1");
        if (p.randomFrac < 0.0 || p.randomFrac > 1.0)
            fatal(params_.name, ": randomFrac out of [0,1]");
        if (p.writeFrac < 0.0 || p.writeFrac > 1.0)
            fatal(params_.name, ": writeFrac out of [0,1]");
        if (p.footprintPages == 0)
            fatal(params_.name, ": footprintPages must be >= 1");
    }
    reset();
}

void
SyntheticSource::reset()
{
    rng_ = Rng(params_.seed);
    instrRetired_ = 0;
    enterPhase(0);
}

void
SyntheticSource::enterPhase(std::size_t idx)
{
    phaseIdx_ = idx;
    const SyntheticPhase &p = phase();
    phaseInstrLeft_ = p.durationKiloInst * 1000;

    cursors_.resize(p.streams);
    // Spread cursors over disjoint regions of the footprint so streams
    // start in different pages (and therefore different banks).
    std::uint64_t lines = p.footprintPages *
        (kTracePageBytes / kTraceLineBytes);
    for (unsigned s = 0; s < p.streams; ++s) {
        std::uint64_t region = lines / p.streams;
        std::uint64_t base = region * s;
        std::uint64_t off = region == 0 ? 0 : rng_.nextBelow(region);
        cursors_[s] = (base + off) * kTraceLineBytes;
    }
    nextStream_ = 0;
}

Addr
SyntheticSource::randomLine()
{
    std::uint64_t lines = phase().footprintPages *
        (kTracePageBytes / kTraceLineBytes);
    return rng_.nextBelow(lines) * kTraceLineBytes;
}

TraceRecord
SyntheticSource::next()
{
    const SyntheticPhase &p = phase();

    // Gap: geometric with mean (1000/mpki - 1) non-memory instructions
    // per access, so total instructions per access averages 1000/mpki.
    double per_access = 1000.0 / p.mpki;
    double mean_gap = std::max(0.0, per_access - 1.0);
    std::uint32_t gap = 0;
    if (mean_gap > 0.0) {
        double success = 1.0 / (mean_gap + 1.0);
        gap = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rng_.nextGeometric(success), 100000));
    }

    TraceRecord rec;
    rec.gap = gap;
    rec.write = rng_.nextBool(p.writeFrac);

    if (rng_.nextBool(p.randomFrac)) {
        rec.vaddr = randomLine();
    } else {
        // Round-robin across sequential streams.
        std::size_t s = nextStream_;
        nextStream_ = (nextStream_ + 1) % cursors_.size();

        // With probability 1/seqRunLines the stream relocates before
        // the access, ending its sequential run.
        if (rng_.nextBool(1.0 / p.seqRunLines))
            cursors_[s] = randomLine();

        rec.vaddr = cursors_[s];
        std::uint64_t lines = p.footprintPages *
            (kTracePageBytes / kTraceLineBytes);
        std::uint64_t line = cursors_[s] / kTraceLineBytes + 1;
        if (line >= lines)
            line = 0;
        cursors_[s] = line * kTraceLineBytes;
    }

    // Phase accounting (gap + 1 instructions retired by this record).
    std::uint64_t consumed = static_cast<std::uint64_t>(gap) + 1;
    instrRetired_ += consumed;
    if (phaseInstrLeft_ > 0) {
        if (consumed >= phaseInstrLeft_) {
            std::size_t nxt = (phaseIdx_ + 1) % params_.phases.size();
            enterPhase(nxt);
        } else {
            phaseInstrLeft_ -= consumed;
        }
    }
    return rec;
}

} // namespace dbpsim
