/**
 * @file
 * Synthetic memory-trace generator.
 *
 * Generates an infinite stream of TraceRecords whose aggregate
 * statistics — memory intensity (MPKI), row-buffer locality, bank-level
 * parallelism and footprint — are dialed in by a small parameter set.
 * This is the substitution for SPEC CPU2006 traces (see DESIGN.md):
 * Dynamic Bank Partitioning's decisions depend only on exactly these
 * stream statistics.
 *
 * Mechanics: the generator maintains `streams` concurrent sequential
 * cursors over the virtual footprint. Each access picks the next
 * cursor round-robin (interleaving streams is what creates BLP once
 * requests queue up in the memory system) and either continues the
 * cursor's sequential run or — with probability 1/seqRunLines — jumps
 * the cursor to a random page. Additionally a `randomFrac` fraction of
 * accesses touch a uniformly random line (row-buffer hostile).
 * Instruction gaps between accesses are geometric with mean set by
 * MPKI. Multi-phase parameter sets model program phase behaviour.
 */

#ifndef DBPSIM_TRACE_SYNTHETIC_HH
#define DBPSIM_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "trace/source.hh"

namespace dbpsim {

/**
 * Parameters of one behaviour phase.
 */
struct SyntheticPhase
{
    /** DRAM accesses per kilo-instruction. */
    double mpki = 10.0;

    /** Concurrent sequential streams (bank-level-parallelism knob). */
    unsigned streams = 2;

    /** Mean sequential run length in lines before a stream jumps. */
    double seqRunLines = 32.0;

    /** Fraction of accesses that are uniformly random lines. */
    double randomFrac = 0.0;

    /** Fraction of accesses that are stores. */
    double writeFrac = 0.25;

    /** Virtual footprint in OS pages. */
    std::uint64_t footprintPages = 16384;

    /** Phase length in kilo-instructions (0 = runs forever). */
    std::uint64_t durationKiloInst = 0;
};

/**
 * Full generator parameterization: one or more phases, looped.
 */
struct SyntheticParams
{
    std::string name = "synthetic";
    // Value-initialized rather than list-initialized: the braced
    // temporary trips GCC's -Wmaybe-uninitialized when the whole
    // struct is constructed inline at -O2.
    std::vector<SyntheticPhase> phases =
        std::vector<SyntheticPhase>(1);
    std::uint64_t seed = 1;
};

/**
 * The generator itself.
 */
class SyntheticSource : public TraceSource
{
  public:
    /** @param params Validated on construction (fatal on nonsense). */
    explicit SyntheticSource(SyntheticParams params);

    TraceRecord next() override;
    void reset() override;
    std::string name() const override { return params_.name; }

    /** Parameters in use (for reporting). */
    const SyntheticParams &params() const { return params_; }

  private:
    /** Switch stream cursors / RNG to phase @p idx. */
    void enterPhase(std::size_t idx);

    /** Current phase parameters. */
    const SyntheticPhase &phase() const { return params_.phases[phaseIdx_]; }

    /** Random line-aligned vaddr within the current footprint. */
    Addr randomLine();

    SyntheticParams params_;
    Rng rng_;

    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseInstrLeft_ = 0; ///< instructions left in phase.
    std::uint64_t instrRetired_ = 0;

    /** Per-stream sequential cursors (line-aligned vaddrs). */
    std::vector<Addr> cursors_;
    std::size_t nextStream_ = 0;
};

/** Line size assumed by the generators (matches DramGeometry default). */
constexpr std::uint64_t kTraceLineBytes = 64;

/** OS page size assumed by the generators. */
constexpr std::uint64_t kTracePageBytes = 4096;

} // namespace dbpsim

#endif // DBPSIM_TRACE_SYNTHETIC_HH
