#include "trace/trace_file.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dbpsim {

namespace {
constexpr const char *kHeader = "# dbpsim-trace v1";
} // namespace

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << kHeader << '\n';
    for (const auto &r : records) {
        out << r.gap << " 0x" << std::hex << r.vaddr << std::dec << ' '
            << (r.write ? 'W' : 'R') << '\n';
    }
    if (!out)
        fatal("I/O error while writing '", path, "'");
}

std::vector<TraceRecord>
captureRecords(TraceSource &source, std::size_t count)
{
    std::vector<TraceRecord> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(source.next());
    return out;
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");

    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        fatal("'", path, "': missing dbpsim-trace v1 header");

    std::vector<TraceRecord> records;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        TraceRecord r;
        std::string addr_tok, rw_tok;
        if (!(is >> r.gap >> addr_tok >> rw_tok))
            fatal("'", path, "' line ", line_no, ": malformed record");
        errno = 0;
        char *end = nullptr;
        r.vaddr = std::strtoull(addr_tok.c_str(), &end, 0);
        if (errno != 0 || end == addr_tok.c_str() || *end != '\0')
            fatal("'", path, "' line ", line_no, ": bad address '",
                  addr_tok, "'");
        if (rw_tok == "W" || rw_tok == "w")
            r.write = true;
        else if (rw_tok == "R" || rw_tok == "r")
            r.write = false;
        else
            fatal("'", path, "' line ", line_no, ": bad R/W flag '",
                  rw_tok, "'");
        records.push_back(r);
    }
    if (records.empty())
        fatal("'", path, "': trace contains no records");
    return records;
}

TraceFileSource::TraceFileSource(std::string name,
                                 std::vector<TraceRecord> records)
    : name_(std::move(name)), records_(std::move(records))
{
    if (records_.empty())
        fatal("trace source '", name_, "' has no records");
}

TraceFileSource
TraceFileSource::fromFile(const std::string &path)
{
    return TraceFileSource(path, readTraceFile(path));
}

TraceRecord
TraceFileSource::next()
{
    TraceRecord r = records_[pos_];
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++wraps_;
    }
    return r;
}

void
TraceFileSource::reset()
{
    pos_ = 0;
    wraps_ = 0;
}

} // namespace dbpsim
