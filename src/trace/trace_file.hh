/**
 * @file
 * Trace file I/O: lets users capture synthetic traces to disk, inspect
 * them, and replay real traces (e.g. converted SPEC captures) through
 * the simulator. The format is line-oriented text:
 *
 *     # dbpsim-trace v1
 *     <gap> <hex vaddr> <R|W>
 *     ...
 *
 * A file-backed source wraps around at EOF so steady-state simulations
 * never run dry (the standard convention for trace-driven studies).
 */

#ifndef DBPSIM_TRACE_TRACE_FILE_HH
#define DBPSIM_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace dbpsim {

/**
 * Write @p records to @p path in dbpsim-trace v1 format.
 * fatal()s on I/O errors.
 */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/**
 * Capture @p count records from @p source into a vector.
 */
std::vector<TraceRecord> captureRecords(TraceSource &source,
                                        std::size_t count);

/**
 * Parse a dbpsim-trace v1 file; fatal()s on malformed content.
 */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/**
 * A TraceSource replaying an in-memory record list, wrapping at the
 * end. Construct from a file with TraceFileSource::fromFile.
 */
class TraceFileSource : public TraceSource
{
  public:
    /** @param records Must be non-empty. */
    TraceFileSource(std::string name, std::vector<TraceRecord> records);

    /** Load @p path and build a source named after the file. */
    static TraceFileSource fromFile(const std::string &path);

    TraceRecord next() override;
    void reset() override;
    std::string name() const override { return name_; }

    /** Number of records in one pass of the trace. */
    std::size_t size() const { return records_.size(); }

    /** Completed wrap-arounds so far. */
    std::uint64_t wraps() const { return wraps_; }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
    std::uint64_t wraps_ = 0;
};

} // namespace dbpsim

#endif // DBPSIM_TRACE_TRACE_FILE_HH
