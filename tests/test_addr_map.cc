/**
 * @file
 * Address-map tests: decode/encode bijectivity across schemes and
 * geometries (property sweeps), frame-coloring soundness, and the
 * color <-> location arithmetic the OS and partition manager rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "dram/addr_map.hh"

namespace dbpsim {
namespace {

DramGeometry
smallGeometry()
{
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 1024;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

TEST(Geometry, Validation)
{
    DramGeometry g = smallGeometry();
    EXPECT_TRUE(g.validate().empty());

    g.channels = 3; // not a power of two.
    EXPECT_FALSE(g.validate().empty());

    g = smallGeometry();
    g.pageBytes = 16384; // page larger than row.
    EXPECT_FALSE(g.validate().empty());
}

TEST(Geometry, DerivedQuantities)
{
    DramGeometry g = smallGeometry();
    EXPECT_EQ(g.totalBanks(), 32u);
    EXPECT_EQ(g.colsPerRow(), 128u);
    EXPECT_EQ(g.capacityBytes(), 32ULL * 1024 * 8192);
    EXPECT_EQ(g.totalFrames(), g.capacityBytes() / 4096);
}

TEST(MapScheme, Names)
{
    EXPECT_EQ(mapSchemeByName("page"), MapScheme::PageInterleave);
    EXPECT_EQ(mapSchemeByName("row"), MapScheme::RowInterleave);
    EXPECT_EQ(mapSchemeByName("line"), MapScheme::LineInterleave);
    EXPECT_EQ(mapSchemeName(MapScheme::PageInterleave), "page");
}

/** Parameterized over (scheme, bank_xor). */
class AddrMapRoundTrip
    : public ::testing::TestWithParam<std::tuple<MapScheme, bool>>
{
};

TEST_P(AddrMapRoundTrip, DecodeEncodeBijective)
{
    auto [scheme, bank_xor] = GetParam();
    DramGeometry g = smallGeometry();
    AddressMap map(g, scheme, bank_xor);

    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        Addr line = rng.nextBelow(g.capacityBytes() / g.lineBytes);
        Addr addr = line * g.lineBytes;
        DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.rank, g.ranksPerChannel);
        EXPECT_LT(c.bank, g.banksPerRank);
        EXPECT_LT(c.row, g.rowsPerBank);
        EXPECT_LT(c.col, g.colsPerRow());
        EXPECT_EQ(map.encode(c), addr);
    }
}

TEST_P(AddrMapRoundTrip, EncodeDecodeBijective)
{
    auto [scheme, bank_xor] = GetParam();
    DramGeometry g = smallGeometry();
    AddressMap map(g, scheme, bank_xor);

    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        DramCoord c;
        c.channel = static_cast<unsigned>(rng.nextBelow(g.channels));
        c.rank = static_cast<unsigned>(rng.nextBelow(g.ranksPerChannel));
        c.bank = static_cast<unsigned>(rng.nextBelow(g.banksPerRank));
        c.row = rng.nextBelow(g.rowsPerBank);
        c.col = rng.nextBelow(g.colsPerRow());
        EXPECT_EQ(map.decode(map.encode(c)), c);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndXor, AddrMapRoundTrip,
    ::testing::Combine(::testing::Values(MapScheme::PageInterleave,
                                         MapScheme::RowInterleave,
                                         MapScheme::LineInterleave),
                       ::testing::Bool()));

/** Parameterized geometry sweep for the coloring-critical scheme. */
class AddrMapGeometry
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, unsigned>>
{
};

TEST_P(AddrMapGeometry, PageInterleaveRoundTripAndColoring)
{
    auto [channels, ranks, banks] = GetParam();
    DramGeometry g = smallGeometry();
    g.channels = channels;
    g.ranksPerChannel = ranks;
    g.banksPerRank = banks;
    AddressMap map(g, MapScheme::PageInterleave);

    EXPECT_TRUE(map.supportsBankColoring());
    EXPECT_EQ(map.numColors(), channels * ranks * banks);

    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        Addr line = rng.nextBelow(g.capacityBytes() / g.lineBytes);
        Addr addr = line * g.lineBytes;
        DramCoord c = map.decode(addr);
        EXPECT_EQ(map.encode(c), addr);

        // Every byte of the frame shares the frame's color.
        std::uint64_t frame = addr / g.pageBytes;
        EXPECT_EQ(map.colorOf(c), map.colorOfFrame(frame));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddrMapGeometry,
    ::testing::Values(std::make_tuple(1u, 1u, 8u),
                      std::make_tuple(1u, 2u, 8u),
                      std::make_tuple(2u, 2u, 8u),
                      std::make_tuple(2u, 1u, 16u),
                      std::make_tuple(4u, 2u, 8u),
                      std::make_tuple(2u, 2u, 16u)));

TEST(AddrMap, FrameSpansSingleBankUnderPageInterleave)
{
    DramGeometry g = smallGeometry();
    AddressMap map(g, MapScheme::PageInterleave);

    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t frame = rng.nextBelow(g.totalFrames());
        Addr base = frame * g.pageBytes;
        unsigned color = map.colorOf(map.decode(base));
        for (std::uint64_t off = 0; off < g.pageBytes;
             off += g.lineBytes) {
            EXPECT_EQ(map.colorOf(map.decode(base + off)), color);
        }
    }
}

TEST(AddrMap, LineInterleaveDoesNotSupportColoring)
{
    DramGeometry g = smallGeometry();
    AddressMap line_map(g, MapScheme::LineInterleave);
    EXPECT_FALSE(line_map.supportsBankColoring());

    AddressMap xor_map(g, MapScheme::PageInterleave, true);
    EXPECT_FALSE(xor_map.supportsBankColoring());
}

TEST(AddrMap, FrameColorIndexBijection)
{
    DramGeometry g = smallGeometry();
    AddressMap map(g, MapScheme::PageInterleave);

    std::set<std::uint64_t> seen;
    for (unsigned color = 0; color < map.numColors(); ++color) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            std::uint64_t frame = map.frameOfColorIndex(color, i);
            EXPECT_EQ(map.colorOfFrame(frame), color);
            EXPECT_TRUE(seen.insert(frame).second)
                << "frame " << frame << " produced twice";
        }
    }
    EXPECT_EQ(map.framesPerColor(),
              g.totalFrames() / map.numColors());
}

TEST(AddrMap, ColorLocationInverse)
{
    DramGeometry g = smallGeometry();
    AddressMap map(g, MapScheme::PageInterleave);
    for (unsigned color = 0; color < map.numColors(); ++color) {
        auto loc = map.colorLocation(color);
        DramCoord c;
        c.channel = loc.channel;
        c.rank = loc.rank;
        c.bank = loc.bank;
        EXPECT_EQ(map.colorOf(c), color);
    }
}

TEST(AddrMap, BankXorIsPermutationWithinRow)
{
    DramGeometry g = smallGeometry();
    AddressMap plain(g, MapScheme::RowInterleave, false);
    AddressMap xored(g, MapScheme::RowInterleave, true);

    // For a fixed row, the XOR map permutes banks (bijective over the
    // bank set), so conflicting rows spread.
    std::set<unsigned> banks_seen;
    DramCoord c;
    c.row = 5;
    for (unsigned b = 0; b < g.banksPerRank; ++b) {
        c.bank = b;
        Addr a = xored.encode(c);
        banks_seen.insert(plain.decode(a).bank);
    }
    EXPECT_EQ(banks_seen.size(), g.banksPerRank);
}

} // namespace
} // namespace dbpsim
