/**
 * @file
 * Set-associative cache tests: hit/miss behaviour, LRU replacement
 * order, dirty-victim writebacks, and parameter validation.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace dbpsim {
namespace {

CacheParams
tiny()
{
    CacheParams p;
    p.sizeBytes = 4096; // 64 lines.
    p.associativity = 4;
    p.lineBytes = 64;   // => 16 sets.
    return p;
}

/** Address falling in set @p set with tag @p tag. */
Addr
addrFor(const SetAssocCache &c, std::uint64_t set, std::uint64_t tag)
{
    return (tag * c.numSets() + set) * c.params().lineBytes;
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // same line.
    EXPECT_EQ(c.statMisses.value(), 1u);
    EXPECT_EQ(c.statHits.value(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache c(tiny());
    // Fill one set's 4 ways.
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        c.access(addrFor(c, 3, tag), false);
    // Touch tag 0 so tag 1 becomes LRU.
    c.access(addrFor(c, 3, 0), false);
    // New tag evicts tag 1.
    c.access(addrFor(c, 3, 99), false);
    EXPECT_TRUE(c.contains(addrFor(c, 3, 0)));
    EXPECT_FALSE(c.contains(addrFor(c, 3, 1)));
    EXPECT_TRUE(c.contains(addrFor(c, 3, 2)));
    EXPECT_TRUE(c.contains(addrFor(c, 3, 99)));
}

TEST(Cache, DirtyVictimProducesWriteback)
{
    SetAssocCache c(tiny());
    Addr victim = addrFor(c, 7, 0);
    c.access(victim, true); // dirty.
    for (std::uint64_t tag = 1; tag < 4; ++tag)
        c.access(addrFor(c, 7, tag), false);
    CacheAccessResult res = c.access(addrFor(c, 7, 50), false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, victim);
    EXPECT_EQ(c.statWritebacks.value(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    SetAssocCache c(tiny());
    for (std::uint64_t tag = 0; tag < 4; ++tag)
        c.access(addrFor(c, 7, tag), false);
    CacheAccessResult res = c.access(addrFor(c, 7, 50), false);
    EXPECT_TRUE(res.hit == false && res.writeback == false);
    EXPECT_EQ(c.statEvictions.value(), 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache c(tiny());
    Addr a = addrFor(c, 2, 0);
    c.access(a, false); // clean install.
    c.access(a, true);  // dirty via hit.
    for (std::uint64_t tag = 1; tag < 4; ++tag)
        c.access(addrFor(c, 2, tag), false);
    CacheAccessResult res = c.access(addrFor(c, 2, 9), false);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.writebackAddr, a);
}

TEST(Cache, FlushDropsEverything)
{
    SetAssocCache c(tiny());
    c.access(0x40, true);
    EXPECT_TRUE(c.contains(0x40));
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, HitRate)
{
    SetAssocCache c(tiny());
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40000, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(Cache, RejectsBadParams)
{
    CacheParams p = tiny();
    p.lineBytes = 48;
    EXPECT_DEATH({ SetAssocCache c(p); }, "power of two");

    p = tiny();
    p.associativity = 0;
    EXPECT_DEATH({ SetAssocCache c(p); }, "assoc");
}

TEST(Cache, LargeConfigWorks)
{
    CacheParams p;
    p.sizeBytes = 512 * 1024;
    p.associativity = 8;
    p.lineBytes = 64;
    SetAssocCache c(p);
    EXPECT_EQ(c.numSets(), 1024u);
    for (Addr a = 0; a < 1024 * 1024; a += 64)
        c.access(a, false);
    EXPECT_EQ(c.statMisses.value(), 16384u);
    EXPECT_EQ(c.statEvictions.value(), 8192u);
}

} // namespace
} // namespace dbpsim
