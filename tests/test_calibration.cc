/**
 * @file
 * Calibration property sweeps: every profile in the SPEC-like library
 * must actually generate a stream with its declared statistics (MPKI,
 * write fraction, footprint bound, locality class), across seeds.
 * These tests pin the workload substitution's fidelity (DESIGN.md).
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace dbpsim {
namespace {

struct Measured
{
    double mpki = 0.0;
    double writeFrac = 0.0;
    double seqFrac = 0.0;
    std::uint64_t pages = 0;
};

Measured
measure(TraceSource &src, int accesses)
{
    Measured m;
    std::uint64_t instrs = 0, writes = 0, seq = 0;
    std::set<std::uint64_t> pages;
    // Multi-stream apps interleave several sequential cursors, so a
    // "sequential step" continues ANY of the recent addresses.
    std::deque<Addr> recent;
    for (int i = 0; i < accesses; ++i) {
        TraceRecord r = src.next();
        instrs += r.gap + 1;
        writes += r.write ? 1 : 0;
        pages.insert(r.vaddr / kTracePageBytes);
        for (Addr p : recent) {
            if (r.vaddr == p + kTraceLineBytes) {
                ++seq;
                break;
            }
        }
        recent.push_back(r.vaddr);
        if (recent.size() > 8)
            recent.pop_front();
    }
    double n = accesses;
    m.mpki = 1000.0 * n / static_cast<double>(instrs);
    m.writeFrac = static_cast<double>(writes) / n;
    m.seqFrac = static_cast<double>(seq) / n;
    m.pages = pages.size();
    return m;
}

class ProfileCalibration
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileCalibration, MpkiMatchesDeclared)
{
    const SpecProfileInfo &info = specProfile(GetParam());
    auto src = makeSpecSource(info.name, 11);
    Measured m = measure(*src, 20000);
    double declared = info.params.phases.front().mpki;
    EXPECT_NEAR(m.mpki, declared, declared * 0.1 + 0.05)
        << info.name << " generated MPKI " << m.mpki;
}

TEST_P(ProfileCalibration, WriteFractionMatchesDeclared)
{
    const SpecProfileInfo &info = specProfile(GetParam());
    auto src = makeSpecSource(info.name, 12);
    Measured m = measure(*src, 20000);
    EXPECT_NEAR(m.writeFrac, info.params.phases.front().writeFrac,
                0.03)
        << info.name;
}

TEST_P(ProfileCalibration, FootprintWithinDeclared)
{
    const SpecProfileInfo &info = specProfile(GetParam());
    auto src = makeSpecSource(info.name, 13);
    Measured m = measure(*src, 20000);
    // Never exceeds the declared footprint in any phase.
    std::uint64_t max_pages = 0;
    for (const auto &ph : info.params.phases)
        max_pages = std::max(max_pages, ph.footprintPages);
    EXPECT_LE(m.pages, max_pages) << info.name;
}

TEST_P(ProfileCalibration, SeedsChangeStreamNotStatistics)
{
    const SpecProfileInfo &info = specProfile(GetParam());
    auto a = makeSpecSource(info.name, 100);
    auto b = makeSpecSource(info.name, 200);
    Measured ma = measure(*a, 15000);
    Measured mb = measure(*b, 15000);
    // Statistics agree across seeds...
    EXPECT_NEAR(ma.mpki, mb.mpki, ma.mpki * 0.1 + 0.05) << info.name;
    EXPECT_NEAR(ma.writeFrac, mb.writeFrac, 0.04) << info.name;
    // ...while the concrete streams differ.
    auto a2 = makeSpecSource(info.name, 100);
    auto b2 = makeSpecSource(info.name, 200);
    bool differ = false;
    for (int i = 0; i < 100; ++i)
        differ = differ || !(a2->next() == b2->next());
    EXPECT_TRUE(differ) << info.name;
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &p : specProfiles())
        names.push_back(p.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileCalibration,
                         ::testing::ValuesIn(allProfileNames()));

TEST(ProfileClasses, LocalityClassesSeparate)
{
    // The streaming archetypes must generate far more sequential steps
    // than the irregular archetypes.
    auto seq_frac = [](const std::string &name) {
        auto src = makeSpecSource(name, 5);
        return measure(*src, 15000).seqFrac;
    };
    EXPECT_GT(seq_frac("libquantum"), 0.9);
    EXPECT_GT(seq_frac("bwaves"), 0.8);
    EXPECT_LT(seq_frac("mcf"), 0.3);
    EXPECT_LT(seq_frac("omnetpp"), 0.4);
    EXPECT_GT(seq_frac("libquantum"), seq_frac("mcf") + 0.5);
}

TEST(ProfileClasses, IntensityClassesSeparate)
{
    auto mpki_of = [](const std::string &name) {
        auto src = makeSpecSource(name, 5);
        return measure(*src, 5000).mpki;
    };
    for (const auto &p : specProfiles()) {
        double m = mpki_of(p.name);
        if (p.intensive)
            EXPECT_GE(m, 0.9) << p.name;
        else
            EXPECT_LT(m, 1.1) << p.name;
    }
}

} // namespace
} // namespace dbpsim
