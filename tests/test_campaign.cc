/**
 * @file
 * Campaign-layer tests: JSON round-tripping (the substrate of the
 * bit-identical gate), the name-derived seeding discipline, the
 * shared alone-baseline cache with persistence, and the headline
 * guarantee — a parallel campaign's results are byte-identical to the
 * serial reference, independent of completion order. Runs under TSan
 * in scripts/check.sh (ctest -R 'Executor|Campaign').
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "sim/campaign.hh"

namespace dbpsim {
namespace {

// ---- JSON -----------------------------------------------------------

TEST(CampaignJson, ScalarsAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_EQ(Json(true).asBool(), true);
    EXPECT_DOUBLE_EQ(Json(1.5).asDouble(), 1.5);
    EXPECT_EQ(Json(std::int64_t{-7}).asInt(), -7);
    EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(CampaignJson, ObjectKeepsInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1);
    j.set("apple", 2);
    j.set("mango", 3);
    EXPECT_EQ(j.dump(), "{\"zebra\": 1, \"apple\": 2, \"mango\": 3}");
    j.set("apple", 9); // overwrite keeps the original position.
    EXPECT_EQ(j.dump(), "{\"zebra\": 1, \"apple\": 9, \"mango\": 3}");
}

TEST(CampaignJson, RoundTripIsByteIdentical)
{
    Json j = Json::object();
    j.set("int", std::int64_t{42});
    j.set("neg", -3);
    j.set("frac", 0.1);
    j.set("tiny", 1e-17);
    j.set("big", 1e18);
    j.set("text", "line\n\"quoted\"\t\\");
    Json arr = Json::array();
    arr.push(Json());
    arr.push(false);
    arr.push(2.5);
    j.set("arr", std::move(arr));

    std::string once = j.dump();
    std::string err;
    Json back = Json::parse(once, &err);
    EXPECT_EQ(err, "");
    EXPECT_EQ(back.dump(), once);

    // Pretty-printed text parses back to the same compact form.
    Json pretty = Json::parse(j.dump(2), &err);
    EXPECT_EQ(err, "");
    EXPECT_EQ(pretty.dump(), once);
}

TEST(CampaignJson, ParseRejectsMalformedInput)
{
    std::string err;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"}) {
        err.clear();
        Json v = Json::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

// ---- seeding discipline ---------------------------------------------

TEST(CampaignSeed, DependsOnNamesNotOrder)
{
    // Same (base, mix, scheme) always gives the same seed...
    EXPECT_EQ(jobSeed(42, "W04", "DBP"), jobSeed(42, "W04", "DBP"));
    // ...and any name or base change gives a different one.
    std::set<std::uint64_t> seeds;
    for (const char *mix : {"W01", "W04", "W10"})
        for (const char *scheme : {"FR-FCFS", "UBP", "DBP"})
            for (std::uint64_t base : {1ULL, 42ULL})
                seeds.insert(jobSeed(base, mix, scheme));
    EXPECT_EQ(seeds.size(), 3u * 3u * 2u);
}

TEST(CampaignSeed, ConfigSignatureTracksHardwareChanges)
{
    RunConfig a;
    RunConfig b;
    EXPECT_EQ(runConfigSignature(a), runConfigSignature(b));
    EXPECT_EQ(runConfigHash(a), runConfigHash(b));
    b.base.geometry.banksPerRank *= 2;
    EXPECT_NE(runConfigSignature(a), runConfigSignature(b));
    EXPECT_NE(runConfigHash(a), runConfigHash(b));
}

// ---- shared fixtures ------------------------------------------------

RunConfig
tinyConfig()
{
    RunConfig rc;
    rc.base.geometry.rowsPerBank = 4096;
    rc.base.profileIntervalCpu = 60'000;
    rc.warmupCpu = 100'000;
    rc.measureCpu = 250'000;
    return rc;
}

/** A fig4-shaped miniature: 2-app mixes x 2 schemes + summary gmeans. */
CampaignSpec
tinySweepSpec()
{
    std::vector<WorkloadMix> mixes = {
        {"T1", {"mcf", "gcc"}},
        {"T2", {"libquantum", "namd"}},
    };
    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("DBP")};
    CampaignSpec spec;
    spec.name = "tiny-sweep";
    spec.title = "campaign determinism fixture";
    spec.plan = [mixes, schemes](CampaignPlan &plan, CampaignContext &) {
        planMixSweep(plan, mixes, schemes);
    };
    spec.render = [mixes, schemes](CampaignRun &run, std::ostream &os) {
        printSweepMetric(run, "", mixes, schemes, "ws",
                         "weighted speedup", os);
    };
    return spec;
}

// ---- baseline cache -------------------------------------------------

TEST(CampaignBaselines, ComputesOncePerApp)
{
    AloneBaselineCache cache;
    RunConfig rc = tinyConfig();
    AloneBaseline first = cache.get(rc, "gcc");
    EXPECT_GT(first.ipc, 0.0);
    AloneBaseline again = cache.get(rc, "gcc");
    EXPECT_DOUBLE_EQ(again.ipc, first.ipc);
    EXPECT_EQ(cache.computeCount(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CampaignBaselines, DistinctConfigsGetDistinctEntries)
{
    AloneBaselineCache cache;
    RunConfig rc = tinyConfig();
    cache.get(rc, "gcc");
    RunConfig other = rc;
    other.base.geometry.banksPerRank *= 2;
    cache.get(other, "gcc");
    EXPECT_EQ(cache.computeCount(), 2u);
}

TEST(CampaignBaselines, PersistsAndReloadsWithoutRecompute)
{
    const std::string path =
        testing::TempDir() + "dbpsim_alone_cache_test.json";
    RunConfig rc = tinyConfig();

    AloneBaselineCache writer;
    AloneBaseline computed = writer.get(rc, "gcc");
    ASSERT_TRUE(writer.save(path));

    AloneBaselineCache reader;
    ASSERT_TRUE(reader.load(path));
    AloneBaseline loaded = reader.get(rc, "gcc");
    EXPECT_EQ(reader.computeCount(), 0u);
    EXPECT_DOUBLE_EQ(loaded.ipc, computed.ipc);
    EXPECT_DOUBLE_EQ(loaded.profile.mpki, computed.profile.mpki);
    EXPECT_EQ(loaded.profile.footprintPages,
              computed.profile.footprintPages);
    std::remove(path.c_str());
}

TEST(CampaignBaselines, LoadIgnoresGarbageFiles)
{
    const std::string path =
        testing::TempDir() + "dbpsim_alone_cache_garbage.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("not json at all", f);
        std::fclose(f);
    }
    AloneBaselineCache cache;
    EXPECT_FALSE(cache.load(path));
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

// ---- campaign execution ---------------------------------------------

TEST(Campaign, RegistryFindsRegisteredSpecs)
{
    CampaignSpec spec = tinySweepSpec();
    spec.name = "test-registry-entry";
    registerCampaign(spec);
    const CampaignSpec *found = findCampaign("test-registry-entry");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->title, spec.title);
    EXPECT_EQ(findCampaign("no-such-campaign"), nullptr);

    // Natural ordering: fig2 sorts before fig10.
    registerCampaign({"zz2", "", "", spec.plan, spec.render});
    registerCampaign({"zz10", "", "", spec.plan, spec.render});
    auto all = campaignRegistry();
    std::size_t i2 = all.size(), i10 = all.size();
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i]->name == "zz2")
            i2 = i;
        if (all[i]->name == "zz10")
            i10 = i;
    }
    EXPECT_LT(i2, i10);
}

TEST(Campaign, ParallelRunIsBitIdenticalToSerial)
{
    RunConfig rc = tinyConfig();
    CampaignSpec spec = tinySweepSpec();
    auto baselines = std::make_shared<AloneBaselineCache>();

    CampaignOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    std::ostringstream serial_out;
    Json ref = runCampaign(spec, rc, baselines, serial, serial_out);

    CampaignOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;
    for (int repeat = 0; repeat < 2; ++repeat) {
        std::ostringstream par_out;
        Json doc = runCampaign(spec, rc, baselines, parallel, par_out);
        // The deterministic sections are byte-identical; only the
        // timing fields may differ between runs.
        EXPECT_EQ(doc.at("jobs").dump(), ref.at("jobs").dump());
        EXPECT_EQ(doc.at("summary").dump(), ref.at("summary").dump());
        EXPECT_EQ(par_out.str(), serial_out.str());
    }
}

TEST(Campaign, ResultDocumentHasTheContractFields)
{
    RunConfig rc = tinyConfig();
    auto baselines = std::make_shared<AloneBaselineCache>();
    CampaignOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    std::ostringstream os;
    Json doc = runCampaign(tinySweepSpec(), rc, baselines, opts, os);

    EXPECT_EQ(doc.at("campaign").asString(), "tiny-sweep");
    EXPECT_EQ(doc.at("jobs_count").asUInt(), 4u);
    EXPECT_EQ(doc.at("jobs").size(), 4u);
    EXPECT_EQ(doc.at("parallelism").asUInt(), 2u);
    EXPECT_GE(doc.at("wall_seconds").asDouble(), 0.0);
    EXPECT_GE(doc.at("job_seconds_total").asDouble(), 0.0);
    EXPECT_FALSE(doc.at("config").at("hash").asString().empty());

    const Json &job = doc.at("jobs").at("T1/DBP");
    EXPECT_EQ(job.at("mix").asString(), "T1");
    EXPECT_EQ(job.at("scheme").asString(), "DBP");
    EXPECT_GT(job.at("ws").asDouble(), 0.0);
    EXPECT_EQ(job.at("speedups").size(), 2u);

    const Json &summary = doc.at("summary");
    EXPECT_GT(summary.at("gmean_ws_DBP").asDouble(), 0.0);
}

TEST(Campaign, DuplicateJobKeysAreFatal)
{
    CampaignPlan plan;
    plan.add("a", [](CampaignContext &) { return Json(); });
    EXPECT_DEATH(plan.add("a", [](CampaignContext &) { return Json(); }),
                 "duplicate");
}

} // namespace
} // namespace dbpsim
