/**
 * @file
 * Unit tests for the common substrate: config parsing, deterministic
 * RNG, statistics primitives and table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace dbpsim {
namespace {

TEST(Types, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Types, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(Config, SetGetRoundTrip)
{
    Config c;
    c.set("banks", "32");
    c.set("sched", "tcm");
    EXPECT_TRUE(c.has("banks"));
    EXPECT_FALSE(c.has("ranks"));
    EXPECT_EQ(c.getInt("banks", 0), 32);
    EXPECT_EQ(c.getString("sched", ""), "tcm");
    EXPECT_EQ(c.getInt("missing", 7), 7);
}

TEST(Config, IntegerSuffixes)
{
    Config c;
    c.set("a", "4k");
    c.set("b", "2m");
    c.set("cap", "1g");
    c.set("hex", "0x20");
    EXPECT_EQ(c.getInt("a", 0), 4096);
    EXPECT_EQ(c.getInt("b", 0), 2 * 1024 * 1024);
    EXPECT_EQ(c.getInt("cap", 0), 1024LL * 1024 * 1024);
    EXPECT_EQ(c.getInt("hex", 0), 32);
}

TEST(Config, Bools)
{
    Config c;
    c.set("t1", "true");
    c.set("t2", "ON");
    c.set("f1", "0");
    c.set("f2", "no");
    EXPECT_TRUE(c.getBool("t1", false));
    EXPECT_TRUE(c.getBool("t2", false));
    EXPECT_FALSE(c.getBool("f1", true));
    EXPECT_FALSE(c.getBool("f2", true));
    EXPECT_TRUE(c.getBool("missing", true));
}

TEST(Config, ParseToken)
{
    Config c;
    EXPECT_TRUE(c.parseToken("key=value"));
    EXPECT_FALSE(c.parseToken("novalue"));
    EXPECT_FALSE(c.parseToken("=broken"));
    EXPECT_EQ(c.getString("key", ""), "value");
}

TEST(Config, ToStringSorted)
{
    Config c;
    c.set("zeta", "1");
    c.set("alpha", "2");
    EXPECT_EQ(c.toString(), "alpha=2 zeta=1");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff = any_diff || (a.next64() != b.next64());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanApproximates)
{
    Rng r(13);
    const double p = 0.1;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(p));
    double mean = sum / n;
    // Expected mean (1-p)/p = 9.
    EXPECT_NEAR(mean, 9.0, 0.5);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(17);
    EXPECT_FALSE(r.nextBool(0.0));
    EXPECT_TRUE(r.nextBool(1.0));
}

TEST(Rng, SplitIndependence)
{
    Rng a(5);
    Rng b = a.split();
    // Parent and child should not produce identical streams.
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ = differ || (a.next64() != b.next64());
    EXPECT_TRUE(differ);
}

TEST(Stats, ScalarBasics)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(4);
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    StatHistogram h(4, 10.0);
    h.sample(5.0);   // bucket 0
    h.sample(15.0);  // bucket 1
    h.sample(39.9);  // bucket 3
    h.sample(40.0);  // overflow
    h.sample(100.0); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 5u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, GroupDump)
{
    StatGroup g("unit");
    StatScalar s;
    s.inc(42);
    g.addScalar("answer", &s);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("unit.answer"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, RendersAlignedWithHeader)
{
    TextTable t({"name", "value"});
    t.beginRow();
    t.cell("alpha");
    t.cell(1.5, 2);
    t.beginRow();
    t.cell("b");
    t.cell(std::int64_t{7});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TextTable t({"a", "b"});
    t.beginRow();
    t.cell("x");
    t.cell(std::int64_t{2});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(Table, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

} // namespace
} // namespace dbpsim
