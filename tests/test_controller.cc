/**
 * @file
 * Memory-controller tests: end-to-end request service through the
 * DRAM FSM, read latencies for hits vs conflicts, write-drain
 * hysteresis, write-to-read forwarding, coalescing, refresh service,
 * backpressure, and per-thread accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/controller.hh"
#include "mem/sched_frfcfs.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.rowsPerBank = 1024;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

/** Records completions. */
class Catcher : public MemClient
{
  public:
    void readComplete(std::uint64_t tag) override
    {
        completed.push_back(tag);
    }
    std::vector<std::uint64_t> completed;
};

class ControllerFixture : public ::testing::Test
{
  protected:
    ControllerFixture()
        : map_(geo(), MapScheme::PageInterleave),
          timing_(ddr3_1600())
    {
        ControllerParams params;
        params.numThreads = 4;
        params.readQueueSize = 16;
        params.writeQueueSize = 16;
        params.writeHiWatermark = 12;
        params.writeLoWatermark = 4;
        mc_ = std::make_unique<MemoryController>(
            0, map_, timing_, params, &sched_, nullptr);
    }

    /** Address in (bank, row, col) of rank 0, channel 0. */
    Addr
    addr(unsigned bank, std::uint64_t row, std::uint64_t col = 0)
    {
        DramCoord c;
        c.channel = 0;
        c.rank = 0;
        c.bank = bank;
        c.row = row;
        c.col = col;
        return map_.encode(c);
    }

    /** Tick until the catcher holds @p n completions (with a bound). */
    Cycle
    runUntil(Catcher &cat, std::size_t n, Cycle limit = 100000)
    {
        while (cat.completed.size() < n && now_ < limit)
            mc_->tick(now_++);
        return now_;
    }

    AddressMap map_;
    DramTiming timing_;
    FrFcfsScheduler sched_;
    std::unique_ptr<MemoryController> mc_;
    Cycle now_ = 0;
};

TEST_F(ControllerFixture, ColdReadLatencyIsActPlusClPlusBurst)
{
    Catcher cat;
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5), 0, &cat, 77, 0));
    runUntil(cat, 1);
    ASSERT_EQ(cat.completed.size(), 1u);
    EXPECT_EQ(cat.completed[0], 77u);
    // ACT at cycle 0 earliest (tick 0), RD after tRCD, data after
    // tCL + tBURST; completion delivered on the following tick.
    Cycle expected = timing_.tRCD + timing_.tCL + timing_.tBURST;
    EXPECT_GE(now_, expected);
    EXPECT_LE(now_, expected + 4);
}

TEST_F(ControllerFixture, RowHitFasterThanConflict)
{
    Catcher cat;
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 0), 0, &cat, 0, 0));
    runUntil(cat, 1);
    Cycle first_done = now_;

    // Same row: hit — no ACT needed.
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 1), 0, &cat, 1, now_));
    runUntil(cat, 2);
    Cycle hit_latency = now_ - first_done;

    // Different row, same bank: conflict — PRE + ACT + RD.
    Cycle conflict_start = now_;
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 9, 0), 0, &cat, 2, now_));
    runUntil(cat, 3);
    Cycle conflict_latency = now_ - conflict_start;

    EXPECT_LT(hit_latency, conflict_latency);
    EXPECT_GT(conflict_latency,
              timing_.tRP + timing_.tRCD + timing_.tCL);
}

TEST_F(ControllerFixture, PerThreadRowHitAccounting)
{
    Catcher cat;
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 0), 2, &cat, 0, 0));
    runUntil(cat, 1);
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 1), 2, &cat, 1, now_));
    runUntil(cat, 2);

    const auto &ts = mc_->threadStats(2);
    EXPECT_EQ(ts.reads, 2u);
    EXPECT_EQ(ts.rowMisses, 1u);
    EXPECT_EQ(ts.rowHits, 1u);
    EXPECT_EQ(ts.readsCompleted, 2u);
    EXPECT_GT(ts.readLatencySum, 0u);
}

TEST_F(ControllerFixture, FrFcfsServesRowHitBeforeOlderConflict)
{
    Catcher cat;
    // Open row 5 via a first read.
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 0), 0, &cat, 0, 0));
    runUntil(cat, 1);

    // Enqueue a conflict (older) then a hit (younger) back to back.
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 9, 0), 0, &cat, 1, now_));
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5, 3), 0, &cat, 2, now_));
    runUntil(cat, 3);
    // The row hit (tag 2) completes before the conflict (tag 1).
    ASSERT_EQ(cat.completed.size(), 3u);
    EXPECT_EQ(cat.completed[1], 2u);
    EXPECT_EQ(cat.completed[2], 1u);
}

TEST_F(ControllerFixture, WriteForwardingServesReadFromWriteQueue)
{
    Catcher cat;
    Addr a = addr(3, 7);
    ASSERT_TRUE(mc_->enqueueWrite(a, 1, 0));
    ASSERT_TRUE(mc_->enqueueRead(a, 1, &cat, 5, 0));
    EXPECT_EQ(mc_->statWriteForwards.value(), 1u);
    // Forwarded read completes in a couple of cycles, far below any
    // DRAM latency.
    runUntil(cat, 1, 10);
    ASSERT_EQ(cat.completed.size(), 1u);
    EXPECT_EQ(cat.completed[0], 5u);
}

TEST_F(ControllerFixture, WriteCoalescing)
{
    Addr a = addr(2, 4);
    ASSERT_TRUE(mc_->enqueueWrite(a, 0, 0));
    ASSERT_TRUE(mc_->enqueueWrite(a, 0, 1));
    EXPECT_EQ(mc_->statWriteCoalesced.value(), 1u);
    EXPECT_EQ(mc_->writeQueueDepth(), 1u);
}

TEST_F(ControllerFixture, WriteDrainHysteresis)
{
    // Fill writes to the high watermark; controller must enter write
    // mode and drain down to the low watermark.
    for (unsigned i = 0; i < 12; ++i)
        ASSERT_TRUE(mc_->enqueueWrite(addr(i % 8, i), 0, 0));
    EXPECT_EQ(mc_->writeQueueDepth(), 12u);

    bool entered = false;
    for (int i = 0; i < 5000 && mc_->writeQueueDepth() > 4; ++i) {
        mc_->tick(now_++);
        entered = entered || mc_->inWriteMode();
    }
    EXPECT_TRUE(entered);
    EXPECT_LE(mc_->writeQueueDepth(), 4u);
}

TEST_F(ControllerFixture, IdleWriteDrain)
{
    // Below the high watermark but no reads: opportunistic drain.
    for (unsigned i = 0; i < 9; ++i)
        ASSERT_TRUE(mc_->enqueueWrite(addr(i % 8, i), 0, 0));
    for (int i = 0; i < 5000 && mc_->writeQueueDepth() > 4; ++i)
        mc_->tick(now_++);
    EXPECT_LE(mc_->writeQueueDepth(), 4u);
}

TEST_F(ControllerFixture, ReadQueueBackpressure)
{
    Catcher cat;
    unsigned accepted = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if (mc_->enqueueRead(addr(i % 8, i + 1, i % 64), 0, &cat, i, 0))
            ++accepted;
    }
    EXPECT_EQ(accepted, 16u); // queue capacity.
    EXPECT_GT(mc_->statReadQueueFull.value(), 0u);

    // Draining frees capacity again.
    runUntil(cat, 4);
    EXPECT_TRUE(mc_->enqueueRead(addr(0, 99), 0, &cat, 100, now_));
}

TEST_F(ControllerFixture, RefreshHappensPeriodically)
{
    Catcher cat;
    // Run a steady read stream for > 2 tREFI and confirm refreshes.
    unsigned tag = 0;
    for (Cycle c = 0; c < 3 * timing_.tREFI; ++c) {
        if (c % 50 == 0)
            mc_->enqueueRead(addr(tag % 8, (tag / 8) % 64), 0, &cat,
                             tag, c), ++tag;
        mc_->tick(c);
    }
    EXPECT_GE(mc_->channel().statRefreshes.value(), 2u);
}

TEST_F(ControllerFixture, ClosedPagePolicyAutoPrecharges)
{
    ControllerParams params;
    params.numThreads = 4;
    params.pagePolicy = PagePolicy::Closed;
    MemoryController closed(0, map_, timing_, params, &sched_, nullptr);

    Catcher cat;
    ASSERT_TRUE(closed.enqueueRead(addr(0, 5), 0, &cat, 0, 0));
    Cycle c = 0;
    while (cat.completed.empty() && c < 1000)
        closed.tick(c++);
    ASSERT_EQ(cat.completed.size(), 1u);
    // The bank is closed after the auto-precharge read.
    EXPECT_FALSE(closed.channel().bank(0, 0).open);
}

TEST_F(ControllerFixture, OpenAdaptiveClosesIdleRows)
{
    ControllerParams params;
    params.numThreads = 4;
    params.pagePolicy = PagePolicy::OpenAdaptive;
    params.rowIdleTimeout = 50;
    MemoryController mc(0, map_, timing_, params, &sched_, nullptr);

    Catcher cat;
    ASSERT_TRUE(mc.enqueueRead(addr(0, 5), 0, &cat, 0, 0));
    Cycle c = 0;
    while (cat.completed.empty() && c < 1000)
        mc.tick(c++);
    ASSERT_TRUE(mc.channel().bank(0, 0).open);

    // Idle past the timeout: the controller closes the row.
    Cycle deadline = c + params.rowIdleTimeout + timing_.tRAS + 10;
    while (mc.channel().bank(0, 0).open && c < deadline)
        mc.tick(c++);
    EXPECT_FALSE(mc.channel().bank(0, 0).open);
    EXPECT_GE(mc.statIdleRowCloses.value(), 1u);
}

TEST_F(ControllerFixture, OpenAdaptiveKeepsWantedRows)
{
    ControllerParams params;
    params.numThreads = 4;
    params.pagePolicy = PagePolicy::OpenAdaptive;
    params.rowIdleTimeout = 30;
    // Starve service so a same-row request stays queued: block the
    // bank via the migration-cost hook, then check the row survives
    // the idle timeout because a requester is waiting.
    MemoryController mc(0, map_, timing_, params, &sched_, nullptr);
    Catcher cat;
    ASSERT_TRUE(mc.enqueueRead(addr(0, 5, 0), 0, &cat, 0, 0));
    Cycle c = 0;
    while (cat.completed.empty() && c < 1000)
        mc.tick(c++);
    ASSERT_TRUE(mc.channel().bank(0, 0).open);

    // Enqueue a same-row read but freeze the bank so it cannot issue.
    mc.applyMigrationCost(0, 0, c, 500);
    ASSERT_TRUE(mc.enqueueRead(addr(0, 5, 2), 0, &cat, 1, c));
    Cycle end = c + 200;
    while (c < end)
        mc.tick(c++);
    // Row still open: its pending requester protected it.
    EXPECT_TRUE(mc.channel().bank(0, 0).open);
}

TEST_F(ControllerFixture, ProfilerSeesRequestsAndOutstanding)
{
    ThreadProfiler prof(4, map_.numColors());
    ControllerParams params;
    params.numThreads = 4;
    MemoryController mc(0, map_, timing_, params, &sched_, &prof);

    Catcher cat;
    ASSERT_TRUE(mc.enqueueRead(addr(2, 5), 1, &cat, 0, 0));
    unsigned color = map_.colorOf(map_.decode(addr(2, 5)));
    (void)color;
    EXPECT_EQ(prof.busyBanks(1), 1u);

    Cycle c = 0;
    while (cat.completed.empty() && c < 1000) {
        mc.tick(c++);
        prof.tick();
    }
    EXPECT_EQ(prof.busyBanks(1), 0u);

    auto profiles = prof.closeInterval({1000, 1000, 1000, 1000},
                                       {0, 0, 0, 0});
    EXPECT_EQ(profiles[1].requests, 1u);
    EXPECT_GT(profiles[1].blp, 0.0);
}

TEST_F(ControllerFixture, MigrationCostBlocksServicing)
{
    Catcher cat;
    // Block bank 0 heavily, then issue a read to it and one to bank 1.
    mc_->applyMigrationCost(0, 0, 0, 2000);
    ASSERT_TRUE(mc_->enqueueRead(addr(0, 5), 0, &cat, 0, 0));
    ASSERT_TRUE(mc_->enqueueRead(addr(1, 5), 0, &cat, 1, 0));
    runUntil(cat, 2, 5000);
    ASSERT_EQ(cat.completed.size(), 2u);
    // Bank 1's read (tag 1) finishes first despite equal age.
    EXPECT_EQ(cat.completed[0], 1u);
    EXPECT_EQ(cat.completed[1], 0u);
}

} // namespace
} // namespace dbpsim
