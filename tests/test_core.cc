/**
 * @file
 * Trace-driven core tests against a scriptable fake memory interface:
 * peak IPC on compute-only traces, head-of-window load stalls, MSHR
 * limiting and merging, and store-buffer backpressure.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/core.hh"

namespace dbpsim {
namespace {

/** Trace source emitting a fixed pattern repeatedly. */
class ScriptedSource : public TraceSource
{
  public:
    explicit ScriptedSource(std::vector<TraceRecord> pattern)
        : pattern_(std::move(pattern))
    {
    }

    TraceRecord
    next() override
    {
        TraceRecord r = pattern_[pos_];
        pos_ = (pos_ + 1) % pattern_.size();
        return r;
    }

    void reset() override { pos_ = 0; }
    std::string name() const override { return "scripted"; }

  private:
    std::vector<TraceRecord> pattern_;
    std::size_t pos_ = 0;
};

/** Memory interface with controllable accept/complete behaviour. */
class FakeMemory : public CoreMemoryInterface
{
  public:
    bool
    issueLoad(ThreadId, Addr vaddr, MemClient *client,
              std::uint64_t tag) override
    {
        if (!acceptLoads)
            return false;
        ++loadsAccepted;
        pending.push_back({vaddr, client, tag});
        return true;
    }

    bool
    issueStore(ThreadId, Addr) override
    {
        if (!acceptStores)
            return false;
        ++storesAccepted;
        return true;
    }

    /** Complete every pending load. */
    void
    completeAll()
    {
        auto batch = pending;
        pending.clear();
        for (auto &p : batch)
            p.client->readComplete(p.tag);
    }

    struct Pending
    {
        Addr vaddr;
        MemClient *client;
        std::uint64_t tag;
    };
    std::vector<Pending> pending;
    bool acceptLoads = true;
    bool acceptStores = true;
    std::uint64_t loadsAccepted = 0;
    std::uint64_t storesAccepted = 0;
};

CoreParams
coreParams()
{
    CoreParams p;
    p.windowSize = 32;
    p.issueWidth = 4;
    p.mshrs = 4;
    p.storeBufferSize = 2;
    return p;
}

TEST(Core, ComputeOnlyRunsAtIssueWidth)
{
    // One load every 10k instructions: effectively compute bound.
    ScriptedSource src({{9999, 0x0, false}});
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 1000; ++i) {
        core.tick();
        mem.completeAll();
    }
    double ipc = static_cast<double>(core.instructionsRetired()) / 1000;
    EXPECT_NEAR(ipc, 4.0, 0.2);
}

TEST(Core, StallsOnHeadLoadUntilCompletion)
{
    // Loads back to back, memory never completes.
    ScriptedSource src({{0, 0x0, false}});
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 100; ++i)
        core.tick();
    // Nothing can retire: the head load never completed.
    EXPECT_EQ(core.instructionsRetired(), 0u);
    EXPECT_GT(core.statHeadStalls.value(), 0u);

    mem.completeAll();
    core.tick();
    EXPECT_GT(core.instructionsRetired(), 0u);
}

TEST(Core, MshrLimitBoundsOutstanding)
{
    // Distinct lines, no completion: outstanding == mshr count.
    std::vector<TraceRecord> pat;
    for (int i = 0; i < 64; ++i)
        pat.push_back({0, static_cast<Addr>(i) * 64, false});
    ScriptedSource src(pat);
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 50; ++i)
        core.tick();
    EXPECT_EQ(core.outstandingLoads(), 4u);
    EXPECT_GT(core.statMshrStalls.value(), 0u);
}

TEST(Core, MshrMergesSameLine)
{
    // Two loads to the same line then distinct ones.
    std::vector<TraceRecord> pat = {
        {0, 0x100, false}, {0, 0x120, false}, // same 64B line.
        {0, 0x1000, false},
    };
    ScriptedSource src(pat);
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);

    core.tick();
    EXPECT_GT(core.statMshrMerges.value(), 0u);
    // Merged load consumed no extra memory request.
    EXPECT_LT(mem.loadsAccepted, 3u + core.statMshrMerges.value());

    // Completion wakes all merged waiters: both retire.
    mem.completeAll();
    for (int i = 0; i < 10; ++i) {
        core.tick();
        mem.completeAll();
    }
    EXPECT_GE(core.instructionsRetired(), 2u);
}

TEST(Core, StoresDrainThroughBuffer)
{
    ScriptedSource src({{3, 0x40, true}});
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_GT(mem.storesAccepted, 10u);
    EXPECT_GT(core.instructionsRetired(), 100u);
}

TEST(Core, StoreBufferBackpressureStalls)
{
    // Stores only, memory rejects them: buffer (2) fills, retire stops.
    ScriptedSource src({{0, 0x40, true}});
    FakeMemory mem;
    mem.acceptStores = false;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_EQ(core.instructionsRetired(), 2u); // two buffered stores.
    EXPECT_GT(core.statStoreStalls.value(), 0u);

    mem.acceptStores = true;
    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_GT(core.instructionsRetired(), 10u);
}

TEST(Core, RejectedLoadsRetryUntilAccepted)
{
    ScriptedSource src({{0, 0x40, false}});
    FakeMemory mem;
    mem.acceptLoads = false;
    TraceCore core(0, coreParams(), &src, &mem);

    for (int i = 0; i < 10; ++i)
        core.tick();
    EXPECT_EQ(mem.loadsAccepted, 0u);
    EXPECT_EQ(core.instructionsRetired(), 0u);

    mem.acceptLoads = true;
    core.tick();
    EXPECT_GT(mem.loadsAccepted, 0u);
}

TEST(Core, WindowOccupancyBounded)
{
    ScriptedSource src({{2, 0x40, false}});
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);
    core.tick();
    // The tick fetched to (at least) the window size, then retired up
    // to issueWidth; a single record can overshoot by its own length.
    EXPECT_GE(core.windowOccupancy(), 32u - 4u);
    EXPECT_LE(core.windowOccupancy(), 32u + 3u);
}

TEST(Core, LineAlignsAddresses)
{
    ScriptedSource src({{0, 0x7f, false}}); // unaligned vaddr.
    FakeMemory mem;
    TraceCore core(0, coreParams(), &src, &mem);
    core.tick();
    ASSERT_FALSE(mem.pending.empty());
    EXPECT_EQ(mem.pending[0].vaddr, 0x40u);
}

TEST(Core, DeterministicAcrossRuns)
{
    auto run = [] {
        ScriptedSource src({{5, 0x40, false}, {2, 0x80, true}});
        FakeMemory mem;
        TraceCore core(0, coreParams(), &src, &mem);
        for (int i = 0; i < 200; ++i) {
            core.tick();
            if (i % 3 == 0)
                mem.completeAll();
        }
        return core.instructionsRetired();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dbpsim
