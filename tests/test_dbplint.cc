/**
 * @file
 * dbplint's own tests. Positive coverage comes from the fixture files
 * under tools/lint/fixtures/: each carries `EXPECT:<rule>` markers on
 * the lines that must fire, and the test compares the finding set
 * against the markers exactly — so a rule that stops firing, fires on
 * the wrong line, or over-fires all fail the same assertion. The
 * cross-file rules (validate-coverage, config-key-doc,
 * violation-test, campaign-doc) are driven with inline corpora, and
 * the negative test lints the real repository tree, which must be
 * clean — the in-process twin of the LintTreeClean ctest gate.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rules.hh"

namespace fs = std::filesystem;
using namespace dbpsim::lint;

namespace {

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

fs::path
repoRoot()
{
    return fs::path(DBPSIM_SOURCE_ROOT);
}

using LineRule = std::pair<unsigned, std::string>;

/** The `EXPECT:<rule>` markers in a fixture, as (line, rule) pairs. */
std::set<LineRule>
expectedMarkers(const std::string &content)
{
    static const std::string kMarker = "EXPECT:";
    std::set<LineRule> out;
    unsigned line = 1;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        std::string text =
            nl == std::string::npos
                ? content.substr(start)
                : content.substr(start, nl - start);
        std::size_t pos = 0;
        while ((pos = text.find(kMarker, pos)) != std::string::npos) {
            std::size_t id = pos + kMarker.size();
            std::size_t end = id;
            while (end < text.size() &&
                   ((text[end] >= 'a' && text[end] <= 'z') ||
                    text[end] == '-'))
                ++end;
            out.insert({line, text.substr(id, end - id)});
            pos = end;
        }
        if (nl == std::string::npos)
            break;
        start = nl + 1;
        ++line;
    }
    return out;
}

std::set<LineRule>
asLineRules(const std::vector<Finding> &findings)
{
    std::set<LineRule> out;
    for (const Finding &f : findings)
        out.insert({f.line, f.rule});
    return out;
}

/**
 * Lint one fixture under a synthetic src/ path (the banned and
 * cycle-literal rules are path-sensitive) and require the finding set
 * to match the fixture's markers exactly.
 */
void
checkFixture(const std::string &name)
{
    const std::string content =
        slurp(repoRoot() / "tools/lint/fixtures" / name);
    ASSERT_FALSE(content.empty()) << "fixture " << name;
    Corpus corpus;
    corpus.files.push_back({"src/fixture/" + name, content});
    EXPECT_EQ(asLineRules(lintCorpus(corpus)), expectedMarkers(content))
        << "fixture " << name;
}

} // namespace

// ---- per-rule firing fixtures (positive) ----------------------------

TEST(DbplintFixture, BannedRand) { checkFixture("banned_rand.cc"); }

TEST(DbplintFixture, BannedRandomDevice)
{
    checkFixture("banned_random_device.cc");
}

TEST(DbplintFixture, BannedTime) { checkFixture("banned_time.cc"); }

TEST(DbplintFixture, BannedSystemClock)
{
    checkFixture("banned_system_clock.cc");
}

TEST(DbplintFixture, BannedGetenv) { checkFixture("banned_getenv.cc"); }

TEST(DbplintFixture, Unordered) { checkFixture("unordered.cc"); }

TEST(DbplintFixture, CycleLiteral) { checkFixture("cycle_literal.cc"); }

TEST(DbplintFixture, SuppressionSemantics)
{
    checkFixture("suppress.cc");
}

// The sanctioned homes are exempt: the same banned content under
// src/common/config.* must produce nothing.
TEST(DbplintFixture, SanctionedPathsExempt)
{
    const std::string content =
        slurp(repoRoot() / "tools/lint/fixtures/banned_getenv.cc");
    Corpus corpus;
    corpus.files.push_back({"src/common/config.cc", content});
    EXPECT_TRUE(lintCorpus(corpus).empty());
}

// ---- cross-file rules (inline corpora) ------------------------------

TEST(DbplintCrossFile, ValidateCoverage)
{
    Corpus corpus;
    corpus.files.push_back(
        {"src/dram/channel.cc",
         R"(void f(const DramTiming &timing_) { use(timing_.tZQ); })"});
    corpus.files.push_back(
        {"src/dram/timing.cc",
         R"(void DramTiming::validate() const { check(tRCD); })"});
    std::vector<Finding> findings = lintCorpus(corpus);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "validate-coverage");
    EXPECT_EQ(findings[0].file, "src/dram/channel.cc");

    // Covering the field in validate()'s body clears the finding.
    corpus.files[1].content =
        R"(void DramTiming::validate() const { check(tZQ); })";
    EXPECT_TRUE(lintCorpus(corpus).empty());
}

TEST(DbplintCrossFile, ConfigKeyDoc)
{
    Corpus corpus;
    corpus.files.push_back(
        {"src/sim/x.cc",
         R"(void f(const Config &c) { c.getUInt("banana", 1); })"});
    corpus.readme = "documented keys: `apple` only";
    std::vector<Finding> findings = lintCorpus(corpus);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "config-key-doc");

    // A backticked README mention satisfies the rule; `bananas`
    // would not (word boundary).
    corpus.readme = "documented keys: `apple`, `banana`";
    EXPECT_TRUE(lintCorpus(corpus).empty());

    // Keys parsed by tests are test-internal, never user surface.
    corpus.files[0].path = "tests/x.cc";
    corpus.readme = "nothing documented";
    EXPECT_TRUE(lintCorpus(corpus).empty());
}

TEST(DbplintCrossFile, ViolationTest)
{
    Corpus corpus;
    corpus.files.push_back(
        {"src/check/protocol_check.hh",
         R"(enum class Violation { RowMiss, BadPre, };)"});
    corpus.files.push_back(
        {"tests/test_protocol_check.cc",
         R"(TEST(C, R) { expect(Violation::RowMiss); })"});
    std::vector<Finding> findings = lintCorpus(corpus);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "violation-test");
    EXPECT_EQ(findings[0].file, "src/check/protocol_check.hh");
    EXPECT_NE(findings[0].message.find("BadPre"), std::string::npos);

    corpus.files[1].content =
        R"(TEST(C, R) { expect(Violation::RowMiss, Violation::BadPre); })";
    EXPECT_TRUE(lintCorpus(corpus).empty());
}

TEST(DbplintCrossFile, CampaignDoc)
{
    Corpus corpus;
    corpus.files.push_back(
        {"bench/x.cc",
         R"(const CampaignRegistrar reg({"figZ", "t", "e", p, r});)"});
    corpus.experiments = "## figQ: something else\n";
    std::vector<Finding> findings = lintCorpus(corpus);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "campaign-doc");

    corpus.experiments = "## figZ: documented\n";
    EXPECT_TRUE(lintCorpus(corpus).empty());
}

// ---- output formats and rule inventory ------------------------------

TEST(DbplintOutput, TextAndJson)
{
    Finding f{"src/a.cc", 3, "banned-rand", "msg with \"quotes\""};
    EXPECT_EQ(findingToText(f),
              "src/a.cc:3: [determinism/banned-rand] msg with "
              "\"quotes\"");
    std::string js = findingsToJson({f});
    EXPECT_NE(js.find("\"file\": \"src/a.cc\""), std::string::npos);
    EXPECT_NE(js.find("\"line\": 3"), std::string::npos);
    EXPECT_NE(js.find("determinism/banned-rand"), std::string::npos);
    EXPECT_NE(js.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_EQ(findingsToJson({}), "[]\n");
}

TEST(DbplintOutput, RuleInventory)
{
    std::vector<std::string> ids = ruleIds();
    EXPECT_EQ(ids.size(), 15u);
    EXPECT_EQ(ruleFamily("unordered-iter"),
              "determinism/unordered-iter");
    EXPECT_EQ(ruleFamily("cycle-literal"), "timing/cycle-literal");
    EXPECT_EQ(ruleFamily("validate-coverage"),
              "timing/validate-coverage");
    EXPECT_EQ(ruleFamily("config-key-doc"),
              "consistency/config-key-doc");
    EXPECT_EQ(ruleFamily("empty-reason"), "meta/empty-reason");
}

// ---- the clean-tree negative run ------------------------------------

TEST(DbplintTree, RepositoryLintsClean)
{
    const fs::path root = repoRoot();
    Corpus corpus;
    std::vector<fs::path> files;
    for (const char *dir : {"src", "tests", "bench", "examples"}) {
        fs::path d = root / dir;
        if (!fs::is_directory(d))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(d)) {
            if (!e.is_regular_file())
                continue;
            const std::string ext = e.path().extension().string();
            if (ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
                ext == ".hpp")
                files.push_back(e.path());
        }
    }
    ASSERT_FALSE(files.empty());
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files)
        corpus.files.push_back(
            {fs::relative(f, root).generic_string(), slurp(f)});
    corpus.readme = slurp(root / "README.md");
    corpus.experiments = slurp(root / "EXPERIMENTS.md");

    std::vector<Finding> findings = lintCorpus(corpus);
    for (const Finding &f : findings)
        ADD_FAILURE() << findingToText(f);
    EXPECT_TRUE(findings.empty());
}
