/**
 * @file
 * DRAM device tests: timing presets, the bank/rank/channel FSM's
 * enforcement of every DDR constraint (tRCD, tRP, tRC, tRAS, tCCD,
 * tRRD, tFAW, tWTR, bus occupancy, refresh), and the migration-cost
 * bank blocking used by the partition manager.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "dram/energy.hh"
#include "dram/timing.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 1024;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

/** A channel far from its first refresh deadline. */
DramChannel
freshChannel(const DramTiming &t)
{
    return DramChannel(geo(), t, 0);
}

class TimingPresets : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TimingPresets, Validate)
{
    DramTiming t = dramTimingByName(GetParam());
    EXPECT_TRUE(t.validate().empty()) << t.validate();
    EXPECT_GE(t.tRC, t.tRAS + t.tRP);
}

INSTANTIATE_TEST_SUITE_P(All, TimingPresets,
                         ::testing::Values("ddr3-1600", "ddr3-1333",
                                           "ddr3-1066"));

TEST(Timing, InvalidRelationsDetected)
{
    DramTiming t = ddr3_1600();
    t.tRC = 1; // dbplint:allow(cycle-literal) reason=deliberately violates tRC >= tRAS + tRP to prove validate() rejects it
    EXPECT_FALSE(t.validate().empty());

    t = ddr3_1600();
    t.tREFI = t.tRFC; // refresh cannot keep up.
    EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, InvalidRefreshRelationsDetected)
{
    DramTiming t = ddr3_1600();
    t.tRFC = 0; // refresh scheduled (tREFI > 0) but takes no time.
    EXPECT_FALSE(t.validate().empty());

    t = ddr3_1600();
    t.tRFCpb = t.tRFC + 1; // per-bank refresh slower than all-bank.
    EXPECT_FALSE(t.validate().empty());

    t = ddr3_1600();
    t.tRFCpb = 0; // all-bank refresh exists but per-bank is free.
    EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RefreshPresetValues)
{
    DramTiming t1600 = dramTimingByName("ddr3-1600");
    EXPECT_EQ(t1600.tREFI, 6240u);
    EXPECT_EQ(t1600.tRFC, 128u);
    EXPECT_EQ(t1600.tRFCpb, 64u);

    // 7.8 us / 1.5 ns and 160 ns / 1.5 ns for DDR3-1333.
    DramTiming t1333 = dramTimingByName("ddr3-1333");
    EXPECT_EQ(t1333.tREFI, 5200u);
    EXPECT_EQ(t1333.tRFC, 107u);
    EXPECT_EQ(t1333.tRFCpb, 54u);

    DramTiming t1066 = dramTimingByName("ddr3-1066");
    EXPECT_EQ(t1066.tREFI, 4160u);
    EXPECT_EQ(t1066.tRFC, 86u);
    EXPECT_EQ(t1066.tRFCpb, 43u);
}

TEST(Channel, ActivateThenReadHonorsTrcd)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);

    ASSERT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 5, 10));
    ch.issue(DramCmd::Activate, 0, 0, 5, 10);

    // Reads illegal until tRCD elapses.
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 5, 10));
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 5, 10 + t.tRCD - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 5, 10 + t.tRCD));

    // Wrong row is never readable.
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 6, 10 + t.tRCD));
}

TEST(Channel, ReadReturnsDataAfterClPlusBurst)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    Cycle rd_at = t.tRCD;
    Cycle done = ch.issue(DramCmd::Read, 0, 0, 5, rd_at);
    EXPECT_EQ(done, rd_at + t.tCL + t.tBURST);
}

TEST(Channel, PrechargeHonorsTrasAndTrp)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);

    EXPECT_FALSE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, t.tRAS - 1));
    ASSERT_TRUE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, t.tRAS));
    ch.issue(DramCmd::Precharge, 0, 0, 0, t.tRAS);

    // Re-activate only after tRP (and tRC from the first ACT).
    Cycle earliest = std::max(t.tRAS + t.tRP, t.tRC);
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 7, earliest - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 7, earliest));
}

TEST(Channel, ActivateToActivateSameBankHonorsTrc)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    ch.issue(DramCmd::Precharge, 0, 0, 0, t.tRAS);
    // tRP elapsed but tRC might not have: with tRC=39 > tRAS+tRP=39,
    // equality holds for this preset; use a stretched tRC to expose.
    DramTiming t2 = t;
    t2.tRC = t.tRAS + t.tRP + 10;
    DramChannel ch2 = freshChannel(t2);
    ch2.issue(DramCmd::Activate, 0, 0, 5, 0);
    ch2.issue(DramCmd::Precharge, 0, 0, 0, t2.tRAS);
    Cycle after_rp = t2.tRAS + t2.tRP;
    EXPECT_FALSE(ch2.canIssue(DramCmd::Activate, 0, 0, 6, after_rp));
    EXPECT_TRUE(ch2.canIssue(DramCmd::Activate, 0, 0, 6, t2.tRC));
}

TEST(Channel, RrdBetweenBanksOfARank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 1, 5, t.tRRD - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 1, 5, t.tRRD));

    // A different rank is not constrained by this rank's tRRD.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 1, 0, 5, 1));
}

TEST(Channel, FawLimitsFourActivatesPerRank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);

    Cycle now = 0;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ch.canIssue(DramCmd::Activate, 0, i, 3, now));
        ch.issue(DramCmd::Activate, 0, static_cast<unsigned>(i), 3, now);
        now += t.tRRD;
    }
    // Fifth ACT must wait until tFAW after the first.
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 4, 3, now));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 4, 3, t.tFAW));
}

TEST(Channel, CcdBetweenColumnCommands)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    ch.issue(DramCmd::Activate, 0, 1, 9, t.tRRD);

    // Past both banks' tRCD so only tCCD separates the two reads.
    Cycle rd1 = t.tRRD + t.tRCD;
    ch.issue(DramCmd::Read, 0, 0, 5, rd1);
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 1, 9, rd1 + t.tCCD - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 1, 9, rd1 + t.tCCD));
}

TEST(Channel, WriteToReadTurnaroundSameRank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);

    Cycle wr_at = t.tRCD;
    Cycle wr_done = ch.issue(DramCmd::Write, 0, 0, 5, wr_at);
    EXPECT_EQ(wr_done, wr_at + t.tCWL + t.tBURST);

    // Same-rank read blocked until tWTR after write data ends.
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 5,
                             wr_done + t.tWTR - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 5, wr_done + t.tWTR));
}

TEST(Channel, WriteRecoveryBeforePrecharge)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    Cycle wr_at = std::max(t.tRCD, t.tRAS); // past tRAS too.
    Cycle wr_done = ch.issue(DramCmd::Write, 0, 0, 5, wr_at);

    EXPECT_FALSE(ch.canIssue(DramCmd::Precharge, 0, 0, 0,
                             wr_done + t.tWR - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Precharge, 0, 0, 0,
                            wr_done + t.tWR));
}

TEST(Channel, ReadWithAutoPrechargeClosesRow)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    Cycle rd_at = std::max(t.tRCD, t.tRAS);
    ch.issue(DramCmd::ReadAp, 0, 0, 5, rd_at);
    EXPECT_FALSE(ch.bank(0, 0).open);
    // Next ACT waits for tRTP + tRP after the RDA.
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 6,
                             rd_at + t.tRTP + t.tRP - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 6,
                            rd_at + t.tRTP + t.tRP));
}

TEST(Channel, RefreshRequiresAllBanksClosed)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 3, 5, 0);
    EXPECT_FALSE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, t.tRAS + 1));
    ch.issue(DramCmd::Precharge, 0, 3, 0, t.tRAS);
    Cycle ready = t.tRAS + t.tRP;
    EXPECT_TRUE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, ready));

    ch.issue(DramCmd::Refresh, 0, 0, 0, ready);
    // The rank accepts nothing until tRFC passes.
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 1,
                             ready + t.tRFC - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 1, ready + t.tRFC));
}

TEST(Channel, RefreshPendingTracksDeadline)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    // Rank deadlines are staggered; rank 1 of 2 is due at tREFI.
    EXPECT_FALSE(ch.refreshPending(1, 0));
    EXPECT_TRUE(ch.refreshPending(1, t.tREFI));
    ch.issue(DramCmd::Refresh, 1, 0, 0, t.tREFI);
    EXPECT_FALSE(ch.refreshPending(1, t.tREFI + 1));
}

TEST(Channel, RefreshBankBlocksOnlyTargetBank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);

    ASSERT_TRUE(ch.canIssue(DramCmd::RefreshBank, 0, 2, 0, 10));
    ch.issue(DramCmd::RefreshBank, 0, 2, 0, 10);
    EXPECT_TRUE(ch.bank(0, 2).refreshing(10 + t.tRFCpb - 1));
    EXPECT_FALSE(ch.bank(0, 2).refreshing(10 + t.tRFCpb));

    // The refreshing bank accepts nothing until tRFCpb elapses...
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 2, 1,
                             10 + t.tRFCpb - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 2, 1, 10 + t.tRFCpb));
    // ...while its neighbours keep serving immediately.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 3, 1, 11));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 1, 2, 1, 11));
}

TEST(Channel, RefreshBankRequiresClosedBank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 2, 5, 0);
    EXPECT_FALSE(ch.canIssue(DramCmd::RefreshBank, 0, 2, 0, t.tRAS));
    ch.issue(DramCmd::Precharge, 0, 2, 0, t.tRAS);
    EXPECT_FALSE(ch.canIssue(DramCmd::RefreshBank, 0, 2, 0,
                             t.tRAS + t.tRP - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::RefreshBank, 0, 2, 0,
                            t.tRAS + t.tRP));
}

TEST(Channel, AllBankRefreshWaitsForInFlightPerBankRefresh)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::RefreshBank, 0, 0, 0, 10);
    EXPECT_FALSE(ch.canIssue(DramCmd::Refresh, 0, 0, 0,
                             10 + t.tRFCpb - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, 10 + t.tRFCpb));
}

TEST(Channel, PerBankRefreshCountsSeparately)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::RefreshBank, 0, 0, 0, 10);
    ch.issue(DramCmd::RefreshBank, 0, 1, 0, 11);
    ch.issue(DramCmd::Refresh, 1, 0, 0, 12);
    EXPECT_EQ(ch.statRefreshesPb.value(), 2u);
    EXPECT_EQ(ch.statRefreshes.value(), 1u);
}

TEST(Energy, RefreshTermCoversBothGranularities)
{
    DramTiming t = ddr3_1600();
    DramChannel all = freshChannel(t);
    all.issue(DramCmd::Refresh, 0, 0, 0, 100);
    EXPECT_GT(dramEnergy(all, 1'000'000).refreshNj, 0.0);

    DramChannel pb = freshChannel(t);
    pb.issue(DramCmd::RefreshBank, 0, 0, 0, 100);
    EXPECT_GT(dramEnergy(pb, 1'000'000).refreshNj, 0.0);

    // One all-bank REF covers eight banks; it must cost more than a
    // single per-bank REFpb but less than eight of them.
    double one_all = dramEnergy(all, 1'000'000).refreshNj -
                     dramEnergy(freshChannel(t), 1'000'000).refreshNj;
    double one_pb = dramEnergy(pb, 1'000'000).refreshNj -
                    dramEnergy(freshChannel(t), 1'000'000).refreshNj;
    EXPECT_GT(one_all, one_pb);
    EXPECT_LT(one_all, 8.0 * one_pb);
}

TEST(Channel, BlockBankDelaysAllCommands)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.blockBank(0, 2, 100, 500);
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 2, 1, 599));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 2, 1, 600));
    // Other banks unaffected.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 3, 1, 100));
}

TEST(Channel, CommandCountsAccumulate)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    ch.issue(DramCmd::Read, 0, 0, 5, t.tRCD);
    ch.issue(DramCmd::Read, 0, 0, 5, t.tRCD + t.tCCD);
    EXPECT_EQ(ch.statActs.value(), 1u);
    EXPECT_EQ(ch.statReads.value(), 2u);
    EXPECT_EQ(ch.statWrites.value(), 0u);
}

TEST(Energy, BreakdownScalesWithActivity)
{
    DramTiming t = ddr3_1600();
    DramChannel ch = freshChannel(t);
    DramEnergyBreakdown idle = dramEnergy(ch, 1'000'000);
    EXPECT_GT(idle.backgroundNj, 0.0);
    EXPECT_DOUBLE_EQ(idle.readNj, 0.0);

    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    ch.issue(DramCmd::Read, 0, 0, 5, t.tRCD);
    DramEnergyBreakdown busy = dramEnergy(ch, 1'000'000);
    EXPECT_GT(busy.readNj, 0.0);
    EXPECT_GT(busy.actPreNj, 0.0);
    EXPECT_GT(busy.totalNj(), idle.totalNj());
}

TEST(Channel, CmdNamesPrintable)
{
    EXPECT_STREQ(dramCmdName(DramCmd::Activate), "ACT");
    EXPECT_STREQ(dramCmdName(DramCmd::Refresh), "REF");
    EXPECT_STREQ(dramCmdName(DramCmd::RefreshBank), "REFpb");
    EXPECT_STREQ(dramCmdName(DramCmd::SaSel), "SASEL");
}

// ---------------------------------------------------------------------
// Subarray FSM (SALP-1 / SALP-2 / MASA). Rows map to subarrays via the
// low row bits, so with the default 8 subarrays rows 0 and 8 share
// subarray 0 while row 1 lives in subarray 1.
// ---------------------------------------------------------------------

TEST(Salp, Salp1OverlapsPrechargeWithActToOtherSubarray)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0, SalpMode::Salp1);

    ch.issue(DramCmd::Activate, 0, 0, 0, 0); // subarray 0.
    // SALP-1 keeps one open row per bank: while subarray 0 is open,
    // no other subarray may activate (rank tRRD satisfied or not).
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 1, t.tRRD));

    Cycle pre = t.tRAS;
    ch.issue(DramCmd::Precharge, 0, 0, 0, pre);
    // The moment the PRE is issued, an ACT to *another* subarray is
    // legal — the in-flight tRP of subarray 0 is not consulted.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 1, pre));
    // The precharged subarray itself still owes tRP (== tRC here,
    // since the preset has tRC = tRAS + tRP exactly).
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 8, pre));
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 8,
                             pre + t.tRP - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 8, pre + t.tRP));
}

TEST(Salp, Salp1PrechargeWaitsOutWriteRecovery)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0, SalpMode::Salp1);

    ch.issue(DramCmd::Activate, 0, 0, 0, 0);
    Cycle wr = t.tRCD;
    ch.issue(DramCmd::Write, 0, 0, 0, wr);
    Cycle data_end = wr + t.tCWL + t.tBURST;
    // Without the second row-address latch the PRE itself must wait
    // out tWR, exactly like the monolithic bank.
    EXPECT_FALSE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, data_end));
    EXPECT_FALSE(ch.canIssue(DramCmd::Precharge, 0, 0, 0,
                             data_end + t.tWR - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Precharge, 0, 0, 0,
                            data_end + t.tWR));
}

TEST(Salp, Salp2PrechargeOverlapsWriteRecovery)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0, SalpMode::Salp2);

    ch.issue(DramCmd::Activate, 0, 0, 0, 0);
    Cycle wr = t.tRCD;
    ch.issue(DramCmd::Write, 0, 0, 0, wr);
    Cycle data_end = wr + t.tCWL + t.tBURST;
    // SALP-2's second row-address latch frees the PRE at the write
    // data end (tRAS permitting) instead of data end + tWR.
    Cycle pre = std::max(data_end, t.tRAS);
    EXPECT_TRUE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, pre));
    ch.issue(DramCmd::Precharge, 0, 0, 0, pre);

    // Another subarray activates immediately — overlapping both the
    // precharge and the deferred write recovery...
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 1, pre));
    // ...while the same subarray waits for the recovery's internal
    // completion plus tRP.
    Cycle ready = std::max(t.tRC, data_end + t.tWR + t.tRP);
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 8, ready - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 8, ready));
}

TEST(Salp, MasaHoldsMultipleOpenRowsWithDesignatedLatch)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0, SalpMode::Masa);

    ch.issue(DramCmd::Activate, 0, 0, 0, 0); // subarray 0.
    Cycle act2 = t.tRRD;
    // MASA: a second subarray activates while the first stays open.
    ASSERT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 1, act2));
    ch.issue(DramCmd::Activate, 0, 0, 1, act2); // designates sub 1.
    EXPECT_TRUE(ch.subarrays(0, 0).subs[0].open);
    EXPECT_TRUE(ch.subarrays(0, 0).subs[1].open);

    // Column commands are legal only to the designated subarray.
    Cycle rd = act2 + t.tRCD;
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 1, rd));
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 0, rd));

    // SA_SEL relinks the latch back to subarray 0 after tSA.
    EXPECT_FALSE(ch.canIssue(DramCmd::SaSel, 0, 0, 2, rd)); // closed.
    ASSERT_TRUE(ch.canIssue(DramCmd::SaSel, 0, 0, 0, rd));
    ch.issue(DramCmd::SaSel, 0, 0, 0, rd);
    EXPECT_EQ(ch.statSaSels.value(), 1u);
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 0, rd + t.tSA - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 0, rd + t.tSA));
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 1, rd + t.tSA));
}

TEST(Salp, MirrorAggregatesSubarraysForModeObliviousConsumers)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0, SalpMode::Masa);

    ch.issue(DramCmd::Activate, 0, 0, 0, 0);
    ch.issue(DramCmd::Activate, 0, 0, 1, t.tRRD);
    // The legacy view shows the designated subarray's row and stays
    // open while any subarray is open.
    EXPECT_TRUE(ch.bank(0, 0).open);
    EXPECT_TRUE(ch.rowOpen(0, 0, 1));

    // Refresh is illegal while any subarray holds an open row.
    Cycle late = 10 * t.tRC;
    EXPECT_FALSE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, late));
    ch.issue(DramCmd::Precharge, 0, 0, 0, t.tRAS);
    EXPECT_FALSE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, late));
    ch.issue(DramCmd::Precharge, 0, 0, 1, t.tRRD + t.tRAS);
    EXPECT_FALSE(ch.bank(0, 0).open);
    EXPECT_TRUE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, late));
}

} // namespace
} // namespace dbpsim
