/**
 * @file
 * Parameterized DRAM-FSM sweeps: every timing preset must enforce
 * every constraint class, and a randomized command fuzzer checks the
 * global invariant that whatever canIssue() admits never corrupts the
 * FSM (issue() asserts internally) while data bursts never overlap on
 * the shared bus.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "dram/channel.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 4;
    g.rowsPerBank = 64;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

class TimingSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    DramTiming t() const { return dramTimingByName(GetParam()); }
};

TEST_P(TimingSweep, TrcdEnforced)
{
    DramTiming tm = t();
    DramChannel ch(geo(), tm, 0);
    ch.issue(DramCmd::Activate, 0, 0, 1, 0);
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 1, tm.tRCD - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 1, tm.tRCD));
}

TEST_P(TimingSweep, TrasEnforced)
{
    DramTiming tm = t();
    DramChannel ch(geo(), tm, 0);
    ch.issue(DramCmd::Activate, 0, 0, 1, 0);
    EXPECT_FALSE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, tm.tRAS - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Precharge, 0, 0, 0, tm.tRAS));
}

TEST_P(TimingSweep, TfawEnforced)
{
    DramTiming tm = t();
    DramChannel ch(geo(), tm, 0);
    Cycle now = 0;
    for (unsigned b = 0; b < 4; ++b) {
        ASSERT_TRUE(ch.canIssue(DramCmd::Activate, 0, b, 1, now));
        ch.issue(DramCmd::Activate, 0, b, 1, now);
        now += tm.tRRD;
    }
    // Four ACTs are in flight; rank 1 is unaffected.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 1, 0, 1, now));
    if (now < tm.tFAW) {
        EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 2, now));
    }
}

TEST_P(TimingSweep, WriteReadTurnaround)
{
    DramTiming tm = t();
    DramChannel ch(geo(), tm, 0);
    ch.issue(DramCmd::Activate, 0, 0, 1, 0);
    Cycle wr_done = ch.issue(DramCmd::Write, 0, 0, 1, tm.tRCD);
    EXPECT_FALSE(ch.canIssue(DramCmd::Read, 0, 0, 1,
                             wr_done + tm.tWTR - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Read, 0, 0, 1, wr_done + tm.tWTR));
}

TEST_P(TimingSweep, RefreshBlocksWholeRank)
{
    DramTiming tm = t();
    DramChannel ch(geo(), tm, 0);
    ASSERT_TRUE(ch.canIssue(DramCmd::Refresh, 0, 0, 0, 0));
    ch.issue(DramCmd::Refresh, 0, 0, 0, 0);
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, b, 1,
                                 tm.tRFC - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 0, 1, tm.tRFC));
    // The other rank keeps working during the refresh.
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 1, 0, 1, 1));
}

INSTANTIATE_TEST_SUITE_P(Presets, TimingSweep,
                         ::testing::Values("ddr3-1600", "ddr3-1333",
                                           "ddr3-1066"));

/**
 * Random legal-command fuzzer. Tries random commands each cycle; every
 * command canIssue() admits is issued (issue() would assert on FSM
 * corruption). Tracks read/write data bursts and checks the shared
 * data bus never carries two bursts at once.
 */
TEST(ChannelFuzz, LegalCommandsNeverOverlapDataBus)
{
    DramGeometry g = geo();
    DramTiming tm = ddr3_1600();
    DramChannel ch(g, tm, 0);
    Rng rng(2024);

    std::vector<std::pair<Cycle, Cycle>> bursts; // [start, end)
    Cycle issued_cmds = 0;

    for (Cycle now = 0; now < 20000; ++now) {
        // Refresh duty first, as a controller would.
        bool used = false;
        for (unsigned r = 0; r < g.ranksPerChannel && !used; ++r) {
            if (ch.refreshPending(r, now) &&
                ch.canIssue(DramCmd::Refresh, r, 0, 0, now)) {
                ch.issue(DramCmd::Refresh, r, 0, 0, now);
                used = true;
            }
        }
        if (used)
            continue;

        // Try a few random commands; issue the first legal one.
        for (int attempt = 0; attempt < 4 && !used; ++attempt) {
            auto r = static_cast<unsigned>(
                rng.nextBelow(g.ranksPerChannel));
            auto b = static_cast<unsigned>(
                rng.nextBelow(g.banksPerRank));
            std::uint64_t row = rng.nextBelow(g.rowsPerBank);
            DramCmd cmd;
            switch (rng.nextBelow(4)) {
              case 0: cmd = DramCmd::Activate; break;
              case 1: cmd = DramCmd::Precharge; break;
              case 2: cmd = DramCmd::Read; break;
              default: cmd = DramCmd::Write; break;
            }
            // Column commands must target the open row to be legal.
            if (cmd == DramCmd::Read || cmd == DramCmd::Write) {
                const BankState &bs = ch.bank(r, b);
                if (!bs.open)
                    continue;
                row = bs.row;
            }
            if (!ch.canIssue(cmd, r, b, row, now))
                continue;
            Cycle done = ch.issue(cmd, r, b, row, now);
            ++issued_cmds;
            used = true;
            if (done != 0) {
                Cycle start = done - tm.tBURST;
                for (const auto &[s, e] : bursts) {
                    EXPECT_TRUE(done <= s || start >= e)
                        << "data bursts overlap at cycle " << now;
                }
                bursts.emplace_back(start, done);
                if (bursts.size() > 16)
                    bursts.erase(bursts.begin());
            }
        }
    }
    EXPECT_GT(issued_cmds, 1000u) << "fuzzer barely exercised the FSM";
}

/**
 * Randomized mirror-model check: an independently tracked "last ACT
 * per bank" model confirms tRC spacing on every accepted ACTIVATE.
 */
TEST(ChannelFuzz, ActivateSpacingHonorsTrc)
{
    DramGeometry g = geo();
    DramTiming tm = ddr3_1600();
    DramChannel ch(g, tm, 0);
    Rng rng(7);

    std::vector<Cycle> last_act(
        static_cast<std::size_t>(g.ranksPerChannel) * g.banksPerRank,
        kNeverCycle);

    for (Cycle now = 0; now < 30000; ++now) {
        for (unsigned r = 0; r < g.ranksPerChannel; ++r) {
            if (ch.refreshPending(r, now) &&
                ch.canIssue(DramCmd::Refresh, r, 0, 0, now))
                ch.issue(DramCmd::Refresh, r, 0, 0, now);
        }
        auto r = static_cast<unsigned>(rng.nextBelow(g.ranksPerChannel));
        auto b = static_cast<unsigned>(rng.nextBelow(g.banksPerRank));
        std::size_t slot = r * g.banksPerRank + b;
        const BankState &bs = ch.bank(r, b);
        if (bs.open) {
            if (ch.canIssue(DramCmd::Precharge, r, b, 0, now))
                ch.issue(DramCmd::Precharge, r, b, 0, now);
        } else if (ch.canIssue(DramCmd::Activate, r, b, 3, now)) {
            if (last_act[slot] != kNeverCycle) {
                EXPECT_GE(now, last_act[slot] + tm.tRC)
                    << "ACT-to-ACT below tRC on rank " << r << " bank "
                    << b;
            }
            ch.issue(DramCmd::Activate, r, b, 3, now);
            last_act[slot] = now;
        }
    }
}

} // namespace
} // namespace dbpsim
