/**
 * @file
 * JobExecutor tests: completion, per-task timing slots, exception
 * propagation, serial mode, and the thread-safe logging hooks the
 * campaign layer depends on. These run under TSan in scripts/check.sh
 * (ctest -R 'Executor|Campaign'), so they deliberately hammer the
 * concurrent paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/executor.hh"
#include "common/log.hh"

namespace dbpsim {
namespace {

TEST(Executor, DefaultThreadsIsPositive)
{
    EXPECT_GE(JobExecutor::defaultThreads(), 1u);
    EXPECT_GE(JobExecutor(0).threads(), 1u);
    EXPECT_EQ(JobExecutor(1).threads(), 1u);
    EXPECT_EQ(JobExecutor(8).threads(), 8u);
}

TEST(Executor, RunsEveryTaskExactlyOnce)
{
    const std::size_t n = 100;
    std::vector<std::atomic<int>> counts(n);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < n; ++i)
        tasks.push_back([&counts, i] { counts[i].fetch_add(1); });

    JobExecutor executor(8);
    std::vector<double> seconds = executor.run(tasks);

    ASSERT_EQ(seconds.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i].load(), 1) << "task " << i;
        EXPECT_GE(seconds[i], 0.0);
    }
}

TEST(Executor, SerialModeRunsInOrder)
{
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i)
        tasks.push_back([&order, i] { order.push_back(i); });

    JobExecutor(1).run(tasks);

    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Executor, EmptyTaskListIsFine)
{
    std::vector<std::function<void()>> tasks;
    EXPECT_TRUE(JobExecutor(4).run(tasks).empty());
}

TEST(Executor, ExceptionPropagatesAfterDrain)
{
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) {
        if (i == 5) {
            tasks.push_back(
                [] { throw std::runtime_error("task failed"); });
        } else {
            tasks.push_back([&completed] { completed.fetch_add(1); });
        }
    }
    EXPECT_THROW(JobExecutor(4).run(tasks), std::runtime_error);
    // Every non-throwing task still ran: the pool drains before the
    // first exception is rethrown.
    EXPECT_EQ(completed.load(), 19);
}

TEST(Executor, ConcurrentTasksShareAtomicLogLevel)
{
    LogLevel before = logLevel();
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
        tasks.push_back([i] {
            setLogLevel(i % 2 ? LogLevel::Warn : LogLevel::Info);
            (void)logLevel();
        });
    }
    JobExecutor(8).run(tasks);
    setLogLevel(before);
}

TEST(Executor, JobTagIsThreadLocal)
{
    std::atomic<int> mismatches{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([&mismatches, i] {
            LogJobScope tag("job-" + std::to_string(i));
            if (logJobTag() != "job-" + std::to_string(i))
                mismatches.fetch_add(1);
        });
    }
    JobExecutor(8).run(tasks);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(logJobTag(), "");
}

} // namespace
} // namespace dbpsim
