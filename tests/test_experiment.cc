/**
 * @file
 * Experiment-harness tests: alone-run caching, metric assembly, and
 * scheme application, on a deliberately tiny configuration so the
 * whole file stays fast.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace dbpsim {
namespace {

RunConfig
tinyConfig()
{
    RunConfig rc;
    rc.base.geometry.rowsPerBank = 4096;
    rc.base.profileIntervalCpu = 60'000;
    rc.warmupCpu = 100'000;
    rc.measureCpu = 250'000;
    return rc;
}

TEST(Schemes, StandardSetContainsThePaperSchemes)
{
    for (const char *name :
         {"FR-FCFS", "UBP", "DBP", "TCM", "DBP-TCM", "MCP"}) {
        const Scheme &s = schemeByName(name);
        EXPECT_EQ(s.name, name);
    }
    EXPECT_EQ(schemeByName("DBP-TCM").scheduler, "tcm");
    EXPECT_EQ(schemeByName("DBP-TCM").partition, "dbp");
    EXPECT_EQ(schemeByName("UBP").partition, "ubp");
}

TEST(Schemes, ApplyOverridesOnlySchedAndPart)
{
    SystemParams base;
    base.numCores = 5;
    SystemParams out = applyScheme(base, schemeByName("DBP-TCM"));
    EXPECT_EQ(out.scheduler, "tcm");
    EXPECT_EQ(out.partition, "dbp");
    EXPECT_EQ(out.numCores, 5u);
}

TEST(Experiment, AloneIpcCachedAndPositive)
{
    ExperimentRunner runner(tinyConfig());
    double ipc1 = runner.aloneIpc("gcc");
    EXPECT_GT(ipc1, 0.0);
    EXPECT_LE(ipc1, 4.0);
    // Second call hits the cache and returns the identical value.
    EXPECT_DOUBLE_EQ(runner.aloneIpc("gcc"), ipc1);
}

TEST(Experiment, AloneProfileMatchesAppCharacter)
{
    ExperimentRunner runner(tinyConfig());
    ThreadMemProfile libq = runner.aloneProfile("libquantum");
    ThreadMemProfile mcf = runner.aloneProfile("mcf");
    // libquantum: streaming — much higher row locality than mcf.
    EXPECT_GT(libq.rowBufferHitRate, mcf.rowBufferHitRate);
    // mcf: much higher bank parallelism.
    EXPECT_GT(mcf.blp, libq.blp);
    EXPECT_GT(libq.mpki, 5.0);
    EXPECT_GT(mcf.mpki, 5.0);
}

TEST(Experiment, RunMixProducesConsistentMetrics)
{
    ExperimentRunner runner(tinyConfig());
    WorkloadMix mix{"t", {"libquantum", "omnetpp", "gcc", "hmmer"}};
    MixResult r = runner.runMix(mix, schemeByName("FR-FCFS"));

    ASSERT_EQ(r.sharedIpc.size(), 4u);
    ASSERT_EQ(r.aloneIpc.size(), 4u);
    EXPECT_GT(r.metrics.weightedSpeedup, 0.0);
    EXPECT_LE(r.metrics.weightedSpeedup, 4.0 + 0.5);
    EXPECT_GE(r.metrics.maxSlowdown, 0.5);

    // Metrics recompute from the stored IPCs.
    SystemMetrics again = computeMetrics(r.aloneIpc, r.sharedIpc);
    EXPECT_DOUBLE_EQ(again.weightedSpeedup,
                     r.metrics.weightedSpeedup);
    EXPECT_DOUBLE_EQ(again.maxSlowdown, r.metrics.maxSlowdown);
}

TEST(Experiment, DbpSchemeReportsRepartitions)
{
    ExperimentRunner runner(tinyConfig());
    WorkloadMix mix{"t", {"mcf", "libquantum", "gcc", "hmmer"}};
    MixResult r = runner.runMix(mix, schemeByName("DBP"));
    EXPECT_GE(r.repartitions, 1u);
}

TEST(Experiment, DeterministicResults)
{
    WorkloadMix mix{"t", {"libquantum", "gcc"}};
    auto run = [&] {
        ExperimentRunner runner(tinyConfig());
        return runner.runMix(mix, schemeByName("UBP"));
    };
    MixResult a = run();
    MixResult b = run();
    EXPECT_DOUBLE_EQ(a.metrics.weightedSpeedup,
                     b.metrics.weightedSpeedup);
    EXPECT_DOUBLE_EQ(a.metrics.maxSlowdown, b.metrics.maxSlowdown);
}

} // namespace
} // namespace dbpsim
