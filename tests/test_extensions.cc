/**
 * @file
 * Tests for the extension mechanisms beyond the paper's evaluated set:
 * the BLISS blacklisting scheduler and the combined DBP-MCP
 * channel+bank partitioning policy.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/channel.hh"
#include "mem/sched_bliss.hh"
#include "mem/sched_factory.hh"
#include "part/part_combined.hh"
#include "part/part_factory.hh"
#include "sim/schemes.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace dbpsim {
namespace {

DramGeometry
geo1()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.rowsPerBank = 256;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

MemRequest
req(ThreadId tid, unsigned bank, std::uint64_t row, Cycle enq,
    std::uint64_t id)
{
    MemRequest r;
    r.tid = tid;
    r.coord.bank = bank;
    r.coord.row = row;
    r.enqueueCycle = enq;
    r.id = id;
    return r;
}

TEST(Bliss, StreakTriggersBlacklist)
{
    BlissScheduler s(2, BlissParams{3, 1000});
    EXPECT_FALSE(s.blacklisted(0));
    s.onDequeue(req(0, 0, 1, 0, 0));
    s.onDequeue(req(0, 0, 1, 0, 1));
    EXPECT_FALSE(s.blacklisted(0));
    s.onDequeue(req(0, 0, 1, 0, 2)); // third consecutive.
    EXPECT_TRUE(s.blacklisted(0));
    EXPECT_FALSE(s.blacklisted(1));
    EXPECT_EQ(s.blacklistEvents(), 1u);
}

TEST(Bliss, InterleavedServiceResetsStreak)
{
    BlissScheduler s(2, BlissParams{3, 1000});
    s.onDequeue(req(0, 0, 1, 0, 0));
    s.onDequeue(req(0, 0, 1, 0, 1));
    s.onDequeue(req(1, 0, 1, 0, 2)); // breaks thread 0's streak.
    s.onDequeue(req(0, 0, 1, 0, 3));
    s.onDequeue(req(0, 0, 1, 0, 4));
    EXPECT_FALSE(s.blacklisted(0));
    EXPECT_FALSE(s.blacklisted(1));
}

TEST(Bliss, BlacklistClearsPeriodically)
{
    BlissScheduler s(2, BlissParams{2, 100});
    s.onDequeue(req(0, 0, 1, 0, 0));
    s.onDequeue(req(0, 0, 1, 0, 1));
    ASSERT_TRUE(s.blacklisted(0));
    s.tick(99);
    EXPECT_TRUE(s.blacklisted(0));
    s.tick(100);
    EXPECT_FALSE(s.blacklisted(0));
}

TEST(Bliss, NonBlacklistedBeatsBlacklistedRowHit)
{
    DramChannel ch(geo1(), ddr3_1600(), 0);
    ch.issue(DramCmd::Activate, 0, 0, 5, 0);
    SchedContext ctx{ch, 100};

    BlissScheduler s(2, BlissParams{2, 100000});
    s.onDequeue(req(0, 0, 5, 0, 0));
    s.onDequeue(req(0, 0, 5, 0, 1));
    ASSERT_TRUE(s.blacklisted(0));

    MemRequest hog_hit = req(0, 0, 5, 10, 2);   // row hit, blacklisted.
    MemRequest other_miss = req(1, 1, 9, 50, 3); // miss, clean.
    EXPECT_TRUE(s.higherPriority(other_miss, hog_hit, ctx));
}

TEST(Bliss, FactoryBuildsIt)
{
    SchedulerInit init;
    init.numThreads = 4;
    auto s = makeScheduler("bliss", init);
    EXPECT_EQ(s->name(), "bliss");
}

TEST(Bliss, EndToEndShieldsLightThread)
{
    auto make = [](double mpki, unsigned streams, double rand,
                   std::uint64_t pages, std::uint64_t seed) {
        SyntheticParams sp;
        sp.seed = seed;
        sp.phases[0].mpki = mpki;
        sp.phases[0].streams = streams;
        sp.phases[0].randomFrac = rand;
        sp.phases[0].footprintPages = pages;
        return std::make_unique<SyntheticSource>(sp);
    };
    auto run_with = [&](const std::string &sched) {
        auto light = make(0.5, 1, 0.2, 256, 1);
        auto h1 = make(25, 4, 0.3, 8192, 2);
        auto h2 = make(25, 4, 0.3, 8192, 3);
        auto h3 = make(25, 4, 0.3, 8192, 4);
        std::vector<TraceSource *> raw{light.get(), h1.get(), h2.get(),
                                       h3.get()};
        SystemParams params;
        params.numCores = 4;
        params.geometry = geo1();
        params.geometry.rowsPerBank = 16384;
        params.profileIntervalCpu = 200'000;
        params.scheduler = sched;
        System sys(params, raw);
        sys.run(700'000);
        return sys.threadAvgReadLatency(0);
    };
    EXPECT_LT(run_with("bliss"), run_with("fcfs") * 0.85);
}

ThreadMemProfile
profile(double mpki, double rbhr, double rowpar,
        std::uint64_t reqs = 1000)
{
    ThreadMemProfile p;
    p.mpki = mpki;
    p.rowBufferHitRate = rbhr;
    p.rowParallelism = rowpar;
    p.requests = reqs;
    p.instructions = 1'000'000;
    return p;
}

DbpParams
fastDbp()
{
    DbpParams p;
    p.cooldownIntervals = 1;
    p.warmupIntervals = 0;
    return p;
}

TEST(Combined, FactoryBuildsIt)
{
    PartitionInit init;
    init.numThreads = 4;
    init.geometry.channels = 2;
    init.geometry.ranksPerChannel = 2;
    init.geometry.banksPerRank = 8;
    auto p = makePartitionPolicy("dbp-mcp", init);
    EXPECT_EQ(p->name(), "dbp-mcp");
    EXPECT_EQ(p->initialAssignment().size(), 4u);
}

TEST(Combined, SeparatesGroupsByChannelThenBank)
{
    CombinedPolicy policy(4, 2, 2, 8, fastDbp());
    policy.initialAssignment();
    // High-RBL streamer, low-RBL irregular x2, one light.
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.95, 1.2, 20000),  // HiRbl group.
        profile(18, 0.2, 6.0, 18000),   // LoRbl group.
        profile(16, 0.25, 5.0, 16000),  // LoRbl group.
        profile(0.3, 0.5, 1.0, 10),     // low intensity.
    };
    auto next = policy.onInterval(profiles);
    ASSERT_TRUE(next.has_value());

    auto channels_of = [&](unsigned t) {
        std::set<unsigned> chans;
        for (unsigned c : (*next)[t])
            chans.insert(c / (2 * 8));
        return chans;
    };
    // The two intensive groups live on different channels.
    std::set<unsigned> hi = channels_of(0);
    std::set<unsigned> lo1 = channels_of(1);
    ASSERT_EQ(hi.size(), 1u);
    ASSERT_EQ(lo1.size(), 1u);
    EXPECT_NE(*hi.begin(), *lo1.begin());
    // The two irregular threads share a channel but not banks.
    EXPECT_EQ(channels_of(2), lo1);
    std::set<unsigned> b1((*next)[1].begin(), (*next)[1].end());
    for (unsigned c : (*next)[2])
        EXPECT_FALSE(b1.count(c))
            << "intra-group bank sharing survived";
}

TEST(Combined, LightMembersGetSharedSubSlice)
{
    CombinedPolicy policy(4, 2, 2, 8, fastDbp());
    policy.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.95, 1.2, 20000), // HiRbl.
        profile(18, 0.2, 6.0, 18000),  // LoRbl.
        profile(0.3, 0.5, 1.0, 10),    // light.
        profile(0.2, 0.5, 1.0, 10),    // light.
    };
    auto next = policy.onInterval(profiles);
    ASSERT_TRUE(next.has_value());
    // Lights share one identical (small) set.
    EXPECT_EQ((*next)[2], (*next)[3]);
    EXPECT_LT((*next)[2].size(), (*next)[1].size());
}

TEST(Combined, NoChangeReturnsNullopt)
{
    CombinedPolicy policy(2, 2, 2, 8, fastDbp());
    policy.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.95, 1.2, 20000), profile(18, 0.2, 6.0, 18000)};
    ASSERT_TRUE(policy.onInterval(profiles).has_value());
    EXPECT_FALSE(policy.onInterval(profiles).has_value());
    EXPECT_EQ(policy.repartitions(), 1u);
}

TEST(Combined, EndToEndRunsAndProgresses)
{
    auto make = [](double mpki, double rbhr_knob, unsigned streams,
                   std::uint64_t seed) {
        SyntheticParams sp;
        sp.seed = seed;
        sp.phases[0].mpki = mpki;
        sp.phases[0].streams = streams;
        sp.phases[0].seqRunLines = rbhr_knob;
        sp.phases[0].randomFrac = rbhr_knob > 32 ? 0.02 : 0.5;
        sp.phases[0].footprintPages = 4096;
        return std::make_unique<SyntheticSource>(sp);
    };
    auto s0 = make(25, 128, 1, 1);
    auto s1 = make(18, 2, 6, 2);
    auto s2 = make(16, 2, 6, 3);
    auto s3 = make(0.4, 16, 1, 4);
    std::vector<TraceSource *> raw{s0.get(), s1.get(), s2.get(),
                                   s3.get()};
    SystemParams params;
    params.numCores = 4;
    params.geometry.rowsPerBank = 4096;
    params.profileIntervalCpu = 200'000;
    params.partition = "dbp-mcp";
    System sys(params, raw);
    auto ipc = sys.runAndMeasure(300'000, 400'000);
    for (double v : ipc)
        EXPECT_GT(v, 0.0);
}

TEST(Combined, SchemesResolve)
{
    EXPECT_EQ(schemeByName("DBP-MCP").partition, "dbp-mcp");
    EXPECT_EQ(schemeByName("DBP-MCP-TCM").scheduler, "tcm");
    EXPECT_EQ(schemeByName("BLISS").scheduler, "bliss");
    EXPECT_EQ(schemeByName("DBP-BLISS").partition, "dbp");
}

} // namespace
} // namespace dbpsim
