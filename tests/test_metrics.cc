/**
 * @file
 * Metric arithmetic tests: weighted speedup, harmonic speedup, and
 * maximum slowdown.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace dbpsim {
namespace {

TEST(Metrics, IdenticalIpcsGivePerfectScores)
{
    SystemMetrics m = computeMetrics({1.0, 2.0}, {1.0, 2.0});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 2.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 1.0);
}

TEST(Metrics, HandComputedExample)
{
    // Thread 0 halved, thread 1 untouched.
    SystemMetrics m = computeMetrics({2.0, 1.0}, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 0.5 + 1.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 2.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 2.0 / (2.0 + 1.0));
    ASSERT_EQ(m.speedups.size(), 2u);
    EXPECT_DOUBLE_EQ(m.speedups[0], 0.5);
    EXPECT_DOUBLE_EQ(m.slowdowns[0], 2.0);
}

TEST(Metrics, MaxSlowdownPicksWorstThread)
{
    SystemMetrics m =
        computeMetrics({1.0, 1.0, 1.0}, {0.9, 0.25, 0.5});
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 4.0);
}

TEST(Metrics, WeightedSpeedupBoundedByThreadCount)
{
    SystemMetrics m = computeMetrics({1.0, 1.0}, {0.7, 0.9});
    EXPECT_LE(m.weightedSpeedup, 2.0);
    EXPECT_GT(m.weightedSpeedup, 0.0);
}

TEST(Metrics, SpeedupAboveOnePossible)
{
    // Shared IPC can exceed alone IPC (e.g. more banks after
    // repartitioning); the math must not clamp.
    SystemMetrics m = computeMetrics({1.0}, {1.2});
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 1.2);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 1.0 / 1.2);
}

TEST(Metrics, MismatchedSizesPanic)
{
    EXPECT_DEATH(computeMetrics({1.0}, {1.0, 1.0}), "differ in size");
}

TEST(Metrics, ZeroIpcPanics)
{
    EXPECT_DEATH(computeMetrics({1.0}, {0.0}), "not positive");
    EXPECT_DEATH(computeMetrics({0.0}, {1.0}), "not positive");
}

} // namespace
} // namespace dbpsim
