/**
 * @file
 * OS model tests: page tables, the color-aware frame allocator, and
 * the OsMemory facade (first-touch allocation, color-set enforcement,
 * page migration) — the enforcement machinery every partitioning
 * policy depends on.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "os/os_memory.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 256;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

TEST(PageTable, MapLookupUnmap)
{
    PageTable pt;
    std::uint64_t frame = 0;
    EXPECT_FALSE(pt.lookup(5, frame));
    pt.map(5, 100);
    EXPECT_TRUE(pt.lookup(5, frame));
    EXPECT_EQ(frame, 100u);
    EXPECT_EQ(pt.size(), 1u);
    pt.remap(5, 200);
    pt.lookup(5, frame);
    EXPECT_EQ(frame, 200u);
    pt.unmap(5);
    EXPECT_FALSE(pt.lookup(5, frame));
}

TEST(PageTable, DoubleMapPanics)
{
    PageTable pt;
    pt.map(1, 10);
    EXPECT_DEATH(pt.map(1, 11), "already mapped");
}

TEST(PageTable, ForEachVisitsAll)
{
    PageTable pt;
    pt.map(1, 10);
    pt.map(2, 20);
    pt.map(3, 30);
    std::uint64_t sum_v = 0, sum_f = 0;
    pt.forEach([&](std::uint64_t v, std::uint64_t f) {
        sum_v += v;
        sum_f += f;
    });
    EXPECT_EQ(sum_v, 6u);
    EXPECT_EQ(sum_f, 60u);
}

TEST(FrameAllocator, ColorAccountingExact)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    FrameAllocator alloc(map);
    ASSERT_TRUE(alloc.colorAware());
    EXPECT_EQ(alloc.numColors(), 32u);

    std::uint64_t per_color = map.framesPerColor();
    EXPECT_EQ(alloc.freeInColor(3), per_color);

    std::uint64_t f;
    ASSERT_TRUE(alloc.allocateInColor(3, f));
    EXPECT_EQ(map.colorOfFrame(f), 3u);
    EXPECT_EQ(alloc.freeInColor(3), per_color - 1);

    alloc.release(f);
    EXPECT_EQ(alloc.freeInColor(3), per_color);
    // Released frame is reused.
    std::uint64_t f2;
    ASSERT_TRUE(alloc.allocateInColor(3, f2));
    EXPECT_EQ(f2, f);
}

TEST(FrameAllocator, ColorExhaustion)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    FrameAllocator alloc(map);
    std::uint64_t per_color = map.framesPerColor();
    std::uint64_t f;
    for (std::uint64_t i = 0; i < per_color; ++i)
        ASSERT_TRUE(alloc.allocateInColor(7, f));
    EXPECT_FALSE(alloc.allocateInColor(7, f));
    // Other colors unaffected.
    EXPECT_TRUE(alloc.allocateInColor(8, f));
}

TEST(FrameAllocator, RoundRobinSpreadsAcrossColors)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    FrameAllocator alloc(map);
    std::vector<unsigned> colors = {2, 5, 9};
    std::size_t cursor = 0;
    std::set<unsigned> seen;
    for (int i = 0; i < 6; ++i)
        seen.insert(map.colorOfFrame(alloc.allocate(colors, cursor)));
    EXPECT_EQ(seen, std::set<unsigned>({2, 5, 9}));
}

TEST(FrameAllocator, AllocatePropertySweep)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    FrameAllocator alloc(map);
    Rng rng(31);
    // Random color sets, random interleavings: every frame must come
    // from the requested set and never repeat while live.
    std::set<std::uint64_t> live;
    for (int round = 0; round < 50; ++round) {
        auto set_size =
            static_cast<unsigned>(1 + rng.nextBelow(6));
        std::vector<unsigned> colors;
        for (unsigned i = 0; i < set_size; ++i)
            colors.push_back(
                static_cast<unsigned>(rng.nextBelow(map.numColors())));
        std::size_t cursor = 0;
        for (int i = 0; i < 20; ++i) {
            std::uint64_t f = alloc.allocate(colors, cursor);
            unsigned c = map.colorOfFrame(f);
            EXPECT_NE(std::find(colors.begin(), colors.end(), c),
                      colors.end());
            EXPECT_TRUE(live.insert(f).second) << "double allocation";
        }
    }
}

TEST(FrameAllocator, NonColorableMapUsesSinglePool)
{
    AddressMap map(geo(), MapScheme::LineInterleave);
    FrameAllocator alloc(map);
    EXPECT_FALSE(alloc.colorAware());
    std::uint64_t a = alloc.allocateAny();
    std::uint64_t b = alloc.allocateAny();
    EXPECT_NE(a, b);
}

TEST(OsMemory, TranslateIsStable)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 2);
    Addr va = 0x1234540;
    Addr pa1 = os.translate(0, va);
    Addr pa2 = os.translate(0, va);
    EXPECT_EQ(pa1, pa2);
    // Offset within the page preserved.
    EXPECT_EQ(pa1 % 4096, va % 4096);
}

TEST(OsMemory, ThreadsGetDistinctFrames)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 2);
    Addr pa0 = os.translate(0, 0x0);
    Addr pa1 = os.translate(1, 0x0);
    EXPECT_NE(pa0 / 4096, pa1 / 4096);
}

TEST(OsMemory, ColorSetEnforcedOnAllocation)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 1);
    os.setColorSet(0, {4, 11, 19});

    for (int i = 0; i < 200; ++i) {
        Addr pa = os.translate(0, static_cast<Addr>(i) * 4096);
        unsigned color = map.colorOf(map.decode(pa));
        EXPECT_TRUE(color == 4 || color == 11 || color == 19)
            << "page landed in color " << color;
    }
    EXPECT_EQ(os.mappedPages(0), 200u);
    EXPECT_EQ(os.nonconformingPages(0), 0u);
}

TEST(OsMemory, MigrationMovesNonconformingPages)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 1);
    os.setColorSet(0, {0, 1});
    for (int i = 0; i < 50; ++i)
        os.translate(0, static_cast<Addr>(i) * 4096);

    os.setColorSet(0, {30, 31});
    EXPECT_EQ(os.nonconformingPages(0), 50u);

    MigrationResult res = os.migrate(0, 0);
    EXPECT_EQ(res.pages, 50u);
    EXPECT_EQ(os.nonconformingPages(0), 0u);
    for (const auto &[src, dst] : res.moves) {
        EXPECT_TRUE(src == 0 || src == 1);
        EXPECT_TRUE(dst == 30 || dst == 31);
    }

    // Translations still resolve, now into the new colors.
    for (int i = 0; i < 50; ++i) {
        Addr pa = os.translate(0, static_cast<Addr>(i) * 4096);
        unsigned color = map.colorOf(map.decode(pa));
        EXPECT_TRUE(color == 30 || color == 31);
    }
}

TEST(OsMemory, MigrationRespectsCap)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 1);
    os.setColorSet(0, {0});
    for (int i = 0; i < 40; ++i)
        os.translate(0, static_cast<Addr>(i) * 4096);
    os.setColorSet(0, {5});
    MigrationResult res = os.migrate(0, 10);
    EXPECT_EQ(res.pages, 10u);
    EXPECT_EQ(os.nonconformingPages(0), 30u);
    EXPECT_EQ(os.statMigratedPages.value(), 10u);
}

TEST(OsMemory, MigrationFreesOldFrames)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 1);
    os.setColorSet(0, {0});
    std::uint64_t before = os.allocator().freeInColor(0);
    for (int i = 0; i < 20; ++i)
        os.translate(0, static_cast<Addr>(i) * 4096);
    EXPECT_EQ(os.allocator().freeInColor(0), before - 20);
    os.setColorSet(0, {3});
    os.migrate(0, 0);
    EXPECT_EQ(os.allocator().freeInColor(0), before);
}

TEST(OsMemory, InvalidColorSetRejected)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 1);
    EXPECT_DEATH(os.setColorSet(0, {}), "empty");
    EXPECT_DEATH(os.setColorSet(0, {999}), "out of range");
}

TEST(OsMemory, BadThreadIdPanics)
{
    AddressMap map(geo(), MapScheme::PageInterleave);
    OsMemory os(map, 2);
    EXPECT_DEATH(os.translate(5, 0), "out of range");
    EXPECT_DEATH(os.translate(-1, 0), "out of range");
}

} // namespace
} // namespace dbpsim
