/**
 * @file
 * Partitioning tests: UBP's equal disjoint channel-spread shares,
 * DBP's demand estimation, proportional allocation, hysteresis and
 * incremental (migration-minimizing) reassignment, MCP's grouping,
 * the factory, and the PartitionManager's OS enforcement + migration
 * cost application.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/sched_frfcfs.hh"
#include "part/manager.hh"
#include "part/part_dbp.hh"
#include "part/part_factory.hh"
#include "part/part_mcp.hh"
#include "part/part_none.hh"
#include "part/part_ubp.hh"

namespace dbpsim {
namespace {

constexpr unsigned kChan = 2, kRanks = 2, kBanks = 8;
constexpr unsigned kColors = kChan * kRanks * kBanks;

ThreadMemProfile
profile(double mpki, double rbhr, double mlp, std::uint64_t reqs = 1000)
{
    ThreadMemProfile p;
    p.mpki = mpki;
    p.rowBufferHitRate = rbhr;
    p.mlp = mlp;
    p.blp = mlp; // for policies that read the censored signal.
    p.rowParallelism = mlp;
    p.requests = reqs;
    p.instructions = 1'000'000;
    return p;
}

/** DBP params that react on the first interval (unit tests). */
DbpParams
fastDbp()
{
    DbpParams p;
    p.cooldownIntervals = 1;
    p.warmupIntervals = 0;
    return p;
}

/** Channel of a color under the canonical ordering. */
unsigned
channelOfColor(unsigned color)
{
    return color / (kRanks * kBanks);
}

TEST(ColorOrder, CoversAllColorsOnce)
{
    auto order = channelSpreadColorOrder(kChan, kRanks, kBanks);
    EXPECT_EQ(order.size(), kColors);
    std::set<unsigned> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), kColors);
}

TEST(ColorOrder, ConsecutiveEntriesAlternateChannels)
{
    auto order = channelSpreadColorOrder(kChan, kRanks, kBanks);
    // Within every group of kChan entries, all channels appear.
    for (std::size_t i = 0; i + kChan <= order.size(); i += kChan) {
        std::set<unsigned> chans;
        for (unsigned j = 0; j < kChan; ++j)
            chans.insert(channelOfColor(order[i + j]));
        EXPECT_EQ(chans.size(), kChan);
    }
}

TEST(Ubp, EqualDisjointSpanningShares)
{
    UbpPolicy ubp(8, kChan, kRanks, kBanks);
    PartitionAssignment a = ubp.initialAssignment();
    ASSERT_EQ(a.size(), 8u);

    std::set<unsigned> all;
    for (const auto &set : a) {
        EXPECT_EQ(set.size(), 4u); // 32 banks / 8 threads.
        std::set<unsigned> chans;
        for (unsigned c : set) {
            EXPECT_TRUE(all.insert(c).second) << "color shared";
            chans.insert(channelOfColor(c));
        }
        // Each share spans both channels.
        EXPECT_EQ(chans.size(), kChan);
    }
    EXPECT_EQ(all.size(), kColors);
}

TEST(Ubp, RemainderGoesToFirstThreads)
{
    UbpPolicy ubp(3, kChan, kRanks, kBanks); // 32 / 3.
    PartitionAssignment a = ubp.initialAssignment();
    EXPECT_EQ(a[0].size(), 11u);
    EXPECT_EQ(a[1].size(), 11u);
    EXPECT_EQ(a[2].size(), 10u);
}

TEST(Ubp, StaticPolicyNeverRepartitions)
{
    UbpPolicy ubp(4, kChan, kRanks, kBanks);
    ubp.initialAssignment();
    std::vector<ThreadMemProfile> profiles(4, profile(10, 0.5, 3));
    EXPECT_FALSE(ubp.onInterval(profiles).has_value());
}

TEST(Dbp, InitialAssignmentIsEqual)
{
    DbpPolicy dbp(8, kChan, kRanks, kBanks);
    PartitionAssignment a = dbp.initialAssignment();
    std::set<unsigned> all;
    for (const auto &set : a) {
        EXPECT_EQ(set.size(), 4u);
        for (unsigned c : set)
            EXPECT_TRUE(all.insert(c).second);
    }
}

TEST(Dbp, SharesProportionalToDemand)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks);
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0),  // heavy, high BLP.
        profile(25, 0.95, 1.0), // heavy, streaming.
        profile(0.4, 0.5, 1.0), // light.
        profile(0.1, 0.5, 1.0), // light.
    };
    auto shares = dbp.bankShares(profiles);
    EXPECT_GT(shares[0], shares[1]);
    EXPECT_GE(shares[1], 1u);
    // Light threads report the shared light set.
    EXPECT_EQ(shares[2], shares[3]);
    EXPECT_LE(shares[2], kColors / 4);
    // Heavy shares + light set cover the machine.
    EXPECT_EQ(shares[0] + shares[1] + shares[2], kColors);
}

TEST(Dbp, AllLightSharesEverything)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks, fastDbp());
    dbp.initialAssignment();
    std::vector<ThreadMemProfile> profiles(4, profile(0.1, 0.5, 1.0));
    auto next = dbp.onInterval(profiles);
    ASSERT_TRUE(next.has_value());
    for (const auto &set : *next)
        EXPECT_EQ(set.size(), kColors);
}

TEST(Dbp, EveryHeavyThreadGetsAtLeastOneBank)
{
    DbpPolicy dbp(8, 1, 1, 8); // 8 threads, 8 banks.
    std::vector<ThreadMemProfile> profiles(8, profile(20, 0.3, 8.0));
    auto shares = dbp.bankShares(profiles);
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_GE(shares[t], 1u);
    unsigned sum = 0;
    for (unsigned t = 0; t < 8; ++t)
        sum += shares[t];
    EXPECT_EQ(sum, 8u);
}

TEST(Dbp, HysteresisSuppressesNoChange)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks, fastDbp());
    dbp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0), profile(25, 0.95, 1.0),
        profile(0.4, 0.5, 1.0), profile(0.1, 0.5, 1.0)};
    auto first = dbp.onInterval(profiles);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(dbp.repartitions(), 1u);

    // Identical profiles: no new assignment.
    auto second = dbp.onInterval(profiles);
    EXPECT_FALSE(second.has_value());
    EXPECT_EQ(dbp.repartitions(), 1u);
}

TEST(Dbp, StrongHysteresisAbsorbsSmallChanges)
{
    DbpParams params = fastDbp();
    params.hysteresisBanks = 3;
    DbpPolicy dbp(2, kChan, kRanks, kBanks, params);
    dbp.initialAssignment();
    // Strongly asymmetric demand: first adoption moves >= 3 banks.
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0), profile(25, 0.95, 2.0)};
    ASSERT_TRUE(dbp.onInterval(profiles).has_value());

    // Parallelism wiggle that moves shares by < 3 banks: suppressed.
    profiles[1] = profile(25, 0.95, 2.4);
    EXPECT_FALSE(dbp.onInterval(profiles).has_value());
}

TEST(Dbp, IncrementalReassignmentMovesFewColors)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks, fastDbp());
    dbp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0), profile(25, 0.95, 2.0),
        profile(12, 0.5, 3.0), profile(9, 0.5, 2.0)};
    auto first = dbp.onInterval(profiles);
    ASSERT_TRUE(first.has_value());

    // Raise thread 1's parallelism: only a few colors should move.
    profiles[1] = profile(25, 0.5, 5.0);
    auto second = dbp.onInterval(profiles);
    ASSERT_TRUE(second.has_value());

    unsigned moved = 0;
    for (unsigned t = 0; t < 4; ++t) {
        std::set<unsigned> before((*first)[t].begin(), (*first)[t].end());
        for (unsigned c : (*second)[t])
            if (!before.count(c))
                ++moved;
    }
    EXPECT_LE(moved, 6u) << "incremental reassignment moved " << moved
                         << " colors";
}

TEST(Dbp, AssignmentsAreDisjointAndComplete)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks, fastDbp());
    dbp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0), profile(25, 0.95, 1.0),
        profile(0.4, 0.5, 1.0), profile(8, 0.6, 2.5)};
    auto next = dbp.onInterval(profiles);
    ASSERT_TRUE(next.has_value());

    // Heavy threads' sets are mutually disjoint and disjoint from the
    // light set; the union covers all colors.
    std::set<unsigned> seen;
    for (unsigned t = 0; t < 4; ++t) {
        if (t == 2)
            continue; // light.
        for (unsigned c : (*next)[t])
            EXPECT_TRUE(seen.insert(c).second)
                << "color " << c << " assigned twice";
    }
    for (unsigned c : (*next)[2])
        EXPECT_TRUE(seen.insert(c).second);
    EXPECT_EQ(seen.size(), kColors);
}

TEST(Dbp, HeavyThreadColorsSpanChannels)
{
    DbpPolicy dbp(4, kChan, kRanks, kBanks, fastDbp());
    dbp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(17, 0.3, 6.0), profile(25, 0.95, 2.0),
        profile(12, 0.5, 3.0), profile(9, 0.5, 2.0)};
    auto next = dbp.onInterval(profiles);
    ASSERT_TRUE(next.has_value());
    for (unsigned t = 0; t < 4; ++t) {
        if ((*next)[t].size() < 2)
            continue;
        std::set<unsigned> chans;
        for (unsigned c : (*next)[t])
            chans.insert(channelOfColor(c));
        EXPECT_EQ(chans.size(), kChan)
            << "thread " << t << " confined to one channel";
    }
}

TEST(Mcp, ThreeGroupsSplitChannels)
{
    McpPolicy mcp(4, kChan, kRanks, kBanks);
    std::vector<ThreadMemProfile> profiles = {
        profile(0.3, 0.5, 1.0, 10),     // low intensity.
        profile(20, 0.95, 1.0, 20000),  // high RBL.
        profile(18, 0.2, 6.0, 18000),   // low RBL.
        profile(16, 0.9, 1.5, 16000),   // high RBL.
    };
    auto chans = mcp.channelAssignment(profiles);
    // The two intensive groups land on different channels.
    EXPECT_NE(chans[1], chans[2]);
    EXPECT_EQ(chans[1], chans[3]);
    // Low-intensity thread shares one of them.
    EXPECT_EQ(chans[0].size(), 1u);
}

TEST(Mcp, SingleGroupGetsEverything)
{
    McpPolicy mcp(2, kChan, kRanks, kBanks);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.9, 1.0, 20000), profile(22, 0.92, 1.0, 22000)};
    auto chans = mcp.channelAssignment(profiles);
    EXPECT_EQ(chans[0].size(), kChan);
    EXPECT_EQ(chans[1].size(), kChan);
}

TEST(Mcp, AssignmentUsesWholeChannels)
{
    McpPolicy mcp(3, kChan, kRanks, kBanks);
    mcp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.95, 1.0, 20000), profile(18, 0.2, 6.0, 18000),
        profile(0.3, 0.5, 1.0, 10)};
    auto next = mcp.onInterval(profiles);
    ASSERT_TRUE(next.has_value());
    // Every thread's set is a multiple of a channel's bank count and
    // all colors of each claimed channel are included.
    for (const auto &set : *next) {
        EXPECT_EQ(set.size() % (kRanks * kBanks), 0u);
        std::set<unsigned> chans;
        for (unsigned c : set)
            chans.insert(channelOfColor(c));
        EXPECT_EQ(set.size(), chans.size() * kRanks * kBanks);
    }
}

TEST(Mcp, NoChangeReturnsNullopt)
{
    McpPolicy mcp(2, kChan, kRanks, kBanks);
    mcp.initialAssignment();
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.95, 1.0, 20000), profile(18, 0.2, 6.0, 18000)};
    ASSERT_TRUE(mcp.onInterval(profiles).has_value());
    EXPECT_FALSE(mcp.onInterval(profiles).has_value());
}

TEST(Factory, BuildsEveryPolicy)
{
    PartitionInit init;
    init.numThreads = 4;
    init.geometry.channels = kChan;
    init.geometry.ranksPerChannel = kRanks;
    init.geometry.banksPerRank = kBanks;
    for (const auto &name : partitionPolicyNames()) {
        auto p = makePartitionPolicy(name, init);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
        EXPECT_EQ(p->initialAssignment().size(), 4u);
    }
}

TEST(Factory, RejectsUnknown)
{
    PartitionInit init;
    EXPECT_EXIT({ makePartitionPolicy("bogus", init); },
                ::testing::ExitedWithCode(1), "unknown partition");
}

class ManagerFixture : public ::testing::Test
{
  protected:
    ManagerFixture()
    {
        geo_.channels = kChan;
        geo_.ranksPerChannel = kRanks;
        geo_.banksPerRank = kBanks;
        geo_.rowsPerBank = 256;
        geo_.rowBytes = 8192;
        geo_.lineBytes = 64;
        geo_.pageBytes = 4096;
        map_ = std::make_unique<AddressMap>(geo_,
                                            MapScheme::PageInterleave);
        os_ = std::make_unique<OsMemory>(*map_, 2);
        ControllerParams cp;
        cp.numThreads = 2;
        for (unsigned ch = 0; ch < kChan; ++ch)
            mcs_.push_back(std::make_unique<MemoryController>(
                ch, *map_, ddr3_1600(), cp, &sched_, nullptr));
    }

    PartitionManager
    makeManager(const std::string &policy, PartitionManagerParams pm = {})
    {
        PartitionInit init;
        init.numThreads = 2;
        init.geometry = geo_;
        init.dbp = fastDbp();
        std::vector<MemoryController *> raw;
        for (auto &m : mcs_)
            raw.push_back(m.get());
        return PartitionManager(makePartitionPolicy(policy, init), *os_,
                                raw, *map_, pm);
    }

    DramGeometry geo_;
    std::unique_ptr<AddressMap> map_;
    std::unique_ptr<OsMemory> os_;
    FrFcfsScheduler sched_;
    std::vector<std::unique_ptr<MemoryController>> mcs_;
};

TEST_F(ManagerFixture, StartAppliesInitialAssignmentToOs)
{
    PartitionManager mgr = makeManager("ubp");
    mgr.start();
    EXPECT_EQ(os_->colorSet(0).size(), kColors / 2);
    EXPECT_EQ(os_->colorSet(1).size(), kColors / 2);
    // Disjoint.
    std::set<unsigned> s0(os_->colorSet(0).begin(),
                          os_->colorSet(0).end());
    for (unsigned c : os_->colorSet(1))
        EXPECT_FALSE(s0.count(c));
}

TEST_F(ManagerFixture, RepartitionMigratesPages)
{
    PartitionManagerParams pm;
    pm.migration = MigrationMode::Eager;
    PartitionManager mgr = makeManager("dbp", pm);
    mgr.start();
    // Touch pages for both threads under the equal partition.
    for (int i = 0; i < 64; ++i) {
        os_->translate(0, static_cast<Addr>(i) * 4096);
        os_->translate(1, static_cast<Addr>(i) * 4096);
    }
    // Radically different demands force a repartition.
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 1000);
    EXPECT_EQ(mgr.statRepartitions.value(), 1u);
    EXPECT_GT(mgr.statPagesMigrated.value(), 0u);
    EXPECT_EQ(os_->nonconformingPages(0), 0u);
    EXPECT_EQ(os_->nonconformingPages(1), 0u);
}

TEST_F(ManagerFixture, MigrationNoneLeavesPagesInPlace)
{
    PartitionManagerParams pm;
    pm.migration = MigrationMode::None;
    PartitionManager mgr = makeManager("dbp", pm);
    mgr.start();
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 1000);
    EXPECT_EQ(mgr.statPagesMigrated.value(), 0u);
    EXPECT_GT(os_->nonconformingPages(1), 0u);
}

TEST_F(ManagerFixture, EagerMigrationChargesBanks)
{
    PartitionManagerParams pm;
    pm.migration = MigrationMode::Eager;
    PartitionManager mgr = makeManager("dbp", pm);
    mgr.start();
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 0);

    // Some bank must now be blocked well past cycle 0.
    bool any_blocked = false;
    for (auto &mc : mcs_)
        for (unsigned r = 0; r < kRanks; ++r)
            for (unsigned b = 0; b < kBanks; ++b)
                if (mc->channel().bank(r, b).nextActivate > 100)
                    any_blocked = true;
    EXPECT_TRUE(any_blocked);
}

TEST_F(ManagerFixture, FreeMigrationChargesNothing)
{
    PartitionManagerParams pm;
    pm.migration = MigrationMode::EagerFree;
    PartitionManager mgr = makeManager("dbp", pm);
    mgr.start();
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 0);

    EXPECT_GT(mgr.statPagesMigrated.value(), 0u);
    for (auto &mc : mcs_)
        for (unsigned r = 0; r < kRanks; ++r)
            for (unsigned b = 0; b < kBanks; ++b)
                EXPECT_LE(mc->channel().bank(r, b).nextActivate, 100u);
}

TEST(MigrationMode, Names)
{
    EXPECT_EQ(migrationModeByName("none"), MigrationMode::None);
    EXPECT_EQ(migrationModeByName("lazy"), MigrationMode::Lazy);
    EXPECT_EQ(migrationModeByName("eager"), MigrationMode::Eager);
    EXPECT_EQ(migrationModeByName("free"), MigrationMode::EagerFree);
}

TEST_F(ManagerFixture, LazyMigrationMovesOnTouch)
{
    // Default mode: pages move only when re-touched, rate limited.
    PartitionManager mgr = makeManager("dbp");
    mgr.start();
    os_->setLazyPeriod(1);
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 1000);
    ASSERT_EQ(mgr.statRepartitions.value(), 1u);
    // No eager movement at the repartition itself.
    std::uint64_t before = os_->nonconformingPages(1);
    EXPECT_GT(before, 0u);
    EXPECT_TRUE(os_->drainLazyMoves().empty());

    // Re-touching pages migrates them one by one.
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    auto moves = os_->drainLazyMoves();
    EXPECT_EQ(moves.size(), before);
    EXPECT_EQ(os_->nonconformingPages(1), 0u);

    // Charging the moves blocks the involved banks.
    mgr.applyLazyMoves(moves, 2000);
    EXPECT_EQ(mgr.statPagesMigrated.value(), moves.size());
    bool any_blocked = false;
    for (auto &mc : mcs_)
        for (unsigned r = 0; r < kRanks; ++r)
            for (unsigned b = 0; b < kBanks; ++b)
                if (mc->channel().bank(r, b).nextActivate > 2100)
                    any_blocked = true;
    EXPECT_TRUE(any_blocked);
}

TEST_F(ManagerFixture, LazyRateLimitHonored)
{
    PartitionManager mgr = makeManager("dbp");
    mgr.start();
    os_->setLazyPeriod(16);
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    std::vector<ThreadMemProfile> profiles = {
        profile(20, 0.2, 8.0), profile(20, 0.95, 1.0)};
    mgr.onInterval(profiles, 1000);

    // 64 touches at period 16 allow at most 4 moves.
    for (int i = 0; i < 64; ++i)
        os_->translate(1, static_cast<Addr>(i) * 4096);
    auto moves = os_->drainLazyMoves();
    EXPECT_LE(moves.size(), 4u);
    EXPECT_GE(moves.size(), 1u);
}

} // namespace
} // namespace dbpsim
