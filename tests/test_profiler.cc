/**
 * @file
 * Run-time profiler tests: shadow row-buffer locality, incremental
 * BLP accounting, and interval-close arithmetic (MPKI, reset
 * semantics).
 */

#include <gtest/gtest.h>

#include "mem/profiler.hh"

namespace dbpsim {
namespace {

TEST(Profiler, ShadowRowHitRate)
{
    ThreadProfiler p(2, 4);
    // Thread 0: three accesses to the same (color,row) — first is a
    // cold miss, next two are shadow hits.
    p.onRequest(0, 1, 10);
    p.onRequest(0, 1, 10);
    p.onRequest(0, 1, 10);
    // Thread 1: alternating rows — all misses.
    p.onRequest(1, 2, 5);
    p.onRequest(1, 2, 6);
    p.onRequest(1, 2, 5);

    auto profiles = p.closeInterval({1000, 1000}, {0, 0});
    EXPECT_NEAR(profiles[0].rowBufferHitRate, 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(profiles[1].rowBufferHitRate, 0.0, 1e-9);
}

TEST(Profiler, ShadowBuffersAreInterferenceFree)
{
    ThreadProfiler p(2, 4);
    // Threads ping-pong the same bank with different rows; a real row
    // buffer would alternate, but shadows are per thread: each thread
    // streams its own row and sees hits.
    for (int i = 0; i < 10; ++i) {
        p.onRequest(0, 0, 100);
        p.onRequest(1, 0, 200);
    }
    auto profiles = p.closeInterval({1000, 1000}, {0, 0});
    EXPECT_NEAR(profiles[0].rowBufferHitRate, 0.9, 1e-9);
    EXPECT_NEAR(profiles[1].rowBufferHitRate, 0.9, 1e-9);
}

TEST(Profiler, MpkiArithmetic)
{
    ThreadProfiler p(1, 2);
    for (int i = 0; i < 50; ++i)
        p.onRequest(0, 0, static_cast<std::uint64_t>(i));
    auto profiles = p.closeInterval({10000}, {0});
    EXPECT_EQ(profiles[0].requests, 50u);
    EXPECT_NEAR(profiles[0].mpki, 5.0, 1e-9);
}

TEST(Profiler, BlpAveragesBusyBanksOverBusyCycles)
{
    ThreadProfiler p(1, 8);
    // 2 banks busy for 3 cycles, then 1 bank for 2 cycles, then idle.
    p.onOutstandingInc(0, 0, 5);
    p.onOutstandingInc(0, 1, 9);
    EXPECT_EQ(p.busyBanks(0), 2u);
    p.tick();
    p.tick();
    p.tick();
    p.onOutstandingDec(0, 1, 9);
    p.tick();
    p.tick();
    p.onOutstandingDec(0, 0, 5);
    p.tick(); // idle: must not count.
    p.tick();

    auto profiles = p.closeInterval({1000}, {0});
    EXPECT_NEAR(profiles[0].blp, (2 * 3 + 1 * 2) / 5.0, 1e-9);
}

TEST(Profiler, MultipleRequestsSameBankCountOnce)
{
    ThreadProfiler p(1, 8);
    p.onOutstandingInc(0, 3, 7);
    p.onOutstandingInc(0, 3, 7);
    EXPECT_EQ(p.busyBanks(0), 1u);
    p.onOutstandingDec(0, 3, 7);
    EXPECT_EQ(p.busyBanks(0), 1u);
    p.onOutstandingDec(0, 3, 7);
    EXPECT_EQ(p.busyBanks(0), 0u);
}

TEST(Profiler, IntervalCountersResetButShadowPersists)
{
    ThreadProfiler p(1, 2);
    p.onRequest(0, 0, 7);
    auto first = p.closeInterval({1000}, {0});
    EXPECT_EQ(first[0].requests, 1u);

    // Same row again: the shadow remembers it across intervals.
    p.onRequest(0, 0, 7);
    auto second = p.closeInterval({1000}, {0});
    EXPECT_EQ(second[0].requests, 1u);
    EXPECT_NEAR(second[0].rowBufferHitRate, 1.0, 1e-9);
}

TEST(Profiler, FootprintAndInstructionsPassThrough)
{
    ThreadProfiler p(2, 2);
    auto profiles = p.closeInterval({123, 456}, {10, 20});
    EXPECT_EQ(profiles[0].instructions, 123u);
    EXPECT_EQ(profiles[1].instructions, 456u);
    EXPECT_EQ(profiles[0].footprintPages, 10u);
    EXPECT_EQ(profiles[1].footprintPages, 20u);
}

TEST(Profiler, ZeroInstructionIntervalIsSafe)
{
    ThreadProfiler p(1, 2);
    p.onRequest(0, 0, 1);
    auto profiles = p.closeInterval({0}, {0});
    EXPECT_DOUBLE_EQ(profiles[0].mpki, 0.0);
}

TEST(Profiler, UnderflowPanics)
{
    ThreadProfiler p(1, 2);
    EXPECT_DEATH(p.onOutstandingDec(0, 0, 1), "underflow");
}

TEST(Profiler, BadIndicesPanic)
{
    ThreadProfiler p(1, 2);
    EXPECT_DEATH(p.onRequest(3, 0, 0), "bad thread");
    EXPECT_DEATH(p.onRequest(0, 9, 0), "color out of range");
}

} // namespace
} // namespace dbpsim
