/**
 * @file
 * Protocol-checker tests. Three layers:
 *
 *  1. Injection: feed the checker hand-built command streams that each
 *     break exactly one rule (early ACT after PRE, a fifth ACT inside
 *     tFAW, a read to a closed bank, an access outside the thread's
 *     partition, ...) and assert precisely that violation class fires.
 *  2. Cross-validation: attach the checker to a real DramChannel and
 *     replay a randomized legal command stream — two independent
 *     implementations of the DDR rules must agree that it is clean.
 *  3. End-to-end: full System / ExperimentRunner runs of every scheme
 *     must complete with zero violations (fail-fast panics otherwise).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "check/protocol_check.hh"
#include "common/random.hh"
#include "dram/channel.hh"
#include "dram/refresh.hh"
#include "sim/experiment.hh"
#include "sim/schemes.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace dbpsim {
namespace {

/** One channel, two ranks, eight banks: 16 bank colors. */
DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 64;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

/** Build a CmdEvent on channel 0 without aggregate-order pitfalls. */
CmdEvent
ev(DramCmd cmd, unsigned rank, unsigned bank, std::uint64_t row,
   Cycle cycle, ThreadId tid = kInvalidThread)
{
    CmdEvent e;
    e.channel = 0;
    e.cmd = cmd;
    e.rank = rank;
    e.bank = bank;
    e.row = row;
    e.cycle = cycle;
    e.tid = tid;
    return e;
}

// ---------------------------------------------------------------------
// Layer 1: injection tests — one deliberate violation each.
// ---------------------------------------------------------------------

TEST(ProtocolCheck, CleanLegalSequenceIsViolationFree)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);

    pc.onCommand(ev(DramCmd::Activate, 0, 0, 7, 0));
    Cycle rd1 = tm.tRCD;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 7, rd1));
    Cycle rd2 = rd1 + tm.tCCD;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 7, rd2));
    Cycle pre = std::max(tm.tRAS, rd2 + tm.tRTP);
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, pre));
    Cycle act2 = std::max(pre + tm.tRP, tm.tRC);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 9, act2));
    Cycle wr = act2 + tm.tRCD;
    pc.onCommand(ev(DramCmd::Write, 0, 0, 9, wr));
    Cycle wr_data_end = wr + tm.tCWL + tm.tBURST;
    Cycle rd3 = wr_data_end + tm.tWTR;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 9, rd3));
    Cycle pre2 = std::max({act2 + tm.tRAS, rd3 + tm.tRTP,
                           wr_data_end + tm.tWR});
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, pre2));
    Cycle ref = std::max(pre2 + tm.tRP, act2 + tm.tRC);
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, ref));

    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    EXPECT_EQ(pc.commandsChecked(), 9u);
    pc.finalize(ref + 1);
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlyActivateAfterPrechargeFlagsTrp)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    // Keep the row open past tRC so only tRP can trip below.
    Cycle pre = tm.tRC + 1;
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, pre));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 2, pre + tm.tRP - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRP), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlyPrechargeFlagsTras)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, tm.tRAS - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRAS), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, BackToBackActivateFlagsTrc)
{
    // The DDR3 presets have tRC == tRAS + tRP exactly, which makes tRC
    // indistinguishable from the PRE+tRP path; stretch it to isolate.
    DramTiming tm = ddr3_1600();
    tm.tRC = tm.tRAS + tm.tRP + 4;
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, tm.tRAS));
    // tRP satisfied, tRC not quite.
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 2, tm.tRC - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRC), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, FifthActivateInsideTfawFlagsTfaw)
{
    DramTiming tm = ddr3_1600();
    ASSERT_LT(4 * tm.tRRD, tm.tFAW) << "preset cannot trip tFAW";
    ProtocolChecker pc(geo(), tm, 1);
    Cycle now = 0;
    for (unsigned b = 0; b < 4; ++b) {
        pc.onCommand(ev(DramCmd::Activate, 0, b, 1, now));
        now += tm.tRRD;
    }
    // tRRD is honored but four ACTs are inside the rolling window.
    pc.onCommand(ev(DramCmd::Activate, 0, 4, 1, now));
    EXPECT_EQ(pc.violations(Violation::TimingTFAW), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
    // The other rank's window is independent.
    pc.onCommand(ev(DramCmd::Activate, 1, 0, 1, now));
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, TightActivatePairFlagsTrrd)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 1, 1, tm.tRRD - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRRD), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, ReadToClosedBankFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Read, 0, 3, 0, 100));
    EXPECT_EQ(pc.violations(Violation::ColToClosedBank), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
    EXPECT_NE(pc.lastViolation().find("closed bank"), std::string::npos);
}

TEST(ProtocolCheck, ReadToWrongRowFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 3, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 0, 4, tm.tRCD));
    EXPECT_EQ(pc.violations(Violation::ColWrongRow), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlyReadAfterActivateFlagsTrcd)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, tm.tRCD - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRCD), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, TightColumnPairFlagsTccd)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    Cycle rd1 = tm.tRCD;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd1));
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd1 + tm.tCCD - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTCCD), 1u);
    // The too-early second read also overlaps the first data burst.
    EXPECT_EQ(pc.violations(Violation::DataBusConflict), 1u);
    EXPECT_EQ(pc.violations(), 2u) << pc.lastViolation();
}

TEST(ProtocolCheck, WriteToReadTurnaroundFlagsTwtr)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    Cycle wr = tm.tRCD;
    pc.onCommand(ev(DramCmd::Write, 0, 0, 1, wr));
    Cycle data_end = wr + tm.tCWL + tm.tBURST;
    // Past the bus conflict window and tCCD, short of tWTR.
    Cycle rd = data_end + tm.tRTRS - tm.tCL + tm.tBURST;
    rd = std::max(rd, wr + tm.tCCD);
    ASSERT_LT(rd, data_end + tm.tWTR);
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd));
    EXPECT_EQ(pc.violations(Violation::TimingTWTR), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlyPrechargeAfterWriteFlagsTwr)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    Cycle wr = tm.tRCD;
    pc.onCommand(ev(DramCmd::Write, 0, 0, 1, wr));
    Cycle ready = wr + tm.tCWL + tm.tBURST + tm.tWR;
    Cycle pre = std::max(tm.tRAS, ready - 1);
    ASSERT_LT(pre, ready);
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, pre));
    EXPECT_EQ(pc.violations(Violation::TimingTWR), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlyPrechargeAfterReadFlagsTrtp)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    Cycle rd = tm.tRAS - 2; // tRCD long since satisfied.
    ASSERT_GE(rd, tm.tRCD);
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd));
    Cycle pre = std::max(tm.tRAS, rd + tm.tRTP - 1);
    ASSERT_LT(pre, rd + tm.tRTP);
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, pre));
    EXPECT_EQ(pc.violations(Violation::TimingTRTP), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, PrechargeToClosedBankFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Precharge, 0, 0, 0, 50));
    EXPECT_EQ(pc.violations(Violation::PreToClosedBank), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, ActivateToOpenBankFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 2, tm.tRC));
    EXPECT_EQ(pc.violations(Violation::ActToOpenBank), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, CommandDuringRefreshFlagsTrfc)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRFC - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRFC), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
    // At exactly tRFC the rank is available again.
    pc.onCommand(ev(DramCmd::Activate, 0, 1, 1, tm.tRFC + tm.tRRD));
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, RefreshOverOpenBankFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 2, 1, 0));
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, tm.tRC));
    EXPECT_EQ(pc.violations(Violation::RefreshOpenBank), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, LateRefreshFlagsCadence)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, 0));
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, bound + 1));
    EXPECT_EQ(pc.violations(Violation::RefreshLate), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, FinalizeFlagsUnrefreshedRanks)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    pc.finalize(bound); // right at the bound: still fine.
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    pc.finalize(bound + 1); // both ranks overdue.
    EXPECT_EQ(pc.violations(Violation::RefreshLate), 2u);
}

TEST(ProtocolCheck, CommandDuringPerBankRefreshFlagsTrfcPb)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, 0));
    // The refreshing bank accepts nothing inside tRFCpb...
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRFCpb - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRFCpb), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
    // ...but a neighbouring bank of the same rank is unaffected.
    pc.onCommand(ev(DramCmd::Activate, 0, 1, 1,
                    tm.tRFCpb - 1 + tm.tRRD));
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, AllBankRefreshDuringPerBankRefreshFlagsTrfcPb)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 3, 0, 0));
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, tm.tRFCpb - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTRFCpb), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, PerBankRefreshToOpenBankFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 2, 1, 0));
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 2, 0, tm.tRC));
    EXPECT_EQ(pc.violations(Violation::RefreshPbOpenBank), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, LatePerBankRefreshFlagsCadence)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, 0));
    // Right at the bound: fine; one past it: the bank starved.
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, bound));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, 2 * bound + 1));
    EXPECT_EQ(pc.violations(Violation::RefreshPbLate), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, AllBankRefreshResetsPerBankCadence)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, 0));
    // An all-bank REF refreshes every bank, restarting their clocks.
    Cycle ref = bound - 10;
    pc.onCommand(ev(DramCmd::Refresh, 0, 0, 0, ref));
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 0, 0, ref + bound));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, ForeignPerBankRefreshFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onColorSet(0, {0, 1});
    // Engine-issued refreshes carry no thread and are always fine.
    pc.onCommand(ev(DramCmd::RefreshBank, 1, 2, 0, 0));
    // Thread 0 refreshing its own bank (color 1) is fine too.
    pc.onCommand(ev(DramCmd::RefreshBank, 0, 1, 0, tm.tRRD, 0));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    // rank 1 bank 3 = color 11 — never in thread 0's partition.
    pc.onCommand(ev(DramCmd::RefreshBank, 1, 3, 0, 100, 0));
    EXPECT_EQ(pc.violations(Violation::RefreshPbForeign), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, FinalizeAcceptsPerBankCoverage)
{
    DramTiming tm = ddr3_1600();
    DramGeometry g = geo();
    ProtocolChecker pc(g, tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    // Refresh every bank of both ranks per-bank style, no REF at all;
    // place them late enough that the rank-level REF clock (never
    // advanced here) is past its bound at finalize time.
    Cycle now = bound - 16;
    for (unsigned r = 0; r < g.ranksPerChannel; ++r)
        for (unsigned b = 0; b < g.banksPerRank; ++b)
            pc.onCommand(ev(DramCmd::RefreshBank, r, b, 0, now++));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    pc.finalize(bound + 1);
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, FinalizeFlagsPartialPerBankCoverage)
{
    DramTiming tm = ddr3_1600();
    DramGeometry g = geo();
    ProtocolChecker pc(g, tm, 1);
    Cycle bound =
        static_cast<Cycle>(pc.params().refreshPostponeMax + 1) *
        tm.tREFI;
    // Rank 0 covers all its banks; rank 1 skips bank 7.
    Cycle now = bound - 20;
    for (unsigned r = 0; r < g.ranksPerChannel; ++r)
        for (unsigned b = 0; b < g.banksPerRank - (r == 1 ? 1 : 0); ++b)
            pc.onCommand(ev(DramCmd::RefreshBank, r, b, 0, now++));
    pc.finalize(bound + 1);
    EXPECT_EQ(pc.violations(Violation::RefreshLate), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, FinalizeSkipsChecksWhenRefreshNotExpected)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.expectRefresh = false; // refresh mode "none".
    ProtocolChecker pc(geo(), tm, 1, params);
    Cycle bound = static_cast<Cycle>(params.refreshPostponeMax + 1) *
        tm.tREFI;
    pc.finalize(10 * bound);
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, RankSwitchWithoutTrtrsFlagsDataBus)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0));
    pc.onCommand(ev(DramCmd::Activate, 1, 0, 1, 0));
    Cycle rd1 = tm.tRCD;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd1));
    // Back to back on the bus, but the rank switch needs tRTRS.
    pc.onCommand(ev(DramCmd::Read, 1, 0, 1, rd1 + tm.tBURST));
    EXPECT_EQ(pc.violations(Violation::DataBusConflict), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, AutoPrechargeClosesBankInShadow)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 1);
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 7, 0));
    Cycle rd = tm.tRCD;
    pc.onCommand(ev(DramCmd::ReadAp, 0, 0, 7, rd));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    // The bank auto-precharged: a follow-up read must be flagged.
    pc.onCommand(ev(DramCmd::Read, 0, 0, 7, rd + tm.tCCD + tm.tBURST));
    EXPECT_EQ(pc.violations(Violation::ColToClosedBank), 1u);
}

TEST(ProtocolCheck, FailFastPanicsOnFirstViolation)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.failFast = true;
    ProtocolChecker pc(geo(), tm, 1, params);
    EXPECT_DEATH(pc.onCommand(ev(DramCmd::Read, 0, 0, 0, 100)),
                 "col_to_closed_bank");
}

// ---------------------------------------------------------------------
// Partition containment.
// ---------------------------------------------------------------------

TEST(ProtocolCheck, AccessOutsidePartitionFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onColorSet(0, {0, 1});
    // rank 1 bank 2 = color 10 — never assigned to thread 0.
    pc.onCommand(ev(DramCmd::Activate, 1, 2, 1, 0, 0));
    pc.onCommand(ev(DramCmd::Read, 1, 2, 1, tm.tRCD, 0));
    EXPECT_EQ(pc.violations(Violation::PartitionAccess), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, AccessInsidePartitionIsClean)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onColorSet(0, {2, 3});
    pc.onCommand(ev(DramCmd::Activate, 0, 2, 1, 0, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 2, 1, tm.tRCD, 0));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    EXPECT_EQ(pc.statStaleAccesses.value(), 0u);
}

TEST(ProtocolCheck, StaleAccessAfterRepartitionIsNotViolation)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onColorSet(0, {2});
    pc.onCommand(ev(DramCmd::Activate, 0, 2, 1, 0, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 2, 1, tm.tRCD, 0));
    // Repartition away; the page left behind may still be touched.
    pc.onColorSet(0, {3});
    pc.onCommand(ev(DramCmd::Read, 0, 2, 1,
                    tm.tRCD + tm.tCCD + tm.tBURST, 0));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    EXPECT_EQ(pc.statStaleAccesses.value(), 1u);
}

TEST(ProtocolCheck, UnpartitionedThreadsAreNeverFlagged)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    // No onColorSet at all: any access anywhere is fine.
    pc.onCommand(ev(DramCmd::Activate, 1, 7, 1, 0, 1));
    pc.onCommand(ev(DramCmd::Read, 1, 7, 1, tm.tRCD, 1));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, AllocationOutsideColorSetFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolChecker pc(geo(), tm, 2);
    pc.onColorSet(0, {1, 2});
    pc.onFrameAllocated(0, 2); // fine.
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    pc.onFrameAllocated(0, 7); // outside the set.
    EXPECT_EQ(pc.violations(Violation::PartitionAlloc), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
    EXPECT_EQ(pc.statAllocations.value(), 2u);
}

// ---------------------------------------------------------------------
// Subarray rules (SALP/MASA).
// ---------------------------------------------------------------------

TEST(ProtocolCheck, MasaCleanSequenceIsViolationFree)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.salp = SalpMode::Masa;
    ProtocolChecker pc(geo(), tm, 1, params);

    // Two subarrays open at once; column commands follow the
    // designated latch, relinked by SA_SEL after tSA.
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 0, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRRD));
    Cycle rd1 = tm.tRRD + tm.tRCD;
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, rd1));
    Cycle sel = rd1 + 1;
    pc.onCommand(ev(DramCmd::SaSel, 0, 0, 0, sel));
    Cycle rd2 = std::max({sel + tm.tSA, rd1 + tm.tCCD,
                          rd1 + tm.tBURST});
    pc.onCommand(ev(DramCmd::Read, 0, 0, 0, rd2));
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

TEST(ProtocolCheck, EarlySaSelRelinkFlagsTsa)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.salp = SalpMode::Masa;
    ProtocolChecker pc(geo(), tm, 1, params);

    pc.onCommand(ev(DramCmd::Activate, 0, 0, 0, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRRD));
    Cycle sel = tm.tRRD + 1;
    pc.onCommand(ev(DramCmd::SaSel, 0, 0, 0, sel));
    // A second relink before the first one's tSA has elapsed.
    pc.onCommand(ev(DramCmd::SaSel, 0, 0, 1, sel + tm.tSA - 1));
    EXPECT_EQ(pc.violations(Violation::TimingTSA), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, Salp1ActWhileAnotherSubarrayOpenFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.salp = SalpMode::Salp1;
    ProtocolChecker pc(geo(), tm, 1, params);

    pc.onCommand(ev(DramCmd::Activate, 0, 0, 0, 0));
    // SALP-1/2 keep one open row per bank: activating subarray 1
    // while subarray 0 still holds its row breaks the mode invariant.
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRRD));
    EXPECT_EQ(pc.violations(Violation::SubarrayActIllegal), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, ColumnToNonDesignatedSubarrayFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.salp = SalpMode::Masa;
    ProtocolChecker pc(geo(), tm, 1, params);

    pc.onCommand(ev(DramCmd::Activate, 0, 0, 0, 0));
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, tm.tRRD));
    // The second ACT designated subarray 1; a read to subarray 0's
    // open row without an SA_SEL relink is illegal.
    pc.onCommand(ev(DramCmd::Read, 0, 0, 0, tm.tRRD + tm.tRCD));
    EXPECT_EQ(pc.violations(Violation::SubarrayColIllegal), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();
}

TEST(ProtocolCheck, AccessOutsideSubarrayColorsFlags)
{
    DramTiming tm = ddr3_1600();
    ProtocolCheckerParams params;
    params.salp = SalpMode::Masa;
    params.subarrayColoring = true;
    ProtocolChecker pc(geo(), tm, 2, params);

    // Thread 0 owns exactly one subarray color: bank 0, subarray 0.
    pc.onColorSet(0, {0});

    // A foreign subarray of a partially-owned bank is the finer
    // breach class...
    pc.onCommand(ev(DramCmd::Activate, 0, 0, 1, 0, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 0, 1, tm.tRCD, 0));
    EXPECT_EQ(pc.violations(Violation::PartitionSubarray), 1u);
    EXPECT_EQ(pc.violations(), 1u) << pc.lastViolation();

    // ...while a fully-foreign bank still reports the classic one.
    pc.onCommand(ev(DramCmd::Activate, 0, 1, 0, tm.tRRD, 0));
    pc.onCommand(ev(DramCmd::Read, 0, 1, 0,
                    tm.tRRD + tm.tRCD + tm.tBURST, 0));
    EXPECT_EQ(pc.violations(Violation::PartitionAccess), 1u);
    EXPECT_EQ(pc.violations(), 2u) << pc.lastViolation();
}

// ---------------------------------------------------------------------
// Layer 2: cross-validation against the real DramChannel.
// ---------------------------------------------------------------------

/** Minimal recording observer for hook-wiring tests. */
struct Recorder : CommandObserver
{
    std::vector<CmdEvent> events;
    void onCommand(const CmdEvent &e) override { events.push_back(e); }
};

TEST(ChannelObserver, EveryIssuedCommandIsReported)
{
    DramGeometry g = geo();
    DramTiming tm = ddr3_1600();
    DramChannel ch(g, tm, 0);
    Recorder rec;
    ch.setObserver(&rec);

    ch.issue(DramCmd::Activate, 1, 2, 5, 0, 1);
    ch.issue(DramCmd::Read, 1, 2, 5, tm.tRCD, 1);
    ch.issue(DramCmd::Refresh, 0, 0, 0, tm.tRCD + 1);

    ASSERT_EQ(rec.events.size(), 3u);
    EXPECT_EQ(rec.events[0].cmd, DramCmd::Activate);
    EXPECT_EQ(rec.events[0].channel, 0u);
    EXPECT_EQ(rec.events[0].rank, 1u);
    EXPECT_EQ(rec.events[0].bank, 2u);
    EXPECT_EQ(rec.events[0].row, 5u);
    EXPECT_EQ(rec.events[0].cycle, 0u);
    EXPECT_EQ(rec.events[0].tid, 1);
    EXPECT_EQ(rec.events[1].cmd, DramCmd::Read);
    EXPECT_EQ(rec.events[1].cycle, tm.tRCD);
    // Callers that don't pass a thread id report kInvalidThread.
    EXPECT_EQ(rec.events[2].tid, kInvalidThread);
}

/**
 * Random legal-command streams through a real channel must be clean
 * under the checker: DramChannel::canIssue() and the checker are two
 * independent encodings of the same JEDEC rules.
 */
TEST(ChannelObserver, RandomLegalStreamIsViolationFree)
{
    DramGeometry g = geo();
    DramTiming tm = ddr3_1600();
    DramChannel ch(g, tm, 0);
    ProtocolChecker pc(g, tm, 1);
    ch.setObserver(&pc);
    Rng rng(99);

    Cycle last = 0;
    for (Cycle now = 0; now < 40000; ++now) {
        bool used = false;
        for (unsigned r = 0; r < g.ranksPerChannel && !used; ++r) {
            if (ch.refreshPending(r, now) &&
                ch.canIssue(DramCmd::Refresh, r, 0, 0, now)) {
                ch.issue(DramCmd::Refresh, r, 0, 0, now);
                used = true;
            }
        }
        if (used) {
            last = now;
            continue;
        }
        for (int attempt = 0; attempt < 4 && !used; ++attempt) {
            auto r = static_cast<unsigned>(
                rng.nextBelow(g.ranksPerChannel));
            auto b = static_cast<unsigned>(
                rng.nextBelow(g.banksPerRank));
            std::uint64_t row = rng.nextBelow(g.rowsPerBank);
            DramCmd cmd;
            switch (rng.nextBelow(6)) {
              case 0: cmd = DramCmd::Activate; break;
              case 1: cmd = DramCmd::Precharge; break;
              case 2: cmd = DramCmd::Read; break;
              case 3: cmd = DramCmd::Write; break;
              case 4: cmd = DramCmd::ReadAp; break;
              default: cmd = DramCmd::WriteAp; break;
            }
            if (cmd == DramCmd::Precharge) {
                // The channel tolerates PRE to a closed bank as a
                // no-op; real controllers never issue it and the
                // checker flags it, so the fuzzer doesn't either.
                if (!ch.bank(r, b).open)
                    continue;
            } else if (cmd != DramCmd::Activate) {
                const BankState &bs = ch.bank(r, b);
                if (!bs.open)
                    continue;
                row = bs.row;
            }
            if (!ch.canIssue(cmd, r, b, row, now))
                continue;
            ch.issue(cmd, r, b, row, now);
            used = true;
            last = now;
        }
    }
    EXPECT_GT(pc.commandsChecked(), 1000u)
        << "fuzz barely exercised the channel";
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
    pc.finalize(last);
    EXPECT_EQ(pc.violations(), 0u) << pc.lastViolation();
}

// ---------------------------------------------------------------------
// Layer 3: end-to-end scheme runs must be violation-free.
// ---------------------------------------------------------------------

std::unique_ptr<SyntheticSource>
makeSource(const std::string &name, double mpki, unsigned streams,
           double seq_run, double random_frac, std::uint64_t seed)
{
    SyntheticParams sp;
    sp.name = name;
    sp.seed = seed;
    sp.phases[0].mpki = mpki;
    sp.phases[0].streams = streams;
    sp.phases[0].seqRunLines = seq_run;
    sp.phases[0].randomFrac = random_frac;
    sp.phases[0].footprintPages = 4096;
    return std::make_unique<SyntheticSource>(sp);
}

TEST(ProtocolCheckSystem, PaperSchemesRunViolationFree)
{
    for (RefreshMode mode : {RefreshMode::AllBank, RefreshMode::PerBank})
    for (const char *name :
         {"FR-FCFS", "UBP", "DBP", "TCM", "DBP-TCM", "MCP"}) {
        SystemParams p;
        p.numCores = 4;
        p.geometry.rowsPerBank = 4096;
        p.profileIntervalCpu = 60'000;
        p.protocolCheck = true;
        p.controller.refresh.mode = mode;
        p = applyScheme(p, schemeByName(name));

        auto s0 = makeSource("stream", 25, 1, 128, 0.0, 11);
        auto s1 = makeSource("random", 20, 6, 2, 0.6, 12);
        auto s2 = makeSource("mixed", 10, 3, 16, 0.2, 13);
        auto s3 = makeSource("light", 2, 2, 32, 0.1, 14);
        std::vector<TraceSource *> raw = {s0.get(), s1.get(), s2.get(),
                                          s3.get()};
        System sys(p, raw);
        sys.runAndMeasure(60'000, 200'000);

        ProtocolChecker *pc = sys.protocolChecker();
        ASSERT_NE(pc, nullptr) << name;
        pc->finalize(sys.memCycle());
        std::ostringstream rep;
        pc->report(rep);
        EXPECT_EQ(pc->violations(), 0u) << name << ": " << rep.str();
        EXPECT_GT(pc->commandsChecked(), 1000u) << name;
        if (std::string(name) == "DBP" || std::string(name) == "UBP") {
            EXPECT_GT(pc->statAllocations.value(), 0u) << name;
        }
    }
}

TEST(ProtocolCheckExperiment, AllStandardSchemesPassFailFast)
{
    // Two legs: the default all-bank engine and the refresh-aware
    // per-bank (DARP-style) engine, so every scheme runs fail-fast
    // clean under both refresh granularities.
    struct Leg { RefreshMode mode; bool aware; };
    for (Leg leg : {Leg{RefreshMode::AllBank, false},
                    Leg{RefreshMode::PerBank, true}}) {
        RunConfig rc;
        rc.base.geometry.rowsPerBank = 4096;
        rc.base.profileIntervalCpu = 60'000;
        rc.base.protocolCheck = true;
        rc.base.checkFailFast = true; // any violation panics the test.
        rc.base.controller.refresh.mode = leg.mode;
        rc.base.controller.refresh.aware = leg.aware;
        rc.warmupCpu = 60'000;
        rc.measureCpu = 150'000;

        ExperimentRunner runner(rc);
        WorkloadMix mix{"check",
                        {"libquantum", "omnetpp", "gcc", "mcf"}};
        for (const Scheme &s : standardSchemes()) {
            MixResult r = runner.runMix(mix, s);
            EXPECT_GT(r.metrics.weightedSpeedup, 0.0)
                << s.name << " refresh=" << refreshModeName(leg.mode);
        }
    }
}

} // namespace
} // namespace dbpsim
