/**
 * @file
 * Refresh-engine tests: debt accounting against the rank schedule, the
 * exactly-8 postpone edge of the aware engine, per-bank round-robin
 * rotation, the blocking scope of REFpb, DARP-style pull-in and
 * demand-avoiding reorder, the issue-to-issue gap bound after a
 * pull-in burst, config plumbing, and campaign determinism of the
 * refresh-mode sweep. Runs under TSan in scripts/check.sh
 * (ctest -R 'Refresh|ProtocolCheck').
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "dram/refresh.hh"
#include "sim/campaign.hh"
#include "sim/params.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 1024;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

/** Demand view with a switchable global state and one hot bank. */
class FakeDemand : public RefreshDemandView
{
  public:
    bool everywhere = false;   ///< demand on every bank.
    int hotRank = -1;          ///< single bank with demand (if >= 0).
    int hotBank = -1;

    bool hasBankDemand(unsigned rank, unsigned bank) const override
    {
        if (everywhere)
            return true;
        return static_cast<int>(rank) == hotRank &&
               static_cast<int>(bank) == hotBank;
    }

    bool hasRankDemand(unsigned rank) const override
    {
        if (everywhere)
            return true;
        return static_cast<int>(rank) == hotRank;
    }
};

// ---- debt accounting ------------------------------------------------

TEST(Refresh, AllBankDebtTracksSchedule)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::AllBank;
    RefreshEngine eng(ch, nullptr, p);

    // Rank 0 of 2 is first due at tREFI / 2; debt grows by one per
    // missed tREFI after that.
    Cycle due = t.tREFI / 2;
    EXPECT_EQ(eng.debt(0, 0), 0u);
    EXPECT_EQ(eng.debt(0, due - 1), 0u);
    EXPECT_EQ(eng.debt(0, due), 1u);
    EXPECT_EQ(eng.debt(0, due + t.tREFI - 1), 1u);
    EXPECT_EQ(eng.debt(0, due + t.tREFI), 2u);
    EXPECT_EQ(eng.debt(0, due + 5 * t.tREFI), 6u);

    // Issuing a REF retires exactly one unit of debt.
    ch.issue(DramCmd::Refresh, 0, 0, 0, due + 5 * t.tREFI);
    EXPECT_EQ(eng.debt(0, due + 5 * t.tREFI), 5u);
}

TEST(Refresh, BankDebtTracksPerBankSchedule)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    RefreshEngine eng(ch, nullptr, p);

    // Per-bank slots are staggered across the whole channel: bank b of
    // rank r is first due at tREFI * (r*banks + b + 1) / (ranks*banks).
    Cycle due = eng.bankDueAt(0, 0);
    EXPECT_EQ(due, t.tREFI * 1 / 16);
    EXPECT_EQ(eng.bankDueAt(1, 7), t.tREFI);
    EXPECT_EQ(eng.bankDebt(0, 0, due - 1), 0u);
    EXPECT_EQ(eng.bankDebt(0, 0, due), 1u);
    EXPECT_EQ(eng.bankDebt(0, 0, due + 3 * t.tREFI), 4u);
}

// ---- the 8-deep postpone edge ---------------------------------------

TEST(Refresh, AwareAllBankForcesAtExactlyPostponeMax)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::AllBank;
    p.aware = true;
    FakeDemand demand;
    demand.everywhere = true; // never idle: no pull-in, only postpone.
    RefreshEngine eng(ch, &demand, p);

    // Rank 0's debt reaches postponeMax (8) at first-due + 7 * tREFI;
    // with demand everywhere the aware engine must postpone until
    // exactly that cycle and no further.
    Cycle force_at = t.tREFI / 2 + 7 * t.tREFI;
    for (Cycle now = 0; now < force_at; ++now) {
        eng.tick(now);
        ASSERT_EQ(ch.statRefreshes.value(), 0u) << "early REF at " << now;
    }
    // One tREFI ahead of the bound the rank is drain-boosted.
    eng.tick(force_at - t.tREFI);
    EXPECT_TRUE(eng.drainBoost(0, 3));

    EXPECT_TRUE(eng.tick(force_at));
    EXPECT_EQ(ch.statRefreshes.value(), 1u);
    EXPECT_EQ(eng.lastRefreshAt(0), force_at);
}

// ---- per-bank rotation ----------------------------------------------

TEST(Refresh, PerBankRotatesRoundRobinOnTheStagger)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    RefreshEngine eng(ch, nullptr, p);

    for (Cycle now = 0; now <= t.tREFI; ++now)
        eng.tick(now);

    // Every bank refreshed exactly once, in stagger order, each at its
    // own deadline: rank 0 banks 0..7 first, then rank 1 banks 0..7.
    EXPECT_EQ(ch.statRefreshesPb.value(), 16u);
    Cycle prev = 0;
    for (unsigned r = 0; r < 2; ++r) {
        for (unsigned b = 0; b < 8; ++b) {
            Cycle at = eng.lastRefreshAt(r, b);
            Cycle slot = t.tREFI * (r * 8 + b + 1) / 16;
            EXPECT_EQ(at, slot) << "rank " << r << " bank " << b;
            EXPECT_GT(at, prev);
            prev = at;
            // The deadline advanced to the next period.
            EXPECT_EQ(eng.bankDueAt(r, b), slot + t.tREFI);
        }
    }
}

TEST(Refresh, PerBankBlocksOnlyTheRefreshingBank)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    RefreshEngine eng(ch, nullptr, p);

    // Open rank 0 bank 0 well before its REFpb slot at tREFI/16; the
    // engine must drain exactly that bank and leave the rest alone.
    ch.issue(DramCmd::Activate, 0, 0, 5, 100);
    Cycle slot = t.tREFI / 16;
    Cycle now = 0;
    for (; now <= slot; ++now)
        eng.tick(now);

    EXPECT_TRUE(eng.blocks(0, 0));
    EXPECT_FALSE(eng.blocks(0, 1));
    EXPECT_FALSE(eng.blocks(1, 0));
    EXPECT_FALSE(ch.bank(0, 0).open) << "forced bank was not drained";

    // Run on until the REFpb lands, then check its blocking scope.
    for (; ch.statRefreshesPb.value() == 0; ++now)
        eng.tick(now);
    Cycle at = eng.lastRefreshAt(0, 0);
    EXPECT_TRUE(ch.bank(0, 0).refreshing(at + t.tRFCpb - 1));
    EXPECT_FALSE(ch.canIssue(DramCmd::Activate, 0, 0, 1,
                             at + t.tRFCpb - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 0, 1, 1,
                            at + t.tRFCpb - 1));
    EXPECT_TRUE(ch.canIssue(DramCmd::Activate, 1, 0, 1,
                            at + t.tRFCpb - 1));
}

// ---- DARP-style awareness -------------------------------------------

TEST(Refresh, AwarePullsInDuringIdle)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    p.aware = true;
    FakeDemand demand; // idle everywhere.
    RefreshEngine eng(ch, &demand, p);

    for (Cycle now = 0; now < 3000; ++now)
        eng.tick(now);

    // Long before any deadline, the idle engine banked the full 8-deep
    // pull-in credit on every bank.
    EXPECT_GE(ch.statRefreshesPb.value(), 16u * 8u);
    for (unsigned r = 0; r < 2; ++r)
        for (unsigned b = 0; b < 8; ++b)
            EXPECT_GE(eng.bankDueAt(r, b), eng.params().postponeMax *
                                               t.tREFI)
                << "rank " << r << " bank " << b;
}

TEST(Refresh, AwareReordersAwayFromDemandBanks)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    p.aware = true;
    FakeDemand demand;
    demand.hotRank = 0;
    demand.hotBank = 0; // one busy bank, everything else idle.
    RefreshEngine eng(ch, &demand, p);

    Cycle first_due = eng.bankDueAt(0, 0);
    for (Cycle now = 0; now < 3000; ++now)
        eng.tick(now);

    // The busy bank is postponed (deadline untouched) while all its
    // idle peers were pulled in.
    EXPECT_EQ(eng.bankDueAt(0, 0), first_due);
    for (unsigned r = 0; r < 2; ++r)
        for (unsigned b = 0; b < 8; ++b) {
            if (r == 0 && b == 0)
                continue;
            EXPECT_GT(eng.bankDueAt(r, b), t.tREFI);
        }

    // Once its postpone debt is exhausted the busy bank is forced
    // regardless of demand: deadline first_due, forced 7 tREFI later.
    Cycle force_at = first_due + 7 * t.tREFI;
    // dbplint:allow(cycle-literal) reason=test scenario resume point after the pull-in burst above, not a device timing
    for (Cycle now = 3000; now <= force_at; ++now)
        eng.tick(now);
    EXPECT_EQ(eng.lastRefreshAt(0, 0), force_at);
    EXPECT_GT(eng.bankDueAt(0, 0), first_due);
}

TEST(Refresh, GapBoundHoldsAfterPullInBurst)
{
    // Regression: pulling in the full credit and then postponing by
    // schedule debt alone would stretch the issue-to-issue gap toward
    // 16 tREFI; the device (and the protocol checker) bound it at
    // (postponeMax + 1) * tREFI, so the engine must also force on
    // elapsed time since the last REFpb.
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::PerBank;
    p.aware = true;
    FakeDemand demand; // idle: burst of pull-ins first...
    RefreshEngine eng(ch, &demand, p);

    const Cycle bound = (p.postponeMax + 1) * t.tREFI;
    for (Cycle now = 0; now < 20 * t.tREFI; ++now) {
        if (now == 2000)
            demand.everywhere = true; // ...then demand forever.
        eng.tick(now);
        for (unsigned r = 0; r < 2; ++r)
            for (unsigned b = 0; b < 8; ++b)
                ASSERT_LE(now - eng.lastRefreshAt(r, b), bound)
                    << "rank " << r << " bank " << b << " at " << now;
    }
}

// ---- modes and config plumbing --------------------------------------

TEST(Refresh, NoneModeNeverRefreshes)
{
    DramTiming t = ddr3_1600();
    DramChannel ch(geo(), t, 0);
    RefreshParams p;
    p.mode = RefreshMode::None;
    RefreshEngine eng(ch, nullptr, p);

    for (Cycle now = 0; now < 3 * t.tREFI; ++now) {
        EXPECT_FALSE(eng.tick(now));
        ASSERT_FALSE(eng.blocks(0, 0));
    }
    EXPECT_EQ(ch.statRefreshes.value(), 0u);
    EXPECT_EQ(ch.statRefreshesPb.value(), 0u);
}

TEST(Refresh, ModeNamesRoundTrip)
{
    for (RefreshMode m : {RefreshMode::None, RefreshMode::AllBank,
                          RefreshMode::PerBank})
        EXPECT_EQ(refreshModeByName(refreshModeName(m)), m);
    EXPECT_EQ(refreshModeByName("all-bank"), RefreshMode::AllBank);
    EXPECT_EQ(refreshModeByName("per-bank"), RefreshMode::PerBank);
}

TEST(Refresh, ConfigKeysReachTheEngineParams)
{
    SystemParams params;
    EXPECT_EQ(params.controller.refresh.mode, RefreshMode::AllBank);
    EXPECT_FALSE(params.controller.refresh.aware);

    Config cfg;
    cfg.parseToken("refresh=darp");
    cfg.parseToken("refresh_postpone=4");
    cfg.parseToken("trefi=5000");
    cfg.parseToken("trfc=100");
    cfg.parseToken("trfc_pb=50");
    params.applyConfig(cfg);

    EXPECT_EQ(params.controller.refresh.mode, RefreshMode::PerBank);
    EXPECT_TRUE(params.controller.refresh.aware);
    EXPECT_EQ(params.controller.refresh.postponeMax, 4u);
    DramTiming t = params.timing();
    EXPECT_EQ(t.tREFI, 5000u);
    EXPECT_EQ(t.tRFC, 100u);
    EXPECT_EQ(t.tRFCpb, 50u);
    EXPECT_NE(params.summary().find("refresh=perbank+aware"),
              std::string::npos);

    Config off;
    off.parseToken("refresh=none");
    params.applyConfig(off);
    EXPECT_EQ(params.controller.refresh.mode, RefreshMode::None);
}

TEST(Refresh, SignatureSeparatesRefreshConfigs)
{
    RunConfig a;
    RunConfig b;
    b.base.controller.refresh.mode = RefreshMode::PerBank;
    EXPECT_NE(runConfigSignature(a), runConfigSignature(b));

    RunConfig c;
    c.base.controller.refresh.aware = true;
    EXPECT_NE(runConfigSignature(a), runConfigSignature(c));

    RunConfig d;
    d.base.trfcPbOverride = 32;
    EXPECT_NE(runConfigSignature(a), runConfigSignature(d));
}

// ---- campaign determinism across --jobs widths ----------------------

/** A fig20-shaped miniature: refresh modes x schemes on tiny mixes. */
CampaignSpec
tinyRefreshSpec()
{
    std::vector<WorkloadMix> mixes = {{"T1", {"mcf", "gcc"}}};
    std::vector<Scheme> schemes = {schemeByName("FR-FCFS"),
                                   schemeByName("DBP")};
    CampaignSpec spec;
    spec.name = "tiny-refresh";
    spec.title = "refresh sweep determinism fixture";
    spec.plan = [mixes, schemes](CampaignPlan &plan,
                                 CampaignContext &ctx) {
        struct ModePoint
        {
            const char *name;
            RefreshMode mode;
            bool aware;
        };
        for (const ModePoint &m :
             {ModePoint{"all-bank", RefreshMode::AllBank, false},
              ModePoint{"per-bank", RefreshMode::PerBank, false},
              ModePoint{"darp", RefreshMode::PerBank, true}}) {
            RunConfig cfg = ctx.config();
            cfg.base.controller.refresh.mode = m.mode;
            cfg.base.controller.refresh.aware = m.aware;
            cfg.base.protocolCheck = true;
            planMixSweep(plan, cfg, std::string(m.name) + "/", mixes,
                         schemes);
        }
    };
    spec.render = [](CampaignRun &, std::ostream &) {};
    return spec;
}

TEST(RefreshCampaign, ParallelSweepIsBitIdenticalToSerial)
{
    RunConfig rc;
    rc.base.geometry.rowsPerBank = 4096;
    rc.base.profileIntervalCpu = 60'000;
    rc.warmupCpu = 100'000;
    rc.measureCpu = 250'000;
    CampaignSpec spec = tinyRefreshSpec();
    auto baselines = std::make_shared<AloneBaselineCache>();

    CampaignOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    std::ostringstream serial_out;
    Json ref = runCampaign(spec, rc, baselines, serial, serial_out);

    // All modes produced results, and every job came back clean.
    for (const char *key :
         {"all-bank/T1/DBP", "per-bank/T1/DBP", "darp/T1/DBP"}) {
        const Json &job = ref.at("jobs").at(key);
        EXPECT_GT(job.at("ws").asDouble(), 0.0) << key;
        EXPECT_EQ(job.at("check_violations").asUInt(), 0u) << key;
    }

    CampaignOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;
    std::ostringstream par_out;
    Json doc = runCampaign(spec, rc, baselines, parallel, par_out);
    EXPECT_EQ(doc.at("jobs").dump(), ref.at("jobs").dump());
    EXPECT_EQ(doc.at("summary").dump(), ref.at("summary").dump());
}

} // namespace
} // namespace dbpsim
