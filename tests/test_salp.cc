/**
 * @file
 * Subarray-subsystem regression tests at the campaign layer:
 *
 *  1. The seed-identity gate — with salp=none the simulator must be
 *     bit-identical to the pre-subarray tree. The fig4 micro run
 *     (warmup=500k, measure=1M, seed=42) is the reference: its result
 *     digest was recorded before the subarray subsystem landed and must
 *     never move while salp stays off.
 *  2. salp=none ignores the configured subarray count entirely (the
 *     subarray state is never allocated).
 *  3. A MASA + subarray-colored DBP run completes checker-clean end to
 *     end, exercising ACT/SA_SEL/column designated-latch rules, the
 *     subarray-granular color sets, and the frame allocator under the
 *     finer colors.
 *  4. The fig21 campaign is registered for the bench driver.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>

#include "bench_common.hh"
#include "sim/baseline.hh"
#include "sim/campaign.hh"

namespace dbpsim {
namespace {

/** One-mix miniature campaign over @p schemes at tiny run length. */
Json
runTinyCampaign(const RunConfig &rc, const std::vector<Scheme> &schemes)
{
    std::vector<WorkloadMix> mixes = {{"S1", {"mcf", "gcc"}}};
    CampaignSpec spec;
    spec.name = "salp-tiny";
    spec.title = "subarray regression fixture";
    spec.plan = [mixes, schemes](CampaignPlan &plan, CampaignContext &) {
        planMixSweep(plan, mixes, schemes);
    };
    spec.render = [](CampaignRun &, std::ostream &) {};

    auto baselines = std::make_shared<AloneBaselineCache>();
    CampaignOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    std::ostringstream os;
    return runCampaign(spec, rc, baselines, opts, os);
}

RunConfig
tinyConfig()
{
    RunConfig rc;
    rc.base.geometry.rowsPerBank = 4096;
    rc.base.profileIntervalCpu = 60'000;
    rc.warmupCpu = 100'000;
    rc.measureCpu = 250'000;
    return rc;
}

TEST(Salp, Fig21CampaignIsRegistered)
{
    const CampaignSpec *spec = findCampaign("fig21");
    ASSERT_NE(spec, nullptr);
    EXPECT_NE(spec->title.find("SALP"), std::string::npos);
}

TEST(Salp, NoneModeIgnoresSubarrayCount)
{
    // With salp=none the subarray state is never allocated, so the
    // configured subarrays-per-bank must not perturb a single cycle.
    std::vector<Scheme> schemes = {schemeByName("DBP")};
    RunConfig one = tinyConfig();
    one.base.geometry.subarraysPerBank = 1;
    RunConfig eight = tinyConfig();
    eight.base.geometry.subarraysPerBank = 8;

    Json a = runTinyCampaign(one, schemes);
    Json b = runTinyCampaign(eight, schemes);
    EXPECT_EQ(a.at("jobs").dump(), b.at("jobs").dump());
}

TEST(Salp, MasaColoredDbpRunsCheckerClean)
{
    RunConfig rc = tinyConfig();
    rc.base.controller.salp = SalpMode::Masa;
    rc.base.geometry.subarraysPerBank = 4;
    rc.base.subarrayColoring = true;
    rc.base.protocolCheck = true;

    Json doc = runTinyCampaign(rc, {schemeByName("UBP"),
                                    schemeByName("DBP")});
    for (const char *scheme : {"UBP", "DBP"}) {
        const Json &job = doc.at("jobs").at(std::string("S1/") + scheme);
        EXPECT_EQ(job.at("check_violations").asInt(), 0) << scheme;
        EXPECT_GT(job.at("ws").asDouble(), 0.0) << scheme;
    }
}

TEST(Salp, SeedDigestUnchangedWithSalpDisabled)
{
    // Replicates `dbpsim_bench fig4 warmup=500000 measure=1000000
    // seed=42` exactly; the expected value is that run's printed
    // "result digest" from before the subarray subsystem existed.
    // jobs/summary are byte-identical at any worker count, so the
    // digest is stable under parallel execution.
    Config cfg;
    cfg.parseToken("warmup=500000");
    cfg.parseToken("measure=1000000");
    cfg.parseToken("seed=42");
    RunConfig rc = bench::makeRunConfig(cfg);

    const CampaignSpec *fig4 = findCampaign("fig4");
    ASSERT_NE(fig4, nullptr);
    auto baselines = std::make_shared<AloneBaselineCache>();
    CampaignOptions opts;
    opts.jobs = 0; // hardware concurrency.
    opts.progress = false;
    std::ostringstream os;
    Json doc = runCampaign(*fig4, rc, baselines, opts, os);

    std::uint64_t digest = hashString(doc.at("jobs").dump() +
                                      doc.at("summary").dump());
    EXPECT_EQ(digest, 0x2c71d23d3f220580ULL)
        << "salp=none is no longer bit-identical to the seed simulator";
}

} // namespace
} // namespace dbpsim
