/**
 * @file
 * Scheduler-policy tests: priority orders of FCFS / FR-FCFS, TCM's
 * clustering + ranking + shuffle rotation, ATLAS's least-attained-
 * service ranking, and PAR-BS batch formation and marking caps.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "mem/sched_atlas.hh"
#include "mem/sched_factory.hh"
#include "mem/sched_fcfs.hh"
#include "mem/sched_frfcfs.hh"
#include "mem/sched_parbs.hh"
#include "mem/sched_tcm.hh"

namespace dbpsim {
namespace {

DramGeometry
geo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.rowsPerBank = 256;
    g.rowBytes = 8192;
    g.lineBytes = 64;
    g.pageBytes = 4096;
    return g;
}

MemRequest
req(ThreadId tid, unsigned bank, std::uint64_t row, Cycle enq,
    std::uint64_t id)
{
    MemRequest r;
    r.tid = tid;
    r.coord.channel = 0;
    r.coord.rank = 0;
    r.coord.bank = bank;
    r.coord.row = row;
    r.enqueueCycle = enq;
    r.id = id;
    return r;
}

ThreadMemProfile
profile(double mpki, double rbhr, double blp, std::uint64_t reqs)
{
    ThreadMemProfile p;
    p.mpki = mpki;
    p.rowBufferHitRate = rbhr;
    p.blp = blp;
    p.requests = reqs;
    p.instructions = 1'000'000;
    return p;
}

class SchedFixture : public ::testing::Test
{
  protected:
    SchedFixture() : channel_(geo(), ddr3_1600(), 0) {}

    /** Open @p row in @p bank so rowHit() sees it. */
    void
    openRow(unsigned bank, std::uint64_t row)
    {
        channel_.issue(DramCmd::Activate, 0, bank, row, now_);
        now_ += ddr3_1600().tRRD;
    }

    SchedContext
    ctx()
    {
        return SchedContext{channel_, now_};
    }

    DramChannel channel_;
    Cycle now_ = 0;
};

TEST_F(SchedFixture, FcfsStrictlyOldestFirst)
{
    FcfsScheduler s;
    MemRequest young = req(0, 0, 1, 100, 1);
    MemRequest old = req(1, 1, 2, 50, 0);
    openRow(0, 1); // row hit for 'young' must not matter.
    EXPECT_TRUE(s.higherPriority(old, young, ctx()));
    EXPECT_FALSE(s.higherPriority(young, old, ctx()));
}

TEST_F(SchedFixture, FrFcfsPrefersRowHits)
{
    FrFcfsScheduler s;
    MemRequest hit = req(0, 0, 1, 100, 1);
    MemRequest miss = req(1, 0, 2, 50, 0);
    openRow(0, 1);
    EXPECT_TRUE(s.higherPriority(hit, miss, ctx()));
    EXPECT_FALSE(s.higherPriority(miss, hit, ctx()));
}

TEST_F(SchedFixture, FrFcfsAgeBreaksTies)
{
    FrFcfsScheduler s;
    MemRequest a = req(0, 2, 7, 10, 0);
    MemRequest b = req(1, 3, 8, 20, 1);
    EXPECT_TRUE(s.higherPriority(a, b, ctx()));

    // Same cycle: id breaks the tie deterministically.
    MemRequest c = req(0, 2, 7, 10, 0);
    MemRequest d = req(1, 3, 8, 10, 1);
    EXPECT_TRUE(s.higherPriority(c, d, ctx()));
    EXPECT_FALSE(s.higherPriority(d, c, ctx()));
}

TEST_F(SchedFixture, TcmClustersByIntensity)
{
    TcmScheduler s(4);
    // Threads 0,1 nearly idle; threads 2,3 heavy.
    std::vector<ThreadMemProfile> profiles = {
        profile(0.1, 0.5, 1.0, 10),
        profile(0.5, 0.5, 1.0, 40),
        profile(20.0, 0.9, 1.0, 20000),
        profile(15.0, 0.2, 6.0, 15000),
    };
    s.onIntervalProfiles(profiles);
    EXPECT_TRUE(s.inLatencyCluster(0));
    EXPECT_TRUE(s.inLatencyCluster(1));
    EXPECT_FALSE(s.inLatencyCluster(2));
    EXPECT_FALSE(s.inLatencyCluster(3));

    // Latency-cluster requests outrank bandwidth-cluster requests.
    MemRequest light = req(0, 0, 1, 100, 1);
    MemRequest heavy = req(2, 1, 2, 50, 0);
    EXPECT_TRUE(s.higherPriority(light, heavy, ctx()));
}

TEST_F(SchedFixture, TcmLatencyClusterOrderedByMpki)
{
    TcmScheduler s(4);
    std::vector<ThreadMemProfile> profiles = {
        profile(0.5, 0.5, 1.0, 40),
        profile(0.1, 0.5, 1.0, 10),
        profile(20.0, 0.9, 1.0, 20000),
        profile(15.0, 0.2, 6.0, 15000),
    };
    s.onIntervalProfiles(profiles);
    // Thread 1 (lower MPKI) outranks thread 0 inside the cluster.
    EXPECT_GT(s.rankOf(1), s.rankOf(0));
}

TEST_F(SchedFixture, TcmNicenessRanksBwCluster)
{
    TcmScheduler s(4, TcmParams{0.01, 800});
    // All heavy (tiny cluster threshold): thread 2 has high BLP and
    // low RBL (nice); thread 3 has low BLP and high RBL (not nice).
    std::vector<ThreadMemProfile> profiles = {
        profile(10.0, 0.5, 3.0, 10000),
        profile(11.0, 0.5, 3.0, 11000),
        profile(12.0, 0.1, 8.0, 12000),
        profile(12.0, 0.95, 1.0, 12000),
    };
    s.onIntervalProfiles(profiles);
    EXPECT_GT(s.rankOf(2), s.rankOf(3));
}

TEST_F(SchedFixture, TcmShuffleRotatesBwRanks)
{
    TcmScheduler s(3, TcmParams{0.01, 10});
    std::vector<ThreadMemProfile> profiles = {
        profile(10.0, 0.5, 5.0, 10000),
        profile(11.0, 0.5, 3.0, 11000),
        profile(12.0, 0.5, 1.0, 12000),
    };
    s.onIntervalProfiles(profiles);
    int top_before = -1;
    for (int t = 0; t < 3; ++t)
        if (top_before < 0 || s.rankOf(t) > s.rankOf(top_before))
            top_before = t;
    s.tick(10); // shuffle boundary.
    int top_after = -1;
    for (int t = 0; t < 3; ++t)
        if (top_after < 0 || s.rankOf(t) > s.rankOf(top_after))
            top_after = t;
    EXPECT_NE(top_before, top_after);
}

TEST_F(SchedFixture, AtlasRanksLeastAttainedServiceFirst)
{
    AtlasScheduler s(2, 4, AtlasParams{100, 0.0});
    // Thread 0 receives lots of service, thread 1 little.
    for (int i = 0; i < 10; ++i)
        s.onComplete(req(0, 0, 1, 0, 0), 0);
    s.onComplete(req(1, 0, 1, 0, 0), 0);
    s.tick(100); // quantum boundary.
    EXPECT_GT(s.attainedService(0), s.attainedService(1));

    MemRequest starved = req(1, 0, 1, 100, 1);
    MemRequest served = req(0, 1, 2, 50, 0);
    EXPECT_TRUE(s.higherPriority(starved, served, ctx()));
}

TEST_F(SchedFixture, AtlasSmoothsAcrossQuanta)
{
    AtlasScheduler s(1, 4, AtlasParams{100, 0.5});
    s.onComplete(req(0, 0, 1, 0, 0), 0); // 4 cycles of service.
    s.tick(100);
    double first = s.attainedService(0);
    EXPECT_NEAR(first, 2.0, 1e-9); // (1-alpha) * 4.
    s.tick(200); // empty quantum decays history.
    EXPECT_NEAR(s.attainedService(0), 1.0, 1e-9);
}

class ParbsFixture : public SchedFixture, public QueueView
{
  public:
    void
    forEachPendingRead(
        const std::function<void(MemRequest &)> &fn) override
    {
        for (auto &r : queue_)
            fn(r);
    }

  protected:
    std::vector<MemRequest> queue_;
};

TEST_F(ParbsFixture, BatchMarksUpToCapPerThreadBank)
{
    ParbsScheduler s(2, 8, ParbsParams{2});
    s.attachQueueView(this);

    // Thread 0: 4 requests to bank 0; thread 1: 1 request to bank 1.
    for (int i = 0; i < 4; ++i)
        queue_.push_back(req(0, 0, 1, static_cast<Cycle>(i), i));
    queue_.push_back(req(1, 1, 1, 10, 99));

    s.tick(0); // forms the batch.
    EXPECT_EQ(s.batchesFormed(), 1u);
    EXPECT_EQ(s.markedRemaining(), 3u); // 2 (cap) + 1.

    // The two oldest of thread 0 are marked, the rest not.
    EXPECT_TRUE(queue_[0].marked);
    EXPECT_TRUE(queue_[1].marked);
    EXPECT_FALSE(queue_[2].marked);
    EXPECT_FALSE(queue_[3].marked);
    EXPECT_TRUE(queue_[4].marked);
}

TEST_F(ParbsFixture, MarkedBeatsUnmarked)
{
    ParbsScheduler s(2, 8);
    s.attachQueueView(this);
    queue_.push_back(req(0, 0, 1, 0, 0));
    s.tick(0);

    MemRequest unmarked = req(1, 1, 1, 0, 5);
    EXPECT_TRUE(s.higherPriority(queue_[0], unmarked, ctx()));
}

TEST_F(ParbsFixture, ShorterJobRanksHigher)
{
    ParbsScheduler s(2, 8, ParbsParams{5});
    s.attachQueueView(this);
    // Thread 0: 5 requests on one bank (max load 5). Thread 1: 2
    // requests spread on two banks (max load 1 each).
    for (int i = 0; i < 5; ++i)
        queue_.push_back(req(0, 0, 1, static_cast<Cycle>(i), i));
    queue_.push_back(req(1, 1, 1, 0, 10));
    queue_.push_back(req(1, 2, 1, 0, 11));
    s.tick(0);

    // Both marked; thread 1 (shorter job) wins.
    EXPECT_TRUE(s.higherPriority(queue_[5], queue_[0], ctx()));
}

TEST_F(ParbsFixture, NewBatchOnlyWhenDrained)
{
    ParbsScheduler s(1, 8, ParbsParams{5});
    s.attachQueueView(this);
    queue_.push_back(req(0, 0, 1, 0, 0));
    s.tick(0);
    EXPECT_EQ(s.batchesFormed(), 1u);
    s.tick(1); // marked requests remain: no new batch.
    EXPECT_EQ(s.batchesFormed(), 1u);

    s.onDequeue(queue_[0]);
    queue_.clear();
    queue_.push_back(req(0, 1, 1, 5, 1));
    s.tick(2);
    EXPECT_EQ(s.batchesFormed(), 2u);
}

TEST(SchedFactory, BuildsEveryName)
{
    SchedulerInit init;
    init.numThreads = 4;
    for (const auto &name : schedulerNames()) {
        auto s = makeScheduler(name, init);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->name(), name);
    }
}

TEST(SchedFactory, RejectsUnknown)
{
    SchedulerInit init;
    EXPECT_EXIT({ makeScheduler("bogus", init); },
                ::testing::ExitedWithCode(1), "unknown scheduler");
}

} // namespace
} // namespace dbpsim
