/**
 * @file
 * End-to-end system tests: determinism, forward progress for every
 * (scheduler x partition) combination, partition enforcement through
 * the whole stack, the headline interference properties (UBP isolates
 * a victim's row locality; DBP grants banks by demand), cache-enabled
 * operation, and parameter plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/system.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace dbpsim {
namespace {

/** Small geometry for fast tests. */
SystemParams
smallParams(unsigned cores)
{
    SystemParams p;
    p.numCores = cores;
    p.geometry.rowsPerBank = 4096; // 1 GiB machine; plenty for tests.
    p.profileIntervalCpu = 200'000;
    return p;
}

/** Synthetic source with given dials. */
std::unique_ptr<SyntheticSource>
makeSource(const std::string &name, double mpki, unsigned streams,
           double seq_run, double random_frac, std::uint64_t pages,
           std::uint64_t seed)
{
    SyntheticParams sp;
    sp.name = name;
    sp.seed = seed;
    sp.phases[0].mpki = mpki;
    sp.phases[0].streams = streams;
    sp.phases[0].seqRunLines = seq_run;
    sp.phases[0].randomFrac = random_frac;
    sp.phases[0].writeFrac = 0.25;
    sp.phases[0].footprintPages = pages;
    return std::make_unique<SyntheticSource>(sp);
}

/** A streaming app and an irregular app. */
struct Pair
{
    std::unique_ptr<SyntheticSource> a;
    std::unique_ptr<SyntheticSource> b;
    std::vector<TraceSource *> raw;

    Pair()
    {
        a = makeSource("stream", 25, 1, 128, 0.0, 2048, 1);
        b = makeSource("random", 20, 6, 2, 0.6, 8192, 2);
        raw = {a.get(), b.get()};
    }
};

TEST(System, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        Pair p;
        System sys(smallParams(2), p.raw);
        return sys.runAndMeasure(100'000, 400'000);
    };
    auto r1 = run();
    auto r2 = run();
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i)
        EXPECT_DOUBLE_EQ(r1[i], r2[i]);
}

TEST(System, EveryCoreMakesProgress)
{
    Pair p;
    System sys(smallParams(2), p.raw);
    auto ipc = sys.runAndMeasure(100'000, 400'000);
    for (double v : ipc) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 4.0); // issue width.
    }
}

class SchedulerPartitionMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(SchedulerPartitionMatrix, RunsAndProgresses)
{
    auto [sched, part] = GetParam();
    Pair p;
    SystemParams params = smallParams(2);
    params.scheduler = sched;
    params.partition = part;
    System sys(params, p.raw);
    auto ipc = sys.runAndMeasure(100'000, 300'000);
    for (double v : ipc)
        EXPECT_GT(v, 0.0) << sched << "+" << part;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchedulerPartitionMatrix,
    ::testing::Combine(
        ::testing::Values("fcfs", "fr-fcfs", "par-bs", "atlas", "tcm",
                          "bliss"),
        ::testing::Values("none", "ubp", "dbp", "mcp", "dbp-mcp")));

TEST(System, DegenerateSingleBankMachineRuns)
{
    // 1 core on a 1-channel x 1-rank x 1-bank machine: the extreme
    // corner every timing constraint funnels through.
    auto src = makeSource("one", 20, 2, 16, 0.2, 256, 1);
    std::vector<TraceSource *> raw{src.get()};
    SystemParams p;
    p.numCores = 1;
    p.geometry.channels = 1;
    p.geometry.ranksPerChannel = 1;
    p.geometry.banksPerRank = 1;
    p.geometry.rowsPerBank = 65536;
    p.profileIntervalCpu = 100'000;
    System sys(p, raw);
    auto ipc = sys.runAndMeasure(100'000, 200'000);
    EXPECT_GT(ipc[0], 0.0);
}

TEST(System, MoreThreadsThanBanksStillPartitions)
{
    // 4 threads, 2 banks: partitioning degenerates to sharing but
    // must neither crash nor starve anyone.
    std::vector<std::unique_ptr<SyntheticSource>> owned;
    std::vector<TraceSource *> raw;
    for (int i = 0; i < 4; ++i) {
        owned.push_back(makeSource("t" + std::to_string(i), 15, 2, 8,
                                   0.3, 512, 10 + i));
        raw.push_back(owned.back().get());
    }
    SystemParams p;
    p.numCores = 4;
    p.geometry.channels = 1;
    p.geometry.ranksPerChannel = 1;
    p.geometry.banksPerRank = 2;
    p.geometry.rowsPerBank = 65536;
    p.profileIntervalCpu = 100'000;
    p.partition = "dbp";
    System sys(p, raw);
    auto ipc = sys.runAndMeasure(150'000, 250'000);
    for (double v : ipc)
        EXPECT_GT(v, 0.0);
}

TEST(System, TinyWindowInOrderCoreRuns)
{
    // windowSize 1 degenerates the core to strictly in-order,
    // blocking loads — the opposite corner from the default OoO-ish
    // window.
    auto src = makeSource("inorder", 20, 2, 16, 0.2, 512, 1);
    std::vector<TraceSource *> raw{src.get()};
    SystemParams p = smallParams(1);
    p.core.windowSize = 1;
    p.core.mshrs = 1;
    p.core.issueWidth = 1;
    System sys(p, raw);
    auto ipc = sys.runAndMeasure(100'000, 200'000);
    EXPECT_GT(ipc[0], 0.0);
    EXPECT_LE(ipc[0], 1.0);
}

TEST(System, PartitionEnforcedEndToEnd)
{
    Pair p;
    SystemParams params = smallParams(2);
    params.partition = "ubp";
    System sys(params, p.raw);
    sys.run(500'000);

    // Every mapped page of every thread conforms to its color set.
    EXPECT_EQ(sys.osMemory().nonconformingPages(0), 0u);
    EXPECT_EQ(sys.osMemory().nonconformingPages(1), 0u);

    // And the color sets are disjoint.
    const auto &s0 = sys.osMemory().colorSet(0);
    const auto &s1 = sys.osMemory().colorSet(1);
    for (unsigned c : s0)
        EXPECT_EQ(std::count(s1.begin(), s1.end(), c), 0);
}

TEST(System, UbpIsolatesVictimRowLocality)
{
    // A streaming victim co-runs with three row-buffer-hostile
    // attackers on a bank-starved machine (4 threads, 8 banks).
    // Unpartitioned, the attackers destroy the victim's row hits;
    // under UBP the victim's row-hit rate recovers most of its alone
    // value. This is the paper's core motivation (claim C4/fig1).
    auto run_with = [](const std::string &part) {
        auto victim = makeSource("stream", 25, 1, 128, 0.0, 2048, 1);
        auto a1 = makeSource("rand1", 20, 6, 2, 0.6, 8192, 2);
        auto a2 = makeSource("rand2", 20, 6, 2, 0.6, 8192, 3);
        auto a3 = makeSource("rand3", 20, 6, 2, 0.6, 8192, 4);
        std::vector<TraceSource *> raw{victim.get(), a1.get(),
                                       a2.get(), a3.get()};
        SystemParams params = smallParams(4);
        params.geometry.channels = 1;
        params.geometry.ranksPerChannel = 1;
        params.geometry.banksPerRank = 8;
        params.geometry.rowsPerBank = 16384;
        params.partition = part;
        System sys(params, raw);
        sys.run(600'000);
        return sys.threadRowHitRate(0); // the streaming victim.
    };
    double shared_hit = run_with("none");
    double ubp_hit = run_with("ubp");
    EXPECT_GT(ubp_hit, shared_hit + 0.05)
        << "bank partitioning failed to protect row locality";
    EXPECT_GT(ubp_hit, 0.6);
}

TEST(System, DbpGrantsBanksByDemand)
{
    Pair p;
    SystemParams params = smallParams(2);
    params.partition = "dbp";
    System sys(params, p.raw);
    sys.run(800'000); // several profiling intervals.

    // The high-BLP irregular thread (1) must own more banks than the
    // single-stream streaming thread (0).
    std::size_t banks0 = sys.osMemory().colorSet(0).size();
    std::size_t banks1 = sys.osMemory().colorSet(1).size();
    EXPECT_GT(banks1, banks0);
}

TEST(System, DbpMeasuredProfilesAreSane)
{
    Pair p;
    SystemParams params = smallParams(2);
    params.partition = "dbp";
    System sys(params, p.raw);
    sys.run(500'000);

    const auto &profiles = sys.lastIntervalProfiles();
    ASSERT_EQ(profiles.size(), 2u);
    // Streaming thread: high locality, low BLP. Irregular: opposite.
    EXPECT_GT(profiles[0].rowBufferHitRate,
              profiles[1].rowBufferHitRate + 0.2);
    EXPECT_GT(profiles[1].blp, profiles[0].blp);
    EXPECT_GT(profiles[0].mpki, 1.0);
    EXPECT_GT(profiles[1].mpki, 1.0);
}

TEST(System, LightThreadsShareUnderDbp)
{
    auto heavy = makeSource("heavy", 25, 4, 8, 0.3, 4096, 3);
    auto light1 = makeSource("l1", 0.2, 1, 16, 0.1, 256, 4);
    auto light2 = makeSource("l2", 0.3, 1, 16, 0.1, 256, 5);
    std::vector<TraceSource *> raw{heavy.get(), light1.get(),
                                   light2.get()};
    SystemParams params = smallParams(3);
    params.partition = "dbp";
    System sys(params, raw);
    sys.run(800'000);

    // The two light threads share one (small) color set.
    EXPECT_EQ(sys.osMemory().colorSet(1), sys.osMemory().colorSet(2));
    EXPECT_LT(sys.osMemory().colorSet(1).size(),
              sys.osMemory().colorSet(0).size());
}

TEST(System, CacheEnabledSystemRuns)
{
    Pair p;
    SystemParams params = smallParams(2);
    params.cacheEnabled = true;
    params.cache.sizeBytes = 64 * 1024;
    System sys(params, p.raw);
    auto ipc = sys.runAndMeasure(100'000, 300'000);
    for (double v : ipc)
        EXPECT_GT(v, 0.0);
}

TEST(System, CacheReducesDramTraffic)
{
    auto traffic = [](bool cached) {
        // Small footprint: highly cacheable.
        auto s = makeSource("tiny", 30, 2, 16, 0.1, 64, 9);
        std::vector<TraceSource *> raw{s.get()};
        SystemParams params = smallParams(1);
        params.cacheEnabled = cached;
        params.cache.sizeBytes = 512 * 1024;
        System sys(params, raw);
        sys.run(400'000);
        std::uint64_t reads = 0;
        for (unsigned c = 0; c < sys.numControllers(); ++c)
            reads += sys.controllerAt(c).statReadsEnqueued.value();
        return reads;
    };
    EXPECT_LT(traffic(true), traffic(false) / 4);
}

TEST(System, WritesReachDram)
{
    Pair p;
    System sys(smallParams(2), p.raw);
    sys.run(400'000);
    std::uint64_t writes = 0;
    for (unsigned c = 0; c < sys.numControllers(); ++c)
        writes += sys.controllerAt(c).channel().statWrites.value();
    EXPECT_GT(writes, 0u);
}

TEST(System, RefreshesOccurOnLongRuns)
{
    Pair p;
    System sys(smallParams(2), p.raw);
    // 4 CPU cycles per bus cycle; tREFI = 6240 bus cycles.
    sys.run(4 * 2 * 7000);
    std::uint64_t refreshes = 0;
    for (unsigned c = 0; c < sys.numControllers(); ++c)
        refreshes += sys.controllerAt(c).channel().statRefreshes.value();
    EXPECT_GT(refreshes, 0u);
}

TEST(System, MismatchedSourcesFatal)
{
    Pair p;
    SystemParams params = smallParams(3); // 3 cores, 2 sources.
    EXPECT_EXIT({ System sys(params, p.raw); },
                ::testing::ExitedWithCode(1), "trace sources");
}

TEST(System, SpecMixEndToEnd)
{
    auto mcf = makeSpecSource("mcf", 1);
    auto libq = makeSpecSource("libquantum", 2);
    auto gcc = makeSpecSource("gcc", 3);
    auto povray = makeSpecSource("povray", 4);
    std::vector<TraceSource *> raw{mcf.get(), libq.get(), gcc.get(),
                                   povray.get()};
    SystemParams params;
    params.numCores = 4;
    params.partition = "dbp";
    params.scheduler = "tcm";
    params.profileIntervalCpu = 250'000;
    System sys(params, raw);
    auto ipc = sys.runAndMeasure(200'000, 500'000);
    for (double v : ipc)
        EXPECT_GT(v, 0.0);
    // The compute-bound apps retire far faster than the hogs.
    EXPECT_GT(ipc[3], ipc[0]);
}

} // namespace
} // namespace dbpsim
