/**
 * @file
 * Additional end-to-end system tests: migration-mode behaviour, the
 * distinct-row-parallelism signal that gates DBP's donor decision,
 * TCM prioritization observable at the latency level, DBP-TCM
 * composition, conservation invariants, and config plumbing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace dbpsim {
namespace {

SystemParams
smallParams(unsigned cores)
{
    SystemParams p;
    p.numCores = cores;
    p.geometry.rowsPerBank = 4096;
    p.profileIntervalCpu = 200'000;
    return p;
}

std::unique_ptr<SyntheticSource>
makeSource(const std::string &name, double mpki, unsigned streams,
           double seq_run, double random_frac, std::uint64_t pages,
           std::uint64_t seed, double write_frac = 0.25)
{
    SyntheticParams sp;
    sp.name = name;
    sp.seed = seed;
    sp.phases[0].mpki = mpki;
    sp.phases[0].streams = streams;
    sp.phases[0].seqRunLines = seq_run;
    sp.phases[0].randomFrac = random_frac;
    sp.phases[0].writeFrac = write_frac;
    sp.phases[0].footprintPages = pages;
    return std::make_unique<SyntheticSource>(sp);
}

TEST(SystemDrp, SingleStreamVsMultiStreamSeparated)
{
    // One single-stream and one five-stream sequential app: both have
    // high RBHR, but distinct-row parallelism must separate them —
    // that is what keeps bwaves-like apps from donating their banks.
    auto narrow = makeSource("narrow", 25, 1, 128, 0.0, 4096, 1);
    auto wide = makeSource("wide", 25, 5, 128, 0.0, 20480, 2);
    std::vector<TraceSource *> raw{narrow.get(), wide.get()};
    System sys(smallParams(2), raw);
    sys.run(600'000);

    const auto &prof = sys.lastIntervalProfiles();
    ASSERT_EQ(prof.size(), 2u);
    EXPECT_GT(prof[0].rowBufferHitRate, 0.85);
    EXPECT_GT(prof[1].rowBufferHitRate, 0.85);
    EXPECT_LT(prof[0].rowParallelism, 2.0);
    EXPECT_GT(prof[1].rowParallelism, prof[0].rowParallelism + 0.8);
}

TEST(SystemDrp, WideStreamerIsNotDemotedByDbp)
{
    auto narrow = makeSource("narrow", 25, 1, 128, 0.0, 4096, 1);
    auto wide = makeSource("wide", 25, 5, 128, 0.0, 20480, 2);
    auto rand1 = makeSource("rand1", 15, 6, 2, 0.6, 8192, 3);
    auto rand2 = makeSource("rand2", 15, 6, 2, 0.6, 8192, 4);
    std::vector<TraceSource *> raw{narrow.get(), wide.get(),
                                   rand1.get(), rand2.get()};
    SystemParams params = smallParams(4);
    params.partition = "dbp";
    System sys(params, raw);
    sys.run(1'200'000);

    std::size_t narrow_banks = sys.osMemory().colorSet(0).size();
    std::size_t wide_banks = sys.osMemory().colorSet(1).size();
    // The single-stream app donates down to the stream floor; the
    // wide multi-stream app must keep a full-sized share.
    EXPECT_LE(narrow_banks, 2u);
    EXPECT_GE(wide_banks, 6u);
}

class MigrationModeMatrix
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MigrationModeMatrix, RunsAndConservesFrames)
{
    auto stream = makeSource("stream", 25, 1, 128, 0.0, 2048, 1);
    auto rnd = makeSource("random", 20, 6, 2, 0.6, 8192, 2);
    std::vector<TraceSource *> raw{stream.get(), rnd.get()};
    SystemParams params = smallParams(2);
    params.partition = "dbp";
    params.partMgr.migration = migrationModeByName(GetParam());
    System sys(params, raw);
    sys.run(900'000);

    // Frame conservation: allocated == mapped pages across threads.
    const FrameAllocator &alloc = sys.osMemory().allocator();
    std::uint64_t mapped = sys.osMemory().mappedPages(0) +
        sys.osMemory().mappedPages(1);
    std::uint64_t total = sys.addressMap().geometry().totalFrames();
    EXPECT_EQ(alloc.totalFree(), total - mapped)
        << "frames leaked under migration mode " << GetParam();

    // Every migrating mode actually moves pages; 'none' moves nothing.
    std::uint64_t moved =
        sys.partitionManager().statPagesMigrated.value() +
        sys.osMemory().statMigratedPages.value();
    if (std::string(GetParam()) == "none")
        EXPECT_EQ(sys.osMemory().statMigratedPages.value(), 0u);
    else
        EXPECT_GT(moved, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, MigrationModeMatrix,
                         ::testing::Values("none", "lazy", "eager",
                                           "free"));

TEST(SystemTcm, LatencyClusterGetsLowLatency)
{
    // One nearly idle thread among three hogs: under TCM its read
    // latency must be far lower than under FCFS.
    auto run_with = [](const std::string &sched) {
        auto light = makeSource("light", 0.5, 1, 8, 0.2, 256, 1);
        auto h1 = makeSource("h1", 25, 4, 8, 0.3, 8192, 2);
        auto h2 = makeSource("h2", 25, 4, 8, 0.3, 8192, 3);
        auto h3 = makeSource("h3", 25, 4, 8, 0.3, 8192, 4);
        std::vector<TraceSource *> raw{light.get(), h1.get(), h2.get(),
                                       h3.get()};
        SystemParams params;
        params.numCores = 4;
        params.geometry.channels = 1; // concentrate contention.
        params.geometry.ranksPerChannel = 1;
        params.geometry.banksPerRank = 8;
        params.geometry.rowsPerBank = 16384;
        params.profileIntervalCpu = 200'000;
        params.scheduler = sched;
        System sys(params, raw);
        sys.run(800'000);
        return sys.threadAvgReadLatency(0);
    };
    double fcfs = run_with("fcfs");
    double tcm = run_with("tcm");
    EXPECT_LT(tcm, fcfs * 0.7)
        << "TCM failed to shield the latency-sensitive thread";
}

TEST(SystemCompose, DbpTcmBeatsTcmOnVictimLocality)
{
    // Compose: with TCM alone, a streaming thread still shares banks
    // with row-hostile threads; adding DBP restores its locality.
    auto run_with = [](const std::string &part) {
        auto stream = makeSource("stream", 25, 1, 128, 0.0, 2048, 1);
        auto r1 = makeSource("r1", 20, 6, 2, 0.6, 8192, 2);
        auto r2 = makeSource("r2", 20, 6, 2, 0.6, 8192, 3);
        auto r3 = makeSource("r3", 20, 6, 2, 0.6, 8192, 4);
        std::vector<TraceSource *> raw{stream.get(), r1.get(), r2.get(),
                                       r3.get()};
        SystemParams params = smallParams(4);
        params.geometry.channels = 1;
        params.geometry.ranksPerChannel = 1;
        params.geometry.banksPerRank = 8;
        params.geometry.rowsPerBank = 16384;
        params.scheduler = "tcm";
        params.partition = part;
        System sys(params, raw);
        sys.run(900'000);
        return sys.threadRowHitRate(0);
    };
    double tcm_only = run_with("none");
    double dbp_tcm = run_with("dbp");
    EXPECT_GT(dbp_tcm, tcm_only + 0.03);
}

TEST(SystemConfig, AppliesOverrides)
{
    Config cfg;
    cfg.parseToken("cores=3");
    cfg.parseToken("banks=16");
    cfg.parseToken("sched=atlas");
    cfg.parseToken("part=ubp");
    cfg.parseToken("migration=none");
    cfg.parseToken("timing=ddr3-1333");
    cfg.parseToken("window=64");
    SystemParams p;
    p.applyConfig(cfg);
    EXPECT_EQ(p.numCores, 3u);
    EXPECT_EQ(p.geometry.banksPerRank, 16u);
    EXPECT_EQ(p.scheduler, "atlas");
    EXPECT_EQ(p.partition, "ubp");
    EXPECT_EQ(p.partMgr.migration, MigrationMode::None);
    EXPECT_EQ(p.timingName, "ddr3-1333");
    EXPECT_EQ(p.core.windowSize, 64u);
}

TEST(SystemConfig, RejectsBadValues)
{
    Config cfg;
    cfg.parseToken("page_policy=weird");
    SystemParams p;
    EXPECT_EXIT({ p.applyConfig(cfg); },
                ::testing::ExitedWithCode(1), "page_policy");
}

TEST(SystemInvariant, InstructionCountsMonotonic)
{
    auto a = makeSource("a", 10, 2, 16, 0.2, 1024, 1);
    auto b = makeSource("b", 10, 2, 16, 0.2, 1024, 2);
    std::vector<TraceSource *> raw{a.get(), b.get()};
    System sys(smallParams(2), raw);
    std::vector<InstCount> prev = sys.instructionSnapshot();
    for (int step = 0; step < 10; ++step) {
        sys.run(50'000);
        std::vector<InstCount> cur = sys.instructionSnapshot();
        for (std::size_t t = 0; t < cur.size(); ++t) {
            EXPECT_GE(cur[t], prev[t]);
            EXPECT_GT(cur[t], 0u);
        }
        prev = cur;
    }
}

TEST(SystemInvariant, BankXorBaselineRuns)
{
    auto a = makeSource("a", 10, 2, 16, 0.2, 1024, 1);
    std::vector<TraceSource *> raw{a.get()};
    SystemParams params = smallParams(1);
    params.scheme = MapScheme::RowInterleave;
    params.bankXor = true;
    System sys(params, raw);
    auto ipc = sys.runAndMeasure(100'000, 200'000);
    EXPECT_GT(ipc[0], 0.0);
}

TEST(SystemInvariant, LineInterleaveBaselineRuns)
{
    auto a = makeSource("a", 20, 4, 16, 0.2, 2048, 1);
    auto b = makeSource("b", 20, 4, 16, 0.2, 2048, 2);
    std::vector<TraceSource *> raw{a.get(), b.get()};
    SystemParams params = smallParams(2);
    params.scheme = MapScheme::LineInterleave;
    System sys(params, raw);
    auto ipc = sys.runAndMeasure(100'000, 200'000);
    EXPECT_GT(ipc[0], 0.0);
    EXPECT_GT(ipc[1], 0.0);
}

TEST(SystemCanary, DbpFairerThanUbpOnAsymmetricMix)
{
    // Miniature version of the headline result (fig5): on a
    // bank-starved machine with one streamer, one irregular hog and
    // two light threads, DBP's max slowdown must beat UBP's.
    auto run_with = [](const std::string &part) {
        auto stream = makeSource("stream", 25, 1, 128, 0.0, 2048, 1);
        auto rnd = makeSource("random", 18, 6, 2, 0.6, 8192, 2);
        auto l1 = makeSource("l1", 0.4, 1, 16, 0.2, 256, 3);
        auto l2 = makeSource("l2", 0.3, 1, 16, 0.2, 256, 4);
        std::vector<TraceSource *> raw{stream.get(), rnd.get(),
                                       l1.get(), l2.get()};
        SystemParams params = smallParams(4);
        params.geometry.channels = 1;
        params.geometry.ranksPerChannel = 1;
        params.geometry.banksPerRank = 8;
        params.geometry.rowsPerBank = 16384;
        params.partition = part;
        System sys(params, raw);
        auto shared = sys.runAndMeasure(800'000, 800'000);
        return shared;
    };
    // Alone IPCs, one per app on the same hardware.
    auto alone_of = [](std::unique_ptr<SyntheticSource> src) {
        std::vector<TraceSource *> raw{src.get()};
        SystemParams params = smallParams(1);
        params.geometry.channels = 1;
        params.geometry.ranksPerChannel = 1;
        params.geometry.banksPerRank = 8;
        params.geometry.rowsPerBank = 16384;
        System sys(params, raw);
        return sys.runAndMeasure(300'000, 500'000).at(0);
    };
    std::vector<double> alone = {
        alone_of(makeSource("stream", 25, 1, 128, 0.0, 2048, 1)),
        alone_of(makeSource("random", 18, 6, 2, 0.6, 8192, 2)),
        alone_of(makeSource("l1", 0.4, 1, 16, 0.2, 256, 3)),
        alone_of(makeSource("l2", 0.3, 1, 16, 0.2, 256, 4))};

    auto max_slowdown = [&](const std::vector<double> &shared) {
        double worst = 0.0;
        for (std::size_t t = 0; t < shared.size(); ++t)
            worst = std::max(worst, alone[t] / shared[t]);
        return worst;
    };
    double ubp = max_slowdown(run_with("ubp"));
    double dbp = max_slowdown(run_with("dbp"));
    EXPECT_LT(dbp, ubp * 1.02)
        << "DBP max slowdown " << dbp << " vs UBP " << ubp;
}

TEST(SystemLatency, PercentilesAreOrderedAndPopulated)
{
    auto a = makeSource("a", 20, 4, 8, 0.3, 2048, 1);
    auto b = makeSource("b", 20, 4, 8, 0.3, 2048, 2);
    std::vector<TraceSource *> raw{a.get(), b.get()};
    System sys(smallParams(2), raw);
    sys.run(500'000);

    for (ThreadId t = 0; t < 2; ++t) {
        double p50 = sys.threadReadLatencyPercentile(t, 0.5);
        double p95 = sys.threadReadLatencyPercentile(t, 0.95);
        double p99 = sys.threadReadLatencyPercentile(t, 0.99);
        EXPECT_GT(p50, 0.0);
        EXPECT_LE(p50, p95);
        EXPECT_LE(p95, p99);
        // P50 must exceed the raw DRAM pipe (tRCD + tCL + tBURST would
        // be ~26 cycles; queueing pushes it above).
        EXPECT_GT(p50, 16.0);
    }

    // Histogram totals match completed reads.
    for (ThreadId t = 0; t < 2; ++t) {
        std::uint64_t hist = 0, completed = 0;
        for (unsigned c = 0; c < sys.numControllers(); ++c) {
            hist += sys.controllerAt(c).latencyHistogram(t).count();
            completed +=
                sys.controllerAt(c).threadStats(t).readsCompleted;
        }
        // Forwarded reads complete without touching the histogram.
        EXPECT_LE(hist, completed);
        EXPECT_GT(hist, completed / 2);
    }
}

TEST(SystemStats, DumpContainsEveryComponent)
{
    auto a = makeSource("a", 10, 2, 16, 0.2, 1024, 1);
    auto b = makeSource("b", 10, 2, 16, 0.2, 1024, 2);
    std::vector<TraceSource *> raw{a.get(), b.get()};
    SystemParams params = smallParams(2);
    params.partition = "dbp";
    System sys(params, raw);
    sys.run(500'000);

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    for (const char *key :
         {"sim.cpu_cycles", "mem0.reads_enqueued", "mem1.dram_activates",
          "core0.loads", "core1.instructions", "os.frames_allocated",
          "part.repartitions"}) {
        EXPECT_NE(out.find(key), std::string::npos)
            << "stats dump missing " << key;
    }
    // Sanity: the dump reflects real activity.
    EXPECT_NE(out.find("sim.cpu_cycles                   500000"),
              std::string::npos);
}

} // namespace
} // namespace dbpsim
