/**
 * @file
 * Trace-generation tests: the synthetic generator's statistical dials
 * (MPKI, footprint, write fraction, sequential locality, phases),
 * determinism, the SPEC-like profile library, workload mixes, and
 * trace-file round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "trace/mix.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace dbpsim {
namespace {

SyntheticParams
baseParams()
{
    SyntheticParams p;
    p.name = "test";
    p.seed = 42;
    p.phases[0].mpki = 20.0;
    p.phases[0].streams = 2;
    p.phases[0].seqRunLines = 16.0;
    p.phases[0].randomFrac = 0.1;
    p.phases[0].writeFrac = 0.3;
    p.phases[0].footprintPages = 256;
    return p;
}

TEST(Synthetic, Deterministic)
{
    SyntheticSource a(baseParams());
    SyntheticSource b(baseParams());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Synthetic, ResetReplays)
{
    SyntheticSource s(baseParams());
    std::vector<TraceRecord> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(s.next());
    s.reset();
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(s.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Synthetic, MpkiApproximatelyMet)
{
    SyntheticParams p = baseParams();
    p.phases[0].mpki = 10.0;
    SyntheticSource s(p);

    std::uint64_t instrs = 0;
    const int accesses = 20000;
    for (int i = 0; i < accesses; ++i)
        instrs += s.next().gap + 1;
    double mpki = 1000.0 * accesses / static_cast<double>(instrs);
    EXPECT_NEAR(mpki, 10.0, 0.5);
}

TEST(Synthetic, WriteFractionApproximatelyMet)
{
    SyntheticParams p = baseParams();
    p.phases[0].writeFrac = 0.4;
    SyntheticSource s(p);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += s.next().write ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.02);
}

TEST(Synthetic, FootprintRespected)
{
    SyntheticParams p = baseParams();
    p.phases[0].footprintPages = 64;
    SyntheticSource s(p);
    std::set<std::uint64_t> pages;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord r = s.next();
        pages.insert(r.vaddr / kTracePageBytes);
    }
    EXPECT_LE(pages.size(), 64u);
    EXPECT_GE(pages.size(), 32u); // actually explores the footprint.
}

TEST(Synthetic, AddressesLineAligned)
{
    SyntheticSource s(baseParams());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(s.next().vaddr % kTraceLineBytes, 0u);
}

TEST(Synthetic, SequentialityTracksSeqRunLines)
{
    // High seqRunLines => most accesses are +1 line from some recent
    // access of the same stream. Compare sequential-step fraction of
    // a streaming config vs a random config.
    auto seq_fraction = [](double seq_run, double random_frac,
                           unsigned streams) {
        SyntheticParams p;
        p.seed = 7;
        p.phases[0].mpki = 50.0;
        p.phases[0].streams = streams;
        p.phases[0].seqRunLines = seq_run;
        p.phases[0].randomFrac = random_frac;
        p.phases[0].footprintPages = 4096;
        SyntheticSource s(p);
        Addr prev = ~0ULL;
        int seq = 0;
        const int n = 10000;
        for (int i = 0; i < n; ++i) {
            Addr a = s.next().vaddr;
            if (prev != ~0ULL && a == prev + kTraceLineBytes)
                ++seq;
            prev = a;
        }
        return static_cast<double>(seq) / n;
    };

    double streaming = seq_fraction(128.0, 0.0, 1);
    double random = seq_fraction(2.0, 0.6, 1);
    EXPECT_GT(streaming, 0.9);
    EXPECT_LT(random, 0.4);
}

TEST(Synthetic, PhasesAlternate)
{
    SyntheticParams p;
    p.seed = 3;
    SyntheticPhase a;
    a.mpki = 100.0;
    a.streams = 1;
    a.footprintPages = 64;
    a.durationKiloInst = 10; // 10k instructions.
    SyntheticPhase b = a;
    b.footprintPages = 8192; // visible signature: wider addresses.
    p.phases = {a, b};
    SyntheticSource s(p);

    // Run well past several phase flips; addresses beyond phase A's
    // 64-page footprint prove phase B became active, and returns
    // below it afterwards prove cycling back.
    bool saw_wide = false;
    std::uint64_t instrs = 0;
    while (instrs < 100'000) {
        TraceRecord r = s.next();
        instrs += r.gap + 1;
        if (r.vaddr >= 64 * kTracePageBytes)
            saw_wide = true;
    }
    EXPECT_TRUE(saw_wide);
}

TEST(Synthetic, RejectsNonsenseParams)
{
    SyntheticParams p = baseParams();
    p.phases[0].mpki = 0.0;
    EXPECT_DEATH({ SyntheticSource s(p); }, "mpki");
}

TEST(SpecProfiles, LibraryIsRich)
{
    const auto &all = specProfiles();
    EXPECT_GE(all.size(), 18u);
    unsigned intensive = 0;
    for (const auto &p : all) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_FALSE(p.description.empty());
        intensive += p.intensive ? 1 : 0;
    }
    EXPECT_GE(intensive, 8u);
    EXPECT_GE(all.size() - intensive, 5u);
}

TEST(SpecProfiles, LookupAndInstantiation)
{
    EXPECT_TRUE(hasSpecProfile("mcf"));
    EXPECT_FALSE(hasSpecProfile("no-such-app"));
    EXPECT_TRUE(specProfile("libquantum").intensive);
    EXPECT_FALSE(specProfile("povray").intensive);

    auto s = makeSpecSource("mcf", 1);
    EXPECT_EQ(s->name(), "mcf");
    s->next();
}

TEST(SpecProfiles, SeedsDifferentiateInstances)
{
    auto a = makeSpecSource("mcf", 1);
    auto b = makeSpecSource("mcf", 2);
    bool differ = false;
    for (int i = 0; i < 50; ++i)
        differ = differ || !(a->next() == b->next());
    EXPECT_TRUE(differ);
}

TEST(Mixes, StandardSetShape)
{
    const auto &mixes = standardMixes();
    ASSERT_EQ(mixes.size(), 12u);
    for (const auto &m : mixes) {
        EXPECT_EQ(m.apps.size(), 8u);
        for (const auto &a : m.apps)
            EXPECT_TRUE(hasSpecProfile(a)) << a;
    }
    // Intensity grading: W01 is 25 %, W10 is 100 %.
    EXPECT_NEAR(mixByName("W01").intensiveFraction(), 0.25, 0.01);
    EXPECT_NEAR(mixByName("W04").intensiveFraction(), 0.50, 0.01);
    EXPECT_NEAR(mixByName("W07").intensiveFraction(), 0.75, 0.01);
    EXPECT_NEAR(mixByName("W10").intensiveFraction(), 1.00, 0.01);
}

TEST(Mixes, ScaleTruncatesAndRepeats)
{
    const WorkloadMix &m = mixByName("W01");
    WorkloadMix small = scaleMix(m, 4);
    EXPECT_EQ(small.apps.size(), 4u);
    EXPECT_EQ(small.apps[0], m.apps[0]);

    WorkloadMix big = scaleMix(m, 16);
    EXPECT_EQ(big.apps.size(), 16u);
    EXPECT_EQ(big.apps[8], m.apps[0]);
}

TEST(Mixes, BuildSourcesMatchesApps)
{
    const WorkloadMix &m = mixByName("W04");
    auto sources = buildMixSources(m, 42);
    ASSERT_EQ(sources.size(), m.apps.size());
    for (std::size_t i = 0; i < sources.size(); ++i)
        EXPECT_EQ(sources[i]->name(), m.apps[i]);
}

TEST(TraceFile, RoundTrip)
{
    SyntheticSource s(baseParams());
    std::vector<TraceRecord> records = captureRecords(s, 500);

    std::string path = ::testing::TempDir() + "/dbpsim_trace_test.txt";
    writeTraceFile(path, records);
    std::vector<TraceRecord> back = readTraceFile(path);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(back[i], records[i]);
    std::remove(path.c_str());
}

TEST(TraceFile, SourceWrapsAround)
{
    std::vector<TraceRecord> records = {
        {1, 0x0, false}, {2, 0x40, true}, {3, 0x80, false}};
    TraceFileSource src("test", records);
    EXPECT_EQ(src.size(), 3u);
    for (int pass = 0; pass < 3; ++pass)
        for (const auto &r : records)
            EXPECT_EQ(src.next(), r);
    EXPECT_EQ(src.wraps(), 3u);
    src.reset();
    EXPECT_EQ(src.wraps(), 0u);
    EXPECT_EQ(src.next(), records[0]);
}

TEST(TraceFile, RejectsBadContent)
{
    std::string path = ::testing::TempDir() + "/dbpsim_bad_trace.txt";
    {
        FILE *f = fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        fputs("not a trace header\n", f);
        fclose(f);
    }
    EXPECT_EXIT({ readTraceFile(path); },
                ::testing::ExitedWithCode(1), "header");
    std::remove(path.c_str());
}

} // namespace
} // namespace dbpsim
