/**
 * @file
 * dbplint command-line driver.
 *
 * Usage:
 *   dbplint [--root=DIR] [--json] [--list-rules] [paths...]
 *
 * With no paths, lints the whole tree: every .cc/.hh/.cpp/.hpp under
 * src/, tests/, bench/, examples/ of --root (default: the current
 * directory), against README.md and EXPERIMENTS.md for the
 * consistency rules. Explicit paths restrict the scanned C++ file
 * set (the docs are still loaded from --root, and cross-file rules
 * only fire when their anchor files are in the set).
 *
 * Exit status: 0 clean, 1 findings, 2 usage/environment error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hh"

namespace fs = std::filesystem;
using namespace dbpsim::lint;

namespace {

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
isCxxSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

/** @p p relative to @p root with '/' separators. */
std::string
relPath(const fs::path &root, const fs::path &p)
{
    return fs::relative(p, root).generic_string();
}

int
usage(std::ostream &os, int code)
{
    os << "usage: dbplint [--root=DIR] [--json] [--list-rules] "
          "[paths...]\n"
          "  --root=DIR    repository root (default: .)\n"
          "  --json        machine-readable findings\n"
          "  --list-rules  print every rule id and exit\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool json = false;
    std::vector<std::string> explicit_paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const std::string &id : ruleIds())
                std::cout << ruleFamily(id) << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "dbplint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            explicit_paths.push_back(arg);
        }
    }

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "dbplint: bad --root: " << ec.message() << "\n";
        return 2;
    }

    Corpus corpus;
    std::vector<fs::path> files;
    if (explicit_paths.empty()) {
        for (const char *dir : {"src", "tests", "bench", "examples"}) {
            fs::path d = root / dir;
            if (!fs::is_directory(d))
                continue;
            for (const auto &e : fs::recursive_directory_iterator(d))
                if (e.is_regular_file() && isCxxSource(e.path()))
                    files.push_back(e.path());
        }
    } else {
        for (const std::string &p : explicit_paths) {
            fs::path fp = fs::path(p).is_absolute() ? fs::path(p)
                                                    : root / p;
            if (!fs::is_regular_file(fp)) {
                std::cerr << "dbplint: no such file: " << p << "\n";
                return 2;
            }
            files.push_back(fp);
        }
    }
    // Directory iteration order is filesystem-dependent; a linter of
    // determinism should report deterministically.
    std::sort(files.begin(), files.end());

    for (const fs::path &f : files) {
        SourceFile sf;
        sf.path = relPath(root, f);
        if (!readFile(f, sf.content)) {
            std::cerr << "dbplint: cannot read " << f << "\n";
            return 2;
        }
        corpus.files.push_back(std::move(sf));
    }
    readFile(root / "README.md", corpus.readme);
    readFile(root / "EXPERIMENTS.md", corpus.experiments);

    std::vector<Finding> findings = lintCorpus(corpus);

    if (json) {
        std::cout << findingsToJson(findings);
    } else {
        for (const Finding &f : findings)
            std::cout << findingToText(f) << "\n";
        std::cout << "dbplint: " << corpus.files.size() << " files, "
                  << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << "\n";
    }
    return findings.empty() ? 0 : 1;
}
