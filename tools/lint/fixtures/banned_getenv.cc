// dbplint fixture: determinism/banned-getenv.
#include <cstdlib>

bool
fixtureEnvProbe()
{
    return std::getenv("DBPSIM_FIXTURE") != nullptr; // EXPECT:banned-getenv
}
