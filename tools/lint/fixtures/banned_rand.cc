// dbplint fixture: every line carrying an expectation marker must
// fire exactly that rule there (tests/test_dbplint.cc parses the
// markers). Never compiled; lives outside the linted tree.
#include <cstdlib>

int
fixtureRand()
{
    std::srand(7); // EXPECT:banned-rand
    return std::rand(); // EXPECT:banned-rand
}
