// dbplint fixture: determinism/banned-random-device.
#include <random>

unsigned
fixtureEntropy()
{
    std::random_device rd; // EXPECT:banned-random-device
    return rd();
}
