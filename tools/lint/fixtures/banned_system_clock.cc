// dbplint fixture: determinism/banned-system-clock.
#include <chrono>

long long
fixtureNow()
{
    auto t = std::chrono::system_clock::now(); // EXPECT:banned-system-clock
    return t.time_since_epoch().count();
}
