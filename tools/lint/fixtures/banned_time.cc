// dbplint fixture: determinism/banned-time. Only a *call* fires: a
// variable named time is legal (and common in simulator code).
#include <ctime>

long
fixtureWallClock()
{
    long now = time(nullptr); // EXPECT:banned-time
    long time = 0;
    return now + time;
}
