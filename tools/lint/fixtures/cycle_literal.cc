// dbplint fixture: timing/cycle-literal fires on bare integers
// assigned to DramTiming-style fields and Cycle variables. Zero
// (beginning of time) and kCamelCase named constants must NOT fire.
#include <cstdint>

using Cycle = std::uint64_t;

struct FixtureTiming
{
    Cycle tRCD = 0;
};

Cycle
fixtureWindow()
{
    FixtureTiming t;
    t.tRCD = 11; // EXPECT:cycle-literal
    Cycle warmup = 2'000'000; // EXPECT:cycle-literal
    Cycle start = 0;
    const Cycle kDrainBound = 64;
    return warmup + start + kDrainBound + t.tRCD;
}
