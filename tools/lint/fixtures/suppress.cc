// dbplint fixture: suppression semantics. Both placement forms must
// silence the finding; a reason is mandatory; unknown rule ids and
// suppressions that match nothing are themselves findings.
#include <cstdlib>

int
fixtureQuietAbove()
{
    // dbplint:allow(banned-rand) reason=fixture shows the line-above suppression form
    return std::rand();
}

int
fixtureQuietSameLine()
{
    return std::rand(); // dbplint:allow(banned-rand) reason=fixture shows the same-line suppression form
}

int
fixtureNoisy()
{
    return std::rand(); // EXPECT:banned-rand
}

// dbplint:allow(banned-rand) EXPECT:empty-reason
// dbplint:allow(no-such-rule) reason=fixture EXPECT:unknown-rule
// dbplint:allow(banned-time) reason=fixture with nothing suppressible EXPECT:unused-suppression
