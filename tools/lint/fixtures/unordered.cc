// dbplint fixture: determinism/unordered-decl fires on the member
// declaration; determinism/unordered-iter on both iteration forms.
// The find()/end() miss check below must NOT fire: it leaks no order.
#include <cstdint>
#include <unordered_map>

struct FixtureTable
{
    std::unordered_map<std::uint64_t, std::uint64_t> table_; // EXPECT:unordered-decl

    std::uint64_t
    sum() const
    {
        std::uint64_t s = 0;
        for (const auto &kv : table_) // EXPECT:unordered-iter
            s += kv.second;
        auto it = table_.begin(); // EXPECT:unordered-iter
        (void)it;
        return s;
    }

    bool
    has(std::uint64_t key) const
    {
        return table_.find(key) != table_.end();
    }
};
