#include "lexer.hh"

#include <cctype>
#include <cstdlib>

namespace dbpsim::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Two-character operators the rules care about lexing as one token. */
bool
isTwoCharOp(char a, char b)
{
    switch (a) {
      case ':': return b == ':';
      case '-': return b == '>' || b == '=' || b == '-';
      case '=': return b == '=';
      case '!': return b == '=';
      case '<': return b == '=' || b == '<';
      case '>': return b == '=' || b == '>';
      case '+': return b == '=' || b == '+';
      case '*': return b == '=';
      case '/': return b == '=';
      case '%': return b == '=';
      case '&': return b == '=' || b == '&';
      case '|': return b == '=' || b == '|';
      case '^': return b == '=';
      default: return false;
    }
}

} // namespace

TokenStream
scan(const std::string &content)
{
    TokenStream out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    unsigned line = 1;
    bool at_line_start = true;

    auto peek = [&](std::size_t off) -> char {
        return i + off < n ? content[i + off] : '\0';
    };

    while (i < n) {
        char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }

        // Preprocessor directive: skip to end of line, honoring
        // backslash continuations. Keeps `#include <unordered_map>`
        // from minting identifier tokens.
        if (c == '#' && at_line_start) {
            while (i < n) {
                if (content[i] == '\\' && peek(1) == '\n') {
                    i += 2;
                    ++line;
                    continue;
                }
                if (content[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        at_line_start = false;

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            std::size_t start = i + 2;
            std::size_t end = start;
            while (end < n && content[end] != '\n')
                ++end;
            out.comments.push_back(
                {content.substr(start, end - start), line});
            i = end;
            continue;
        }

        // Block comment.
        if (c == '/' && peek(1) == '*') {
            unsigned start_line = line;
            std::size_t start = i + 2;
            std::size_t end = start;
            while (end + 1 < n &&
                   !(content[end] == '*' && content[end + 1] == '/')) {
                if (content[end] == '\n')
                    ++line;
                ++end;
            }
            out.comments.push_back(
                {content.substr(start, end - start), start_line});
            i = end + 1 < n ? end + 2 : n;
            continue;
        }

        // Raw string literal: R"delim( ... )delim" with optional
        // encoding prefix already consumed as part of an identifier,
        // so handle the bare R-form here and the prefixed forms via
        // the identifier path below.
        if (c == 'R' && peek(1) == '"') {
            std::size_t d = i + 2;
            std::string delim;
            while (d < n && content[d] != '(')
                delim += content[d++];
            std::string close = ")" + delim + "\"";
            std::size_t body = d + 1;
            std::size_t end = content.find(close, body);
            if (end == std::string::npos)
                end = n;
            std::string text = content.substr(body, end - body);
            out.tokens.push_back({TokKind::Str, text, line, false, 0});
            for (std::size_t k = i; k < end && k < n; ++k)
                if (content[k] == '\n')
                    ++line;
            i = end == n ? n : end + close.size();
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t end = i + 1;
            std::string text;
            while (end < n && content[end] != quote) {
                if (content[end] == '\\' && end + 1 < n) {
                    text += content[end];
                    text += content[end + 1];
                    end += 2;
                    continue;
                }
                if (content[end] == '\n')
                    break; // unterminated; bail at EOL.
                text += content[end];
                ++end;
            }
            if (quote == '"')
                out.tokens.push_back(
                    {TokKind::Str, text, line, false, 0});
            i = end < n ? end + 1 : n;
            continue;
        }

        // Identifier / keyword (and prefixed raw strings: u8R"...").
        if (isIdentStart(c)) {
            std::size_t end = i;
            while (end < n && isIdentChar(content[end]))
                ++end;
            std::string text = content.substr(i, end - i);
            // Encoding-prefixed string literal: skip the prefix and
            // let the next iteration lex the literal.
            if (end < n && content[end] == '"' &&
                (text == "u8" || text == "u" || text == "U" ||
                 text == "L" || text == "u8R" || text == "uR" ||
                 text == "UR" || text == "LR")) {
                if (text.back() == 'R') {
                    i = end - 1; // land on the R of R"...
                    continue;
                }
                i = end;
                continue;
            }
            out.tokens.push_back(
                {TokKind::Ident, std::move(text), line, false, 0});
            i = end;
            continue;
        }

        // Numeric literal.
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
            std::size_t end = i;
            bool is_float = c == '.';
            while (end < n) {
                char d = content[end];
                if (std::isalnum(static_cast<unsigned char>(d)) != 0 ||
                    d == '\'' || d == '.') {
                    if (d == '.' || d == 'e' || d == 'E' ||
                        d == 'p' || d == 'P')
                        is_float = true;
                    // 0x1E is not a float exponent.
                    if ((d == 'e' || d == 'E') && end > i &&
                        (content[i + 1] == 'x' || content[i + 1] == 'X'))
                        is_float = false;
                    ++end;
                    continue;
                }
                if ((d == '+' || d == '-') && end > i &&
                    (content[end - 1] == 'e' || content[end - 1] == 'E' ||
                     content[end - 1] == 'p' || content[end - 1] == 'P')) {
                    ++end;
                    continue;
                }
                break;
            }
            std::string text = content.substr(i, end - i);
            Token tok{TokKind::Number, text, line, false, 0};
            if (!is_float) {
                std::string digits;
                for (char d : text)
                    if (d != '\'')
                        digits += d;
                // Strip integer suffixes (u, l, ll, z, ...).
                while (!digits.empty() &&
                       std::isxdigit(static_cast<unsigned char>(
                           digits.back())) == 0 &&
                       digits.back() != 'x' && digits.back() != 'X')
                    digits.pop_back();
                if (!(digits.size() >= 2 &&
                      (digits[1] == 'x' || digits[1] == 'X'))) {
                    // Decimal/octal suffix letters (l, u) are not hex
                    // digits, but 'b'/'f' could survive; strtoull
                    // stops at them harmlessly.
                }
                tok.isInt = true;
                tok.intValue = std::strtoull(digits.c_str(), nullptr, 0);
            }
            out.tokens.push_back(std::move(tok));
            i = end;
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharOp(c, content[i + 1])) {
            out.tokens.push_back(
                {TokKind::Punct, content.substr(i, 2), line, false, 0});
            i += 2;
            continue;
        }
        out.tokens.push_back(
            {TokKind::Punct, std::string(1, c), line, false, 0});
        ++i;
    }

    return out;
}

} // namespace dbpsim::lint
