/**
 * @file
 * Minimal C++ token scanner for dbplint.
 *
 * This is deliberately not a parser: dbplint's rules only need a
 * stream of identifiers, literals, and punctuation with accurate line
 * numbers, plus the comment text (suppressions live in comments).
 * The scanner understands line/block comments, string/char literals
 * (including raw strings and encoding prefixes), preprocessor
 * directives (skipped wholesale, so `#include <unordered_map>` never
 * produces an `unordered_map` identifier token), digit separators,
 * and the two-character operators whose mis-lexing would matter to a
 * rule (`::`, `->`, `==`, compound assignments, shifts).
 *
 * No LLVM/libclang dependency: the linter must build everywhere the
 * simulator builds, with nothing but the C++ toolchain.
 */

#ifndef DBPSIM_TOOLS_LINT_LEXER_HH
#define DBPSIM_TOOLS_LINT_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dbpsim::lint {

/** Token categories dbplint's rules distinguish. */
enum class TokKind
{
    Ident,  ///< identifier or keyword.
    Number, ///< numeric literal (integer or floating).
    Str,    ///< string literal (text holds the *contents*, unquoted).
    Punct,  ///< operator / punctuation (one or two characters).
};

/** One token with its source position. */
struct Token
{
    TokKind kind;
    std::string text;
    unsigned line = 0;

    /** Numbers only: true when the literal is a pure integer. */
    bool isInt = false;

    /** Numbers only (isInt): the parsed value. */
    std::uint64_t intValue = 0;
};

/** One comment, as a suppression carrier. */
struct Comment
{
    std::string text; ///< contents without the // or slash-star.
    unsigned line = 0;///< line the comment starts on.
};

/** The scan result for one file. */
struct TokenStream
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Scan @p content (the full text of a C++ source file). Never fails:
 * malformed input degrades to best-effort tokens, which at worst
 * costs a rule a finding — the compiler, not the linter, owns syntax
 * errors.
 */
TokenStream scan(const std::string &content);

} // namespace dbpsim::lint

#endif // DBPSIM_TOOLS_LINT_LEXER_HH
