#include "rules.hh"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hh"

namespace dbpsim::lint {

namespace {

// ---- helpers --------------------------------------------------------

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/** @p needle occurs in @p hay with non-word characters on both sides. */
bool
containsWord(const std::string &hay, const std::string &needle)
{
    std::size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !isWordChar(hay[pos - 1]);
        std::size_t after = pos + needle.size();
        bool right_ok = after >= hay.size() || !isWordChar(hay[after]);
        if (left_ok && right_ok)
            return true;
        pos += 1;
    }
    return false;
}

/** README documents @p key iff a backticked occurrence exists. */
bool
readmeDocumentsKey(const std::string &readme, const std::string &key)
{
    std::size_t pos = 0;
    std::string quoted = "`" + key;
    while ((pos = readme.find(quoted, pos)) != std::string::npos) {
        std::size_t after = pos + quoted.size();
        if (after >= readme.size() || !isWordChar(readme[after]))
            return true;
        pos += 1;
    }
    return false;
}

/** True for DramTiming-style field names: tRCD, tFAW, tckPs, ... */
bool
isTimingFieldName(const std::string &name)
{
    if (name == "tckPs")
        return true;
    return name.size() >= 3 && name[0] == 't' &&
           name[1] >= 'A' && name[1] <= 'Z';
}

/** k-prefixed CamelCase: the sanctioned named-constant spelling. */
bool
isNamedConstant(const std::string &name)
{
    return name.size() >= 2 && name[0] == 'k' &&
           name[1] >= 'A' && name[1] <= 'Z';
}

struct Suppression
{
    std::string file;
    unsigned line = 0;
    std::string rule;
    std::string reason;
    bool known = false;
    bool used = false;
};

/** One scanned file: tokens + suppressions extracted from comments. */
struct ScannedFile
{
    const SourceFile *src = nullptr;
    TokenStream ts;
};

const char *const kRuleIds[] = {
    "banned-rand",
    "banned-random-device",
    "banned-time",
    "banned-system-clock",
    "banned-getenv",
    "unordered-decl",
    "unordered-iter",
    "cycle-literal",
    "validate-coverage",
    "config-key-doc",
    "violation-test",
    "campaign-doc",
    "empty-reason",
    "unknown-rule",
    "unused-suppression",
};

bool
isKnownRule(const std::string &id)
{
    for (const char *r : kRuleIds)
        if (id == r)
            return true;
    return false;
}

// ---- the rule engine ------------------------------------------------

class Linter
{
  public:
    explicit Linter(const Corpus &corpus) : corpus_(corpus)
    {
        for (const SourceFile &f : corpus.files) {
            scanned_.push_back({&f, scan(f.content)});
            collectSuppressions(scanned_.back());
        }
    }

    std::vector<Finding> run();

  private:
    void flag(const ScannedFile &sf, unsigned line,
              const std::string &rule, const std::string &message)
    {
        raw_.push_back({sf.src->path, line, rule, message});
    }

    void collectSuppressions(const ScannedFile &sf);

    void ruleBannedIdents(const ScannedFile &sf);
    void ruleUnorderedDecl(const ScannedFile &sf);
    void collectUnorderedNames(const ScannedFile &sf);
    void ruleUnorderedIter(const ScannedFile &sf);
    void ruleCycleLiteral(const ScannedFile &sf);
    void ruleValidateCoverage();
    void ruleConfigKeyDoc(const ScannedFile &sf);
    void ruleViolationTest();
    void ruleCampaignDoc(const ScannedFile &sf);

    const ScannedFile *fileByPath(const std::string &path) const
    {
        for (const ScannedFile &sf : scanned_)
            if (sf.src->path == path)
                return &sf;
        return nullptr;
    }

    const Corpus &corpus_;
    std::vector<ScannedFile> scanned_;
    std::vector<Suppression> supps_;
    std::vector<Finding> raw_;
    std::set<std::string> unorderedNames_;
};

void
Linter::collectSuppressions(const ScannedFile &sf)
{
    static const std::string kMarker = "dbplint:allow(";
    for (const Comment &c : sf.ts.comments) {
        std::size_t pos = c.text.find(kMarker);
        if (pos == std::string::npos)
            continue;
        std::size_t id_start = pos + kMarker.size();
        std::size_t id_end = c.text.find(')', id_start);
        if (id_end == std::string::npos)
            continue;
        Suppression s;
        s.file = sf.src->path;
        s.line = c.line;
        s.rule = c.text.substr(id_start, id_end - id_start);
        s.known = isKnownRule(s.rule);
        std::size_t r = c.text.find("reason=", id_end);
        if (r != std::string::npos) {
            s.reason = c.text.substr(r + 7);
            while (!s.reason.empty() &&
                   (s.reason.back() == ' ' || s.reason.back() == '\t'))
                s.reason.pop_back();
        }
        supps_.push_back(std::move(s));
    }
}

// determinism/banned-*: ambient nondeterminism entry points.
void
Linter::ruleBannedIdents(const ScannedFile &sf)
{
    const std::string &path = sf.src->path;
    // The deterministic-RNG and config layers are the two sanctioned
    // homes for these calls.
    if (startsWith(path, "src/common/random.") ||
        startsWith(path, "src/common/config."))
        return;

    const auto &toks = sf.ts.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string &id = toks[i].text;

        bool member_access =
            i > 0 && toks[i - 1].kind == TokKind::Punct &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->");
        // `Foo::rand` only counts when Foo is std (or chrono for the
        // clock types); a user-defined scope owns its own names.
        bool scoped = i > 0 && toks[i - 1].kind == TokKind::Punct &&
                      toks[i - 1].text == "::";
        bool std_scoped =
            scoped && i > 1 && toks[i - 2].kind == TokKind::Ident &&
            (toks[i - 2].text == "std" || toks[i - 2].text == "chrono");
        if (member_access || (scoped && !std_scoped))
            continue;

        bool called = i + 1 < toks.size() &&
                      toks[i + 1].kind == TokKind::Punct &&
                      toks[i + 1].text == "(";

        if ((id == "rand" || id == "srand") && called)
            flag(sf, toks[i].line, "banned-rand",
                 "call to " + id + "() — every random draw must come "
                 "from the seeded dbpsim::Rng (src/common/random.hh) "
                 "so runs are reproducible");
        else if (id == "random_device")
            flag(sf, toks[i].line, "banned-random-device",
                 "std::random_device is entropy from the environment — "
                 "seed a dbpsim::Rng from the run configuration "
                 "instead");
        else if (id == "time" && called)
            flag(sf, toks[i].line, "banned-time",
                 "call to time() — wall-clock input makes runs "
                 "unreproducible; derive cycle counts from the "
                 "simulation clock");
        else if (id == "system_clock")
            flag(sf, toks[i].line, "banned-system-clock",
                 "std::chrono::system_clock is wall-clock time — use "
                 "steady_clock for intervals, never clock readings in "
                 "results");
        else if (id == "getenv" && called)
            flag(sf, toks[i].line, "banned-getenv",
                 "getenv() outside src/common/{random,config} — route "
                 "environment probes through the config layer "
                 "(dbpsim::envFlag) so they are visible and loggable");
    }
}

// determinism/unordered-decl: unordered containers need a rationale.
void
Linter::ruleUnorderedDecl(const ScannedFile &sf)
{
    for (const Token &t : sf.ts.tokens) {
        if (t.kind != TokKind::Ident)
            continue;
        if (t.text == "unordered_map" || t.text == "unordered_set")
            flag(sf, t.line, "unordered-decl",
                 "std::" + t.text + " — hash order is implementation-"
                 "defined; document why ordering cannot leak into "
                 "results (dbplint:allow(unordered-decl) reason=...) "
                 "or use an ordered container");
    }
}

/**
 * Collect the names declared with an unordered container type, in any
 * file: `std::unordered_map<K, V> name` and members/locals of types
 * wrapping one (`std::vector<std::unordered_map<K,V>> name`).
 */
void
Linter::collectUnorderedNames(const ScannedFile &sf)
{
    const auto &toks = sf.ts.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            (toks[i].text != "unordered_map" &&
             toks[i].text != "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokKind::Punct &&
            toks[j].text == "<") {
            int depth = 0;
            for (; j < toks.size(); ++j) {
                if (toks[j].kind != TokKind::Punct)
                    continue;
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">")
                    --depth;
                else if (toks[j].text == ">>")
                    depth -= 2;
                if (depth <= 0) {
                    ++j;
                    break;
                }
            }
        }
        // Skip any wrapper closers left over (outer vector<...>>).
        while (j < toks.size() && toks[j].kind == TokKind::Punct &&
               (toks[j].text == ">" || toks[j].text == ">>"))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Ident)
            unorderedNames_.insert(toks[j].text);
    }
}

// determinism/unordered-iter: iteration over unordered containers.
void
Linter::ruleUnorderedIter(const ScannedFile &sf)
{
    const auto &toks = sf.ts.tokens;
    std::set<std::pair<unsigned, std::string>> seen;
    auto flagOnce = [&](unsigned line, const std::string &name) {
        if (!seen.insert({line, name}).second)
            return;
        flag(sf, line, "unordered-iter",
             "iteration over unordered container '" + name + "' — "
             "visit order is implementation-defined; sort before "
             "emitting, or suppress with sorted-before-emit evidence");
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        // name.begin() / name.cbegin(). A bare .end() is not flagged:
        // comparing find()'s result against end() is the idiomatic
        // miss check and leaks no ordering.
        if (toks[i].kind == TokKind::Ident &&
            unorderedNames_.count(toks[i].text) != 0 &&
            i + 2 < toks.size() && toks[i + 1].kind == TokKind::Punct &&
            (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
            toks[i + 2].kind == TokKind::Ident &&
            (toks[i + 2].text == "begin" ||
             toks[i + 2].text == "cbegin")) {
            flagOnce(toks[i].line, toks[i].text);
        }

        // Range-for whose range expression names a tracked container.
        if (toks[i].kind != TokKind::Ident || toks[i].text != "for" ||
            i + 1 >= toks.size() || toks[i + 1].kind != TokKind::Punct ||
            toks[i + 1].text != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (toks[j].kind != TokKind::Punct)
                continue;
            if (toks[j].text == "(") {
                ++depth;
            } else if (toks[j].text == ")") {
                --depth;
                if (depth == 0) {
                    close = j;
                    break;
                }
            } else if (toks[j].text == ":" && depth == 1 && colon == 0) {
                colon = j;
            }
        }
        if (colon == 0 || close == 0)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j)
            if (toks[j].kind == TokKind::Ident &&
                unorderedNames_.count(toks[j].text) != 0)
                flagOnce(toks[i].line, toks[j].text);
    }
}

// timing/cycle-literal: anonymous integers carrying cycle units.
void
Linter::ruleCycleLiteral(const ScannedFile &sf)
{
    const std::string &path = sf.src->path;
    // The timing presets are where cycle numbers belong.
    if (path == "src/dram/timing.cc" || path == "src/dram/timing.hh")
        return;

    const auto &toks = sf.ts.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        // `.tXXX = <int-literal>` (timing field assignment).
        if (toks[i].kind == TokKind::Punct &&
            (toks[i].text == "." || toks[i].text == "->") &&
            toks[i + 1].kind == TokKind::Ident &&
            isTimingFieldName(toks[i + 1].text) &&
            toks[i + 2].kind == TokKind::Punct && toks[i + 2].text == "=" &&
            i + 3 < toks.size() && toks[i + 3].kind == TokKind::Number &&
            toks[i + 3].isInt && toks[i + 3].intValue > 0) {
            flag(sf, toks[i + 1].line, "cycle-literal",
                 "bare cycle literal assigned to DramTiming field '" +
                 toks[i + 1].text + "' outside the src/dram/timing.* "
                 "presets — use a preset, derive from one, or suppress "
                 "with the reason the raw number is safe");
        }

        // `Cycle name = <nonzero int literal>;` outside the presets.
        // Zero is "beginning of time", not a duration, and k-prefixed
        // CamelCase names are the sanctioned named-constant spelling.
        if (toks[i].kind == TokKind::Ident && toks[i].text == "Cycle" &&
            toks[i + 1].kind == TokKind::Ident &&
            !isNamedConstant(toks[i + 1].text) &&
            toks[i + 2].kind == TokKind::Punct &&
            toks[i + 2].text == "=" && i + 4 < toks.size() &&
            toks[i + 3].kind == TokKind::Number && toks[i + 3].isInt &&
            toks[i + 3].intValue > 0 &&
            toks[i + 4].kind == TokKind::Punct &&
            (toks[i + 4].text == ";" || toks[i + 4].text == ",")) {
            flag(sf, toks[i + 1].line, "cycle-literal",
                 "bare cycle literal initializing Cycle variable '" +
                 toks[i + 1].text + "' — name the constant "
                 "(kCamelCase), take it from DramTiming, or suppress "
                 "with the reason the default is safe");
        }
    }
}

// timing/validate-coverage: fields the channel enforces must be
// sanity-checked by DramTiming::validate().
void
Linter::ruleValidateCoverage()
{
    const ScannedFile *channel = fileByPath("src/dram/channel.cc");
    const ScannedFile *timing = fileByPath("src/dram/timing.cc");
    if (channel == nullptr || timing == nullptr)
        return;

    // Fields referenced as timing_.tXXX / timing.tXXX in channel.cc.
    std::map<std::string, unsigned> refs; // field -> first line.
    const auto &ct = channel->ts.tokens;
    for (std::size_t i = 0; i + 2 < ct.size(); ++i) {
        if (ct[i].kind == TokKind::Ident &&
            (ct[i].text == "timing_" || ct[i].text == "timing") &&
            ct[i + 1].kind == TokKind::Punct && ct[i + 1].text == "." &&
            ct[i + 2].kind == TokKind::Ident &&
            isTimingFieldName(ct[i + 2].text)) {
            refs.emplace(ct[i + 2].text, ct[i + 2].line);
        }
    }

    // Identifiers inside DramTiming::validate()'s body.
    std::set<std::string> body;
    const auto &tt = timing->ts.tokens;
    for (std::size_t i = 0; i + 2 < tt.size(); ++i) {
        if (!(tt[i].kind == TokKind::Ident &&
              tt[i].text == "DramTiming" &&
              tt[i + 1].kind == TokKind::Punct &&
              tt[i + 1].text == "::" &&
              tt[i + 2].kind == TokKind::Ident &&
              tt[i + 2].text == "validate"))
            continue;
        std::size_t j = i + 3;
        while (j < tt.size() && !(tt[j].kind == TokKind::Punct &&
                                  tt[j].text == "{"))
            ++j;
        int depth = 0;
        for (; j < tt.size(); ++j) {
            if (tt[j].kind == TokKind::Punct) {
                if (tt[j].text == "{")
                    ++depth;
                else if (tt[j].text == "}" && --depth == 0)
                    break;
            } else if (tt[j].kind == TokKind::Ident) {
                body.insert(tt[j].text);
            }
        }
        break;
    }

    for (const auto &[field, line] : refs) {
        if (body.count(field) != 0)
            continue;
        raw_.push_back(
            {channel->src->path, line, "validate-coverage",
             "DramTiming::" + field + " is enforced by channel.cc but "
             "never appears in DramTiming::validate() — add a sanity "
             "relation so a mis-set preset fails fast"});
    }
}

// consistency/config-key-doc: parsed keys must be documented.
void
Linter::ruleConfigKeyDoc(const ScannedFile &sf)
{
    if (corpus_.readme.empty())
        return;
    const std::string &path = sf.src->path;
    // Keys parsed by tests are test-internal; user-facing surface is
    // the library, benches, and examples.
    if (!startsWith(path, "src/") && !startsWith(path, "bench/") &&
        !startsWith(path, "examples/"))
        return;

    const auto &toks = sf.ts.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string &id = toks[i].text;
        if (id != "getString" && id != "getInt" && id != "getUInt" &&
            id != "getDouble" && id != "getBool")
            continue;
        if (!(toks[i + 1].kind == TokKind::Punct &&
              toks[i + 1].text == "(" &&
              toks[i + 2].kind == TokKind::Str))
            continue;
        const std::string &key = toks[i + 2].text;
        if (key.empty())
            continue;
        if (!readmeDocumentsKey(corpus_.readme, key))
            flag(sf, toks[i + 2].line, "config-key-doc",
                 "config key \"" + key + "\" is parsed here but not "
                 "documented in README.md — add it to the "
                 "configuration-key table (backticked)");
    }
}

// consistency/violation-test: every checker violation class must be
// exercised by the protocol-check test suite.
void
Linter::ruleViolationTest()
{
    const ScannedFile *hh = fileByPath("src/check/protocol_check.hh");
    const SourceFile *test = nullptr;
    for (const SourceFile &f : corpus_.files)
        if (f.path == "tests/test_protocol_check.cc")
            test = &f;
    if (hh == nullptr || test == nullptr)
        return;

    const auto &toks = hh->ts.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!(toks[i].kind == TokKind::Ident && toks[i].text == "enum" &&
              toks[i + 1].kind == TokKind::Ident &&
              toks[i + 1].text == "class" &&
              toks[i + 2].kind == TokKind::Ident &&
              toks[i + 2].text == "Violation"))
            continue;
        std::size_t j = i + 3;
        while (j < toks.size() && !(toks[j].kind == TokKind::Punct &&
                                    toks[j].text == "{"))
            ++j;
        bool expect_name = true;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            const Token &t = toks[j];
            if (t.kind == TokKind::Punct) {
                if (t.text == "{") {
                    ++depth;
                } else if (t.text == "}") {
                    if (--depth == 0)
                        break;
                } else if (t.text == "," && depth == 1) {
                    expect_name = true;
                }
                continue;
            }
            if (depth == 1 && expect_name && t.kind == TokKind::Ident) {
                expect_name = false;
                if (!containsWord(test->content,
                                  "Violation::" + t.text))
                    raw_.push_back(
                        {hh->src->path, t.line, "violation-test",
                         "Violation::" + t.text + " has no injection "
                         "test in tests/test_protocol_check.cc — every "
                         "violation class must be provoked at least "
                         "once"});
            }
        }
        break;
    }
}

// consistency/campaign-doc: every registered campaign described in
// EXPERIMENTS.md.
void
Linter::ruleCampaignDoc(const ScannedFile &sf)
{
    if (corpus_.experiments.empty())
        return;
    if (!startsWith(sf.src->path, "bench/"))
        return;

    const auto &toks = sf.ts.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!(toks[i].kind == TokKind::Ident &&
              toks[i].text == "CampaignRegistrar"))
            continue;
        // The campaign name is the first string literal of the
        // registration (CampaignSpec{.name} is its first member).
        for (std::size_t j = i + 1;
             j < toks.size() && j < i + 40; ++j) {
            if (toks[j].kind != TokKind::Str)
                continue;
            const std::string &name = toks[j].text;
            if (!name.empty() &&
                !containsWord(corpus_.experiments, name))
                flag(sf, toks[j].line, "campaign-doc",
                     "campaign \"" + name + "\" is registered here "
                     "but never mentioned in EXPERIMENTS.md — record "
                     "what it measures and the expected shape");
            break;
        }
    }
}

std::vector<Finding>
Linter::run()
{
    for (const ScannedFile &sf : scanned_)
        collectUnorderedNames(sf);

    for (const ScannedFile &sf : scanned_) {
        ruleBannedIdents(sf);
        ruleUnorderedDecl(sf);
        ruleUnorderedIter(sf);
        ruleCycleLiteral(sf);
        ruleConfigKeyDoc(sf);
        ruleCampaignDoc(sf);
    }
    ruleValidateCoverage();
    ruleViolationTest();

    // Apply suppressions: an allow-comment on the finding's line or
    // the line directly above it, with a matching rule id.
    std::vector<Finding> out;
    for (Finding &f : raw_) {
        bool suppressed = false;
        for (Suppression &s : supps_) {
            if (s.known && !s.reason.empty() && s.rule == f.rule &&
                s.file == f.file &&
                (s.line == f.line || s.line + 1 == f.line)) {
                s.used = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            out.push_back(std::move(f));
    }

    // Meta findings: suppressions must carry a reason, name a real
    // rule, and actually suppress something.
    for (const Suppression &s : supps_) {
        if (!s.known) {
            out.push_back({s.file, s.line, "unknown-rule",
                           "suppression names unknown rule '" + s.rule +
                           "' (see dbplint --list-rules)"});
            continue;
        }
        if (s.reason.empty()) {
            out.push_back({s.file, s.line, "empty-reason",
                           "suppression of '" + s.rule + "' without a "
                           "reason — write reason=<why this is safe>"});
            continue;
        }
        if (!s.used)
            out.push_back({s.file, s.line, "unused-suppression",
                           "suppression of '" + s.rule + "' matches no "
                           "finding — delete it so it cannot mask a "
                           "future one"});
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::vector<Finding>
lintCorpus(const Corpus &corpus)
{
    return Linter(corpus).run();
}

std::string
ruleFamily(const std::string &rule)
{
    if (startsWith(rule, "banned-") || startsWith(rule, "unordered-"))
        return "determinism/" + rule;
    if (rule == "cycle-literal" || rule == "validate-coverage")
        return "timing/" + rule;
    if (rule == "config-key-doc" || rule == "violation-test" ||
        rule == "campaign-doc")
        return "consistency/" + rule;
    return "meta/" + rule;
}

std::vector<std::string>
ruleIds()
{
    return {std::begin(kRuleIds), std::end(kRuleIds)};
}

std::string
findingsToJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "\n" : ",\n")
           << "  {\"file\": \"" << jsonEscape(f.file) << "\", "
           << "\"line\": " << f.line << ", "
           << "\"rule\": \"" << jsonEscape(ruleFamily(f.rule)) << "\", "
           << "\"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "]" : "\n]") << "\n";
    return os.str();
}

std::string
findingToText(const Finding &f)
{
    std::ostringstream os;
    os << f.file << ":" << f.line << ": [" << ruleFamily(f.rule) << "] "
       << f.message;
    return os.str();
}

} // namespace dbpsim::lint
