/**
 * @file
 * dbplint rule engine.
 *
 * dbplint is the project-specific determinism & consistency linter:
 * every claim the repo makes (the DBP-vs-UBP gap, the refresh
 * dominance result, the `--jobs=N` == `--serial` guarantee) rests on
 * bit-identical deterministic simulation, and these rules turn the
 * conventions that protect that determinism from reviewer lore into
 * machine-checked invariants. Three families:
 *
 *  determinism/
 *    banned-rand, banned-random-device, banned-time,
 *    banned-system-clock, banned-getenv
 *        Ambient-nondeterminism entry points are banned outside
 *        src/common/{random,config}: every random draw must flow
 *        through the seeded dbpsim::Rng and every environment probe
 *        through the config layer.
 *    unordered-decl
 *        Every unordered container must carry a written rationale for
 *        why its ordering cannot leak into results.
 *    unordered-iter
 *        Iterating an unordered container is flagged unless the site
 *        shows sorted-before-emit evidence via a suppression.
 *
 *  timing/
 *    cycle-literal
 *        Bare integer cycle literals outside the src/dram/timing.*
 *        presets (unit mistakes hide in anonymous integers).
 *    validate-coverage
 *        Every DramTiming field the channel enforces must be
 *        sanity-checked by DramTiming::validate().
 *
 *  consistency/
 *    config-key-doc    every parsed config key documented in README.
 *    violation-test    every checker Violation enumerator exercised
 *                      in tests/test_protocol_check.cc.
 *    campaign-doc      every registered CampaignSpec described in
 *                      EXPERIMENTS.md.
 *
 * Suppression syntax (same line or the line above the finding):
 *
 *    // dbplint:allow(<rule-id>) reason=<non-empty explanation>
 *
 * A reason is mandatory (meta/empty-reason), unknown rule ids are
 * themselves findings (meta/unknown-rule), and a suppression that
 * matches nothing rots loudly (meta/unused-suppression).
 */

#ifndef DBPSIM_TOOLS_LINT_RULES_HH
#define DBPSIM_TOOLS_LINT_RULES_HH

#include <string>
#include <vector>

namespace dbpsim::lint {

/** One lint finding. */
struct Finding
{
    std::string file;    ///< repo-relative path.
    unsigned line = 0;   ///< 1-based.
    std::string rule;    ///< short rule id ("unordered-iter").
    std::string message; ///< what and why, with the remedy.
};

/** One input file (path repo-relative, '/'-separated). */
struct SourceFile
{
    std::string path;
    std::string content;
};

/**
 * Everything one lint run looks at. The CLI fills this from the real
 * tree; tests construct it from fixture strings.
 */
struct Corpus
{
    /** C++ sources under src/, tests/, bench/, examples/. */
    std::vector<SourceFile> files;

    /** README.md text ("" disables consistency/config-key-doc). */
    std::string readme;

    /** EXPERIMENTS.md text ("" disables consistency/campaign-doc). */
    std::string experiments;
};

/**
 * Run every rule over @p corpus and return the surviving findings
 * (suppressions already applied, meta findings appended), sorted by
 * (file, line, rule).
 */
std::vector<Finding> lintCorpus(const Corpus &corpus);

/** "family/id" for a short rule id ("determinism/unordered-iter"). */
std::string ruleFamily(const std::string &rule);

/** All short rule ids, families first, stable order. */
std::vector<std::string> ruleIds();

/** Render findings as a JSON array (stable field order). */
std::string findingsToJson(const std::vector<Finding> &findings);

/** Render one finding as "file:line: [family/id] message". */
std::string findingToText(const Finding &f);

} // namespace dbpsim::lint

#endif // DBPSIM_TOOLS_LINT_RULES_HH
